//! The Fig. 1 / §VI-D story end to end: one convolution simulated at four
//! abstraction levels, each produced from the previous by reusable
//! compiler passes — fast-and-abstract down to detailed-and-accurate.
//!
//! Run with: `cargo run --release --example lowering_pipeline`

use equeue::dialect::ConvDims;
use equeue::gen::{build_stage_program, Stage};
use equeue::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dims = ConvDims::square(8, 3, 3, 4);
    println!(
        "conv H=W={} Fh=Fw={} C={} N={} on a 4x4 WS systolic array\n",
        dims.h, dims.fh, dims.c, dims.n
    );
    println!(
        "{:>9} | {:>10} | {:>10} | {:>9} {:>9} | {:>9}",
        "stage", "cycles", "exec time", "SRAM rd", "Reg rd", "IR ops"
    );
    println!("{}", "-".repeat(72));

    for stage in Stage::all() {
        let prog = build_stage_program(stage, dims, (4, 4), Dataflow::Ws);
        let ops = prog.module.live_ops().count();
        let report = simulate(&prog.module)?;
        println!(
            "{:>9} | {:>10} | {:>8.1?} | {:>9.3} {:>9.3} | {:>9}",
            stage.as_str(),
            report.cycles,
            report.execution_time,
            report.read_bw_of_kind("SRAM"),
            report.read_bw_of_kind("Register"),
            ops,
        );

        if stage == Stage::Linalg {
            println!("\n--- the Linalg-stage program (one analytic op) ---");
            println!("{}", print_module(&prog.module));
        }
    }

    println!(
        "\nReading the table bottom-up is the paper's co-design loop: \
         quick estimates at the Linalg level, cycle-level fidelity at the \
         systolic level, and compiler passes (not simulator rewrites) in \
         between."
    );
    Ok(())
}
