//! The §VII ACAP AI Engine FIR case study as a runnable walk-through:
//! start simple, find the bottleneck in the trace, and iterate — the
//! paper's recommended co-design loop.
//!
//! Run with: `cargo run --release --example fir_acap`

use equeue::gen::{fir_reference, generate_fir, FirCase, FirSpec};
use equeue::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = FirSpec::default(); // 32 taps, 512 samples
    std::fs::create_dir_all("target/traces")?;

    println!(
        "AI Engine FIR, {} taps over {} samples\n",
        spec.taps, spec.samples
    );

    for case in FirCase::all() {
        let prog = generate_fir(spec, case);
        let report = simulate(&prog.module)?;
        println!("{}:", case.as_str());
        println!("  cycles        : {}", report.cycles);
        match case {
            FirCase::SingleCore => println!(
                "  references    : paper-EQueue {}, Xilinx AIE simulator {} \
                 (EQueue omits loop-control overhead)",
                fir_reference::PAPER_CASE1,
                fir_reference::XILINX_CASE1
            ),
            FirCase::Pipelined16 => println!(
                "  references    : paper-EQueue {} (15 warm-up + 128 groups)",
                fir_reference::PAPER_CASE2
            ),
            FirCase::Bandwidth16 => {
                println!(
                    "  references    : paper-EQueue {} (79-cycle warm-up, stalls 3 of 4)",
                    fir_reference::PAPER_CASE3
                );
                // Quantify the §VII-E observation from the trace: compute
                // utilisation of a middle core.
                let busy: u64 = report
                    .trace
                    .events()
                    .iter()
                    .filter(|e| e.tid == "AIE7")
                    .map(|e| e.dur)
                    .sum();
                println!(
                    "  AIE7 busy     : {busy} of {} cycles ({:.0}% wasted — the paper's 75%)",
                    report.cycles,
                    100.0 * (1.0 - busy as f64 / report.cycles as f64)
                );
            }
            FirCase::Balanced4 => println!(
                "  references    : paper-EQueue {}, Xilinx AIE simulator {}",
                fir_reference::PAPER_CASE4,
                fir_reference::XILINX_CASE4
            ),
        }
        println!("  wall-clock    : {:.2?}", report.execution_time);
        let path = format!("target/traces/example_{}.json", case.as_str());
        std::fs::write(&path, report.trace.to_chrome_json())?;
        println!("  trace         : {path}\n");
    }

    println!(
        "The paper's punchline: going from case 3 to case 4 (16 cores -> 4) \
         keeps throughput but saves 75% of the area — found by reading the \
         stall pattern in the trace, after three small, local edits to the \
         EQueue program."
    );
    Ok(())
}
