//! Quickstart: the paper's Fig. 2 toy accelerator, built with the EQueue
//! builder API, simulated, and traced.
//!
//! An ARM kernel distributes work to a DMA engine and two MAC processing
//! elements: the DMA copies an input buffer from SRAM into PE0's register
//! file, then both PEs start simultaneously.
//!
//! Run with: `cargo run --example quickstart`

use equeue::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- structure specification (Fig. 2a, part 1) ----------------------
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R6);
    let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
    let dma = b.create_dma();
    let accel = b.create_comp(&["Kernel", "SRAM", "DMA"], vec![kernel, sram, dma]);
    let pe0 = b.create_proc(kinds::MAC);
    let reg0 = b.create_mem(kinds::REGISTER, &[4], 32, 1);
    let pe1 = b.create_proc(kinds::MAC);
    let reg1 = b.create_mem(kinds::REGISTER, &[4], 32, 1);
    b.add_comp(
        accel,
        &["PE0", "Reg0", "PE1", "Reg1"],
        vec![pe0, reg0, pe1, reg1],
    );

    let input = b.alloc(sram, &[4], Type::I32);
    let buf0 = b.alloc(reg0, &[4], Type::I32);
    let buf1 = b.alloc(reg1, &[4], Type::I32);

    // ---- control flow (Fig. 2a, part 2) ----------------------------------
    let start = b.control_start();
    let outer = b.launch(start, kernel, &[], vec![]);
    {
        let mut ob = OpBuilder::at_end(b.module_mut(), outer.body);
        let copy_dep = ob.control_start();
        let launch_dep = ob.memcpy(copy_dep, input, buf0, dma, None);
        let l0 = ob.launch(launch_dep, pe0, &[buf0], vec![]);
        {
            let mut ib = OpBuilder::at_end(ob.module_mut(), l0.body);
            let ifmap = ib.read(l0.body_args[0], None);
            let four = ib.const_int(4, Type::I32);
            let _ofmap = ib.addi(ifmap, four); // ofmap = addi(ifmap, 4)
            ib.ret(vec![]);
        }
        let mut ob = OpBuilder::at_end(&mut m, outer.body);
        let l1 = ob.launch(launch_dep, pe1, &[buf1], vec![]);
        {
            let mut ib = OpBuilder::at_end(ob.module_mut(), l1.body);
            ib.ext_op("mac", vec![], vec![]);
            ib.ret(vec![]);
        }
        let mut ob = OpBuilder::at_end(&mut m, outer.body);
        ob.await_all(vec![l0.done, l1.done]);
        ob.ret(vec![]);
    }
    let outer_done = outer.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![outer_done]);

    // ---- verify, print, simulate ----------------------------------------
    verify_module(&m, &standard_registry())?;
    println!("=== EQueue program ===\n{}", print_module(&m));

    let report = simulate(&m)?;
    println!("=== profiling summary (§IV-B) ===\n{}", report.summary());

    let json = report.trace.to_chrome_json();
    std::fs::create_dir_all("target/traces")?;
    std::fs::write("target/traces/quickstart.json", &json)?;
    println!("trace written to target/traces/quickstart.json (open in chrome://tracing)");

    assert_eq!(
        report.cycles, 2,
        "copy (1 cycle) then both PEs in parallel (1 cycle)"
    );
    Ok(())
}
