//! Design-space exploration over systolic dataflows and array shapes —
//! the workflow the paper's §VI-E motivates: "Algorithm designers can use
//! it to choose the best dataflows and array configuration for a
//! convolution."
//!
//! For one convolution, sweep WS/IS/OS across array geometries (constant
//! PE budget, 64 PEs) and report cycles, SRAM traffic, and the loop
//! iteration rule ⌈D1/Ah⌉·⌈D2/Aw⌉.
//!
//! Run with: `cargo run --release --example systolic_dse`

use equeue::dialect::ConvDims;
use equeue::gen::{generate_systolic, SystolicSpec};
use equeue::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size convolution: 16×16×3 ifmap, 3×3 filters, 8 output channels.
    let dims = ConvDims::square(16, 3, 3, 8);
    println!(
        "DSE for conv H=W={} Fh=Fw={} C={} N={} (MACs = {})",
        dims.h,
        dims.fh,
        dims.c,
        dims.n,
        dims.macs()
    );
    println!(
        "{:>6} {:>4} | {:>9} {:>7} | {:>11} {:>11} | {:>9}",
        "array", "df", "cycles", "iters", "SRAM rd B", "SRAM wr B", "util"
    );
    println!("{}", "-".repeat(72));

    let mut best: Option<(u64, String)> = None;
    for ah in [2usize, 4, 8, 16, 32] {
        let aw = 64 / ah;
        for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
            let spec = SystolicSpec {
                rows: ah,
                cols: aw,
                dataflow: df,
            };
            let prog = generate_systolic(&spec, dims);
            let report = simulate(&prog.module)?;
            let rd: u64 = report.memories.iter().map(|m| m.bytes_read).sum();
            let wr: u64 = report.memories.iter().map(|m| m.bytes_written).sum();
            let util = dims.macs() as f64 / (report.cycles as f64 * 64.0);
            println!(
                "{:>3}x{:<2} {:>4} | {:>9} {:>7} | {:>11} {:>11} | {:>8.1}%",
                ah,
                aw,
                df.as_str(),
                report.cycles,
                prog.loop_iterations(),
                rd,
                wr,
                util * 100.0,
            );
            let label = format!("{}x{} {}", ah, aw, df.as_str());
            if best
                .as_ref()
                .map(|(c, _)| report.cycles < *c)
                .unwrap_or(true)
            {
                best = Some((report.cycles, label));
            }
        }
    }
    let (cycles, label) = best.unwrap();
    println!("\nbest configuration: {label} at {cycles} cycles");
    println!(
        "rule of thumb (§VI-E): pick the array shape minimising \
         ⌈D1/Ah⌉·⌈D2/Aw⌉ loop iterations."
    );
    Ok(())
}
