//! Extending the simulator library with a custom component — the worked
//! example of §IV-D: "To introduce a cache component … the user only needs
//! to override a method called getReadOrWriteCycles."
//!
//! Here we register a custom scratchpad-with-cache memory kind and show
//! how access locality changes simulated time without touching the engine.
//!
//! Run with: `cargo run --example custom_cache`

use equeue::prelude::*;
use equeue::sim::{MemSpec, MemoryBehavior};

/// A toy "streaming cache": even-indexed lines hit, odd ones miss — enough
/// to show arbitrary user-defined timing. Real users would wrap
/// `equeue::sim::CacheBehavior` (a set-associative LRU model) instead.
#[derive(Debug)]
struct ParityCache {
    hit: u64,
    miss: u64,
}

impl MemoryBehavior for ParityCache {
    fn access_cycles(
        &mut self,
        _kind: equeue::sim::AccessKind,
        addr: usize,
        elems: usize,
        _banks: u32,
    ) -> u64 {
        let mut total = 0;
        for a in addr..addr + elems.max(1) {
            total += if a % 2 == 0 { self.hit } else { self.miss };
        }
        total
    }

    fn model_name(&self) -> &str {
        "ParityCache"
    }
}

fn parity_cache_factory(spec: &MemSpec) -> Box<dyn MemoryBehavior> {
    let hit = spec.attrs.int("hit_cycles").unwrap_or(1).max(0) as u64;
    let miss = spec.attrs.int("miss_cycles").unwrap_or(20).max(0) as u64;
    Box::new(ParityCache { hit, miss })
}

fn program(mem_kind: &str) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::ARM_R5);
    let mem = b
        .op("equeue.create_mem")
        .attr("kind", mem_kind)
        .attr("shape", vec![64i64])
        .attr("data_bits", 32i64)
        .attr("banks", 1i64)
        .attr("miss_cycles", 20i64)
        .result(Type::Mem)
        .finish_value();
    let buf = b.alloc(mem, &[8], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        // Eight single-element reads at addresses 0..8.
        for i in 0..8 {
            let idx = ib.const_index(i);
            ib.read_indexed(l.body_args[0], vec![idx], None);
        }
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Stock SRAM: 8 reads × 1 cycle.
    let sram = simulate(&program(kinds::SRAM))?;
    println!("SRAM            : {} cycles", sram.cycles);

    // 2. The built-in set-associative LRU cache (first touches miss).
    let builtin = simulate(&program(kinds::CACHE))?;
    println!(
        "built-in Cache  : {} cycles (cold misses dominate)",
        builtin.cycles
    );

    // 3. A fully custom component registered in the simulator library —
    //    no engine changes, exactly the extension story of §IV-D.
    let mut lib = SimLibrary::standard();
    lib.register_mem_factory("ParityCache", parity_cache_factory);
    let custom = simulate_with(&program("ParityCache"), &lib, &SimOptions::default())?;
    println!(
        "ParityCache     : {} cycles (4 hits + 4 misses)",
        custom.cycles
    );

    assert_eq!(sram.cycles, 8);
    assert_eq!(custom.cycles, 4 + 4 * 20);
    assert!(builtin.cycles > sram.cycles);
    Ok(())
}
