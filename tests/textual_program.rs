//! EQueue programs as text: the engine consumes `.mlir`-style files, as in
//! the paper's Fig. 7 ("EQueue-Structured MLIR File … systolic.mlir").

use equeue::prelude::*;

const PROGRAM: &str = r#"
// A one-PE accelerator reading a 4-element SRAM buffer.
%kernel = "equeue.create_proc"() {kind = "MAC"} : () -> !equeue.proc
%mem = "equeue.create_mem"() {banks = 1, data_bits = 32, kind = "SRAM", shape = [8]} : () -> !equeue.mem
%buf = "equeue.alloc"(%mem) : (!equeue.mem) -> !equeue.buffer<4xi32>
%start = "equeue.control_start"() : () -> !equeue.signal
%done = "equeue.launch"(%start, %kernel, %buf) ({
^bb0(%b: !equeue.buffer<4xi32>):
  %data = "equeue.read"(%b) {segments = [1, 0, 0]} : (!equeue.buffer<4xi32>) -> tensor<4xi32>
  "equeue.return"() : () -> ()
}) : (!equeue.signal, !equeue.proc, !equeue.buffer<4xi32>) -> !equeue.signal
"equeue.await"(%done) : (!equeue.signal) -> ()
"#;

#[test]
fn textual_program_simulates() {
    let m = parse_module(PROGRAM).unwrap();
    verify_module(&m, &standard_registry()).unwrap();
    let report = simulate(&m).unwrap();
    // 4 elements through a single-banked SRAM: 4 cycles.
    assert_eq!(report.cycles, 4);
    assert_eq!(report.memory_named("SRAM").unwrap().bytes_read, 16);
}

#[test]
fn textual_program_round_trips() {
    let m = parse_module(PROGRAM).unwrap();
    let text = print_module(&m);
    let again = parse_module(&text).unwrap();
    assert_eq!(print_module(&again), text);
}

#[test]
fn bad_programs_rejected_with_positions() {
    // Use of an undefined value.
    let err = parse_module("\"equeue.await\"(%ghost) : (!equeue.signal) -> ()\n").unwrap_err();
    assert!(err.to_string().contains("undefined value"));

    // Verifier catches a launch whose body lacks a terminator.
    let text = r#"
%p = "equeue.create_proc"() {kind = "MAC"} : () -> !equeue.proc
%s = "equeue.control_start"() : () -> !equeue.signal
%d = "equeue.launch"(%s, %p) ({
  "equeue.op"() {signature = "mac"} : () -> ()
}) : (!equeue.signal, !equeue.proc) -> !equeue.signal
"#;
    let m = parse_module(text).unwrap();
    let err = verify_module(&m, &standard_registry()).unwrap_err();
    assert!(err.to_string().contains("equeue.return"), "{err}");
}

#[test]
fn generated_programs_survive_file_round_trip() {
    use equeue::gen::{generate_fir, FirCase, FirSpec};
    // The whole 16-core FIR program prints, parses, and re-simulates to
    // the same cycle count.
    let prog = generate_fir(
        FirSpec {
            taps: 32,
            samples: 64,
        },
        FirCase::Pipelined16,
    );
    let direct = simulate(&prog.module).unwrap().cycles;
    let text = print_module(&prog.module);
    let reparsed = parse_module(&text).unwrap();
    verify_module(&reparsed, &standard_registry()).unwrap();
    let roundtrip = simulate(&reparsed).unwrap().cycles;
    assert_eq!(direct, roundtrip);
}
