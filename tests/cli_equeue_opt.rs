//! Integration tests for the `equeue-opt` command-line tool.

use std::io::Write;
use std::process::{Command, Stdio};

const CONV_MODULE: &str = r#"
%mem = "equeue.create_mem"() {banks = 4, data_bits = 32, kind = "SRAM", shape = [200]} : () -> !equeue.mem
%proc = "equeue.create_proc"() {kind = "ARMr5"} : () -> !equeue.proc
%i = "memref.alloc"() : () -> memref<1x4x4xi32>
%w = "memref.alloc"() : () -> memref<1x1x2x2xi32>
%o = "memref.alloc"() : () -> memref<1x3x3xi32>
"linalg.conv2d"(%i, %w, %o) : (memref<1x4x4xi32>, memref<1x1x2x2xi32>, memref<1x3x3xi32>) -> ()
"#;

fn run_opt(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_equeue-opt"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn equeue-opt");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn pipeline_lowers_and_simulates() {
    let (_, stderr, ok) = run_opt(
        &[
            "-",
            "--pass",
            "allocate-buffer",
            "--pass",
            "convert-linalg-to-affine-loops",
            "--pass",
            "equeue-read-write",
            "--pass",
            "launch",
            "--no-print",
            "--simulate",
        ],
        CONV_MODULE,
    );
    assert!(ok, "{stderr}");
    assert!(stderr.contains("simulated runtime:"), "{stderr}");
}

#[test]
fn prints_lowered_ir_by_default() {
    let (stdout, stderr, ok) = run_opt(
        &["-", "--pass", "convert-linalg-to-affine-loops"],
        CONV_MODULE,
    );
    assert!(ok, "{stderr}");
    assert!(stdout.contains("\"affine.for\""), "{stdout}");
    assert!(!stdout.contains("linalg.conv2d"), "{stdout}");
}

#[test]
fn canonicalize_folds_via_cli() {
    let module = "\
%a = \"arith.constant\"() {value = 2} : () -> i32\n\
%b = \"arith.constant\"() {value = 3} : () -> i32\n\
%c = \"arith.addi\"(%a, %b) : (i32, i32) -> i32\n\
\"test.use\"(%c) : (i32) -> ()\n";
    let (stdout, _, ok) = run_opt(&["-", "--pass", "canonicalize"], module);
    assert!(ok);
    assert!(stdout.contains("value = 5"), "{stdout}");
    assert!(!stdout.contains("arith.addi"), "{stdout}");
}

#[test]
fn unknown_pass_fails_cleanly() {
    let (_, stderr, ok) = run_opt(&["-", "--pass", "frobnicate"], CONV_MODULE);
    assert!(!ok);
    assert!(stderr.contains("unknown pass"), "{stderr}");
}

#[test]
fn parse_errors_report_position() {
    let (_, stderr, ok) = run_opt(&["-"], "not an op\n");
    assert!(!ok);
    assert!(stderr.contains("parse error"), "{stderr}");
}

#[test]
fn verify_flag_reports_ok() {
    let (_, stderr, ok) = run_opt(&["-", "--verify", "--no-print"], CONV_MODULE);
    assert!(ok, "{stderr}");
    assert!(stderr.contains("verification: ok"), "{stderr}");
}
