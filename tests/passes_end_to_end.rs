//! Cross-crate pass pipelines: the §V passes compose, and the programs
//! they produce simulate with the expected timing relationships.

use equeue::prelude::*;
use equeue_ir::ValueId;
use equeue_passes::{
    ConvertLinalgToAffineLoops, MemcpyToLaunch, MergeMemcpyLaunch, ParallelToEqueue, SplitLaunch,
};

fn memcpy_program() -> (Module, ValueId) {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
    let reg = b.create_mem(kinds::REGISTER, &[64], 32, 1);
    let dma = b.create_dma();
    let src = b.alloc(sram, &[16], Type::I32);
    let dst = b.alloc(reg, &[16], Type::I32);
    let start = b.control_start();
    let done = b.memcpy(start, src, dst, dma, None);
    b.await_all(vec![done]);
    (m, dst)
}

#[test]
fn memcpy_to_launch_preserves_semantics() {
    // Desugaring a memcpy into launch{read;write} keeps the copy and its
    // cost within the serialisation difference (read-then-write vs
    // overlapped): here the register write is free, so both are 4 cycles.
    let (mut before, _) = memcpy_program();
    let base = simulate(&before).unwrap().cycles;
    MemcpyToLaunch.run(&mut before).unwrap();
    verify_module(&before, &standard_registry()).unwrap();
    let after = simulate(&before).unwrap().cycles;
    assert_eq!(base, 4);
    assert_eq!(after, 4);
}

#[test]
fn merge_memcpy_launch_preserves_total_work() {
    // A memcpy feeding a launch merges into the launch; the combined
    // program still moves the bytes and runs the compute.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
    let reg = b.create_mem(kinds::REGISTER, &[64], 32, 1);
    let dma = b.create_dma();
    let src = b.alloc(sram, &[16], Type::I32);
    let dst = b.alloc(reg, &[16], Type::I32);
    let start = b.control_start();
    let cp = b.memcpy(start, src, dst, dma, None);
    let l = b.launch(cp, pe, &[dst], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.read(l.body_args[0], None);
        ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);

    let before = simulate(&m).unwrap();
    MergeMemcpyLaunch.run(&mut m).unwrap();
    verify_module(&m, &standard_registry()).unwrap();
    let after = simulate(&m).unwrap();
    // Same bytes still read from SRAM; compute still happens.
    assert_eq!(
        before.memory_named("SRAM").unwrap().bytes_read,
        after.memory_named("SRAM").unwrap().bytes_read
    );
    assert!(after.cycles >= before.cycles); // merged form serialises on the PE
    assert!(m.find_first("equeue.memcpy").is_none());
}

#[test]
fn split_launch_preserves_cycles_on_serial_bodies() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let l = b.launch(start, pe, &[], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        for _ in 0..6 {
            ib.ext_op("mac", vec![], vec![]);
        }
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);

    assert_eq!(simulate(&m).unwrap().cycles, 6);
    SplitLaunch::new(l.op, 3).run(&mut m).unwrap();
    verify_module(&m, &standard_registry()).unwrap();
    // Two 3-op launches chained on the same PE: still 6 cycles.
    assert_eq!(simulate(&m).unwrap().cycles, 6);
    assert_eq!(m.find_all("equeue.launch").len(), 2);
}

#[test]
fn parallel_to_equeue_beats_sequential_interpretation() {
    // The same affine.parallel, interpreted sequentially vs lowered onto
    // four PEs: the lowered version must be ~4x faster.
    fn build() -> (Module, Vec<ValueId>) {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let procs: Vec<ValueId> = (0..4).map(|_| b.create_proc(kinds::MAC)).collect();
        let host = b.create_proc(kinds::ARM_R5);
        let start = b.control_start();
        let l = b.launch(start, host, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, body, _) = ib.affine_parallel(vec![0], vec![8], vec![1]);
            {
                let mut pb = OpBuilder::at_end(ib.module_mut(), body);
                pb.ext_op("mac", vec![], vec![]);
                pb.affine_yield();
            }
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        (m, procs)
    }

    let (seq, _) = build();
    let sequential = simulate(&seq).unwrap().cycles;
    assert_eq!(sequential, 8);

    let (mut par, procs) = build();
    ParallelToEqueue::new(procs).run(&mut par).unwrap();
    verify_module(&par, &standard_registry()).unwrap();
    let parallel = simulate(&par).unwrap().cycles;
    assert_eq!(parallel, 2); // 8 iterations round-robin over 4 PEs
}

#[test]
fn linalg_lowering_then_simulation_is_consistent() {
    // Lowering must not change the MAC count implied by the timing model:
    // affine-level cycles are bounded by ops-per-MAC × MACs.
    let dims = ConvDims::square(6, 2, 2, 2);
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R5);
    let capacity = dims.ifmap_elems() + dims.weight_elems() + dims.ofmap_elems();
    let sram = b.create_mem(kinds::SRAM, &[capacity], 32, 4);
    let i = b.memref_alloc(Type::memref(vec![dims.c, dims.h, dims.w], Type::I32));
    let w = b.memref_alloc(Type::memref(
        vec![dims.n, dims.c, dims.fh, dims.fw],
        Type::I32,
    ));
    let o = b.memref_alloc(Type::memref(vec![dims.n, dims.eh(), dims.ew()], Type::I32));
    b.linalg_conv2d(i, w, o);

    let mut pm = PassManager::new(standard_registry());
    pm.add(equeue_passes::AllocateMemory::new(sram))
        .add(ConvertLinalgToAffineLoops)
        .add(equeue_passes::EqueueReadWrite)
        .add(equeue_passes::WrapInLaunch::new(kernel));
    pm.run(&mut m).unwrap();

    let cycles = simulate(&m).unwrap().cycles;
    let macs = dims.macs() as u64;
    assert!(cycles >= 3 * macs, "at least loads+mul+add per MAC");
    assert!(cycles <= 8 * macs, "at most the Linalg-level estimate");
}
