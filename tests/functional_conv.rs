//! Functional verification across the stack: a convolution lowered from
//! Linalg through the reusable passes must compute the same numbers as
//! the reference implementation — the simulator is an interpreter with a
//! clock, not just a cost model.

use equeue::prelude::*;
use equeue::sim::{conv2d_int, TensorData};
use equeue_ir::ValueId;
use equeue_passes::{AllocateMemory, ConvertLinalgToAffineLoops, EqueueReadWrite, WrapInLaunch};

/// Builds a conv program with deterministic input data (ifmap[i] = i % 7,
/// weights[i] = i % 5 + 1), lowered through the given extra passes.
fn build_and_run(dims: ConvDims, flatten: Option<Dataflow>) -> (Vec<i64>, Vec<i64>) {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R5);
    let capacity = dims.ifmap_elems() + dims.weight_elems() + dims.ofmap_elems();
    let sram = b.create_mem(kinds::SRAM, &[capacity], 32, 4);

    let ifmap = b.memref_alloc(Type::memref(vec![dims.c, dims.h, dims.w], Type::I32));
    let weights = b.memref_alloc(Type::memref(
        vec![dims.n, dims.c, dims.fh, dims.fw],
        Type::I32,
    ));
    let ofmap = b.memref_alloc(Type::memref(vec![dims.n, dims.eh(), dims.ew()], Type::I32));

    // Deterministic init data, written element-wise before the conv.
    let mut ifmap_data = vec![];
    for (flat, (ci, hi, wi)) in iter3(dims.c, dims.h, dims.w).enumerate() {
        let v = (flat % 7) as i64;
        ifmap_data.push(v);
        let val = b.const_int(v, Type::I32);
        let idx = [
            b.const_index(ci as i64),
            b.const_index(hi as i64),
            b.const_index(wi as i64),
        ];
        b.affine_store(val, ifmap, idx.to_vec());
    }
    let mut weight_data = vec![];
    for (flat, (ni, rest)) in iter2(dims.n, dims.c * dims.fh * dims.fw).enumerate() {
        let v = (flat % 5 + 1) as i64;
        weight_data.push(v);
        let ci = rest / (dims.fh * dims.fw);
        let r = rest % (dims.fh * dims.fw);
        let idx = [
            b.const_index(ni as i64),
            b.const_index(ci as i64),
            b.const_index((r / dims.fw) as i64),
            b.const_index((r % dims.fw) as i64),
        ];
        let val = b.const_int(v, Type::I32);
        b.affine_store(val, weights, idx.to_vec());
    }
    b.linalg_conv2d(ifmap, weights, ofmap);

    let registry = standard_registry();
    let mut pm = PassManager::new(registry);
    pm.add(AllocateMemory::new(sram))
        .add(ConvertLinalgToAffineLoops);
    if let Some(df) = flatten {
        pm.add(equeue_passes::FlattenConvLoops::new(df));
    }
    pm.add(EqueueReadWrite).add(WrapInLaunch::new(kernel));
    pm.run(&mut m).expect("pipeline");

    let report = simulate(&m).unwrap();
    // Buffers in allocation order: ifmap, weights, ofmap.
    let got = match &report.buffers[2].data.data {
        TensorData::Int(v) => v.to_vec(),
        other => panic!("expected int ofmap, got {other:?}"),
    };

    let mut expect = vec![0i64; dims.ofmap_elems()];
    conv2d_int(
        &ifmap_data,
        &weight_data,
        &mut expect,
        dims.c,
        dims.h,
        dims.w,
        dims.n,
        dims.fh,
        dims.fw,
    );
    (got, expect)
}

fn iter3(a: usize, b: usize, c: usize) -> impl Iterator<Item = (usize, usize, usize)> {
    (0..a).flat_map(move |x| (0..b).flat_map(move |y| (0..c).map(move |z| (x, y, z))))
}

fn iter2(a: usize, b: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..a).flat_map(move |x| (0..b).map(move |y| (x, y)))
}

#[test]
fn affine_level_computes_the_right_convolution() {
    let (got, expect) = build_and_run(ConvDims::square(5, 2, 2, 2), None);
    assert_eq!(got, expect);
}

#[test]
fn flattened_loops_compute_the_same_convolution() {
    // The dataflow-specific loop restructuring must not change the values,
    // only the order of accumulation.
    for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
        let (got, expect) = build_and_run(ConvDims::square(5, 2, 2, 2), Some(df));
        assert_eq!(got, expect, "{df:?}");
    }
}

#[test]
fn asymmetric_shapes_compute_correctly() {
    let dims = ConvDims {
        h: 6,
        w: 4,
        fh: 3,
        fw: 2,
        c: 2,
        n: 3,
    };
    let (got, expect) = build_and_run(dims, None);
    assert_eq!(got, expect);
}

#[test]
fn memcpy_moves_real_data() {
    // DMA copies preserve values end to end.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let sram = b.create_mem(kinds::SRAM, &[16], 32, 4);
    let reg = b.create_mem(kinds::REGISTER, &[16], 32, 1);
    let dma = b.create_dma();
    let src: ValueId = b.alloc(sram, &[4], Type::I32);
    let dst = b.alloc(reg, &[4], Type::I32);
    for i in 0..4 {
        let v = b.const_int(10 + i, Type::I32);
        let idx = b.const_index(i);
        b.write_indexed(v, src, vec![idx], None);
    }
    let start = b.control_start();
    let done = b.memcpy(start, src, dst, dma, None);
    b.await_all(vec![done]);
    let report = simulate(&m).unwrap();
    assert_eq!(
        report.buffers[1].data.data,
        TensorData::from_ints(vec![10, 11, 12, 13])
    );
}
