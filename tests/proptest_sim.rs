//! Property-based tests of the simulation engine's core invariants:
//! event-chain timing is compositional, parallel launches overlap,
//! signal combinators honour max/min semantics, and simulation is
//! deterministic.

use equeue::prelude::*;
use proptest::prelude::*;

/// Builds a chain of `lens[i]`-cycle launches on one processor; the total
/// must be the sum.
fn chain_cycles(lens: &[u64]) -> u64 {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mut dep = b.control_start();
    for &len in lens {
        let l = b.launch(dep, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.op("equeue.op")
                .attr("signature", "work")
                .attr("cycles", len as i64)
                .finish();
            ib.ret(vec![]);
        }
        dep = l.done;
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(vec![dep]);
    simulate(&m).unwrap().cycles
}

/// Builds independent launches of `lens[i]` cycles on separate processors;
/// the total must be the max.
fn parallel_cycles(lens: &[u64]) -> u64 {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let start = b.control_start();
    let mut dones = vec![];
    for &len in lens {
        let pe = b.create_proc(kinds::MAC);
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.op("equeue.op")
                .attr("signature", "work")
                .attr("cycles", len as i64)
                .finish();
            ib.ret(vec![]);
        }
        dones.push(l.done);
        b = OpBuilder::at_end(&mut m, blk);
    }
    let all = b.control_and(dones);
    b.await_all(vec![all]);
    simulate(&m).unwrap().cycles
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chains_sum(lens in proptest::collection::vec(0u64..50, 1..12)) {
        let total: u64 = lens.iter().sum();
        prop_assert_eq!(chain_cycles(&lens), total);
    }

    #[test]
    fn parallel_takes_max(lens in proptest::collection::vec(0u64..50, 1..8)) {
        let max = lens.iter().copied().max().unwrap_or(0);
        prop_assert_eq!(parallel_cycles(&lens), max);
    }

    #[test]
    fn fifo_on_one_proc_sums_even_with_shared_dep(lens in proptest::collection::vec(1u64..20, 1..8)) {
        // All launches depend on the same start signal but share one
        // processor: the queue serialises them (§III-D: "each processor
        // only executes one event at a time").
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let mut dones = vec![];
        for &len in &lens {
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.op("equeue.op").attr("signature", "w").attr("cycles", len as i64).finish();
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let all = b.control_and(dones);
        b.await_all(vec![all]);
        let total: u64 = lens.iter().sum();
        prop_assert_eq!(simulate(&m).unwrap().cycles, total);
    }

    #[test]
    fn simulation_is_deterministic(lens in proptest::collection::vec(0u64..30, 1..6)) {
        prop_assert_eq!(parallel_cycles(&lens), parallel_cycles(&lens));
        prop_assert_eq!(chain_cycles(&lens), chain_cycles(&lens));
    }

    #[test]
    fn control_or_fires_at_min_and_at_max(lens in proptest::collection::vec(1u64..40, 2..6)) {
        // Launches of different lengths on separate PEs; awaiting the OR
        // ends at min, awaiting the AND at max — total runtime is still
        // max (all launches run to completion).
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let mut dones = vec![];
        for &len in &lens {
            let pe = b.create_proc(kinds::MAC);
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.op("equeue.op").attr("signature", "w").attr("cycles", len as i64).finish();
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let any = b.control_or(dones.clone());
        let all = b.control_and(dones);
        b.await_all(vec![any, all]);
        let cycles = simulate(&m).unwrap().cycles;
        prop_assert_eq!(cycles, lens.iter().copied().max().unwrap());
    }

    #[test]
    fn sram_reads_cost_ceil_elems_over_banks(elems in 1usize..64, banks in 1u32..8) {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let mem = b.create_mem(kinds::SRAM, &[elems], 32, banks);
        let buf = b.alloc(mem, &[elems], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], None);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let cycles = simulate(&m).unwrap().cycles;
        prop_assert_eq!(cycles, (elems as u64).div_ceil(banks as u64));
    }
}

#[test]
fn systolic_always_at_least_ideal_cycles() {
    // For any config, simulated cycles ≥ MACs / PEs (no free lunch).
    use equeue::dialect::ConvDims;
    use equeue::gen::{generate_systolic, SystolicSpec};
    for (ah, hw, f, n) in [(2usize, 8usize, 2usize, 4usize), (4, 8, 3, 2), (8, 16, 2, 8)] {
        let dims = ConvDims::square(hw, f, 2, n);
        for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
            let spec = SystolicSpec { rows: ah, cols: 64 / ah, dataflow: df };
            let prog = generate_systolic(&spec, dims);
            let cycles = simulate(&prog.module).unwrap().cycles;
            let ideal = (dims.macs() / (ah * (64 / ah))) as u64;
            assert!(cycles >= ideal.min(1), "{df:?} ah={ah} hw={hw}: {cycles} < {ideal}");
        }
    }
}
