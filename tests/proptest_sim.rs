//! Randomised (property-style) tests of the simulation engine's core
//! invariants: event-chain timing is compositional, parallel launches
//! overlap, signal combinators honour max/min semantics, and simulation is
//! deterministic.
//!
//! The workspace carries no external dependencies, so instead of `proptest`
//! these use a small deterministic xorshift generator: each property is
//! checked over a fixed number of seeded random cases, and failures print
//! the offending input so the case can be replayed.

use equeue::prelude::*;

/// Deterministic xorshift64* PRNG — good enough to diversify test inputs,
/// fully reproducible across runs and platforms.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    /// A vector of `len in [min_len, max_len)` values in `[lo, hi)`.
    fn vec(&mut self, min_len: usize, max_len: usize, lo: u64, hi: u64) -> Vec<u64> {
        let len = self.range(min_len as u64, max_len as u64) as usize;
        (0..len).map(|_| self.range(lo, hi)).collect()
    }
}

const CASES: usize = 48;

/// Builds a chain of `lens[i]`-cycle launches on one processor; the total
/// must be the sum.
fn chain_cycles(lens: &[u64]) -> u64 {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mut dep = b.control_start();
    for &len in lens {
        let l = b.launch(dep, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.op("equeue.op")
                .attr("signature", "work")
                .attr("cycles", len as i64)
                .finish();
            ib.ret(vec![]);
        }
        dep = l.done;
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(vec![dep]);
    simulate(&m).unwrap().cycles
}

/// Builds independent launches of `lens[i]` cycles on separate processors;
/// the total must be the max.
fn parallel_cycles(lens: &[u64]) -> u64 {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let start = b.control_start();
    let mut dones = vec![];
    for &len in lens {
        let pe = b.create_proc(kinds::MAC);
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.op("equeue.op")
                .attr("signature", "work")
                .attr("cycles", len as i64)
                .finish();
            ib.ret(vec![]);
        }
        dones.push(l.done);
        b = OpBuilder::at_end(&mut m, blk);
    }
    let all = b.control_and(dones);
    b.await_all(vec![all]);
    simulate(&m).unwrap().cycles
}

#[test]
fn chains_sum() {
    let mut rng = Rng::new(0xC0FFEE);
    for _ in 0..CASES {
        let lens = rng.vec(1, 12, 0, 50);
        let total: u64 = lens.iter().sum();
        assert_eq!(chain_cycles(&lens), total, "lens = {lens:?}");
    }
}

#[test]
fn parallel_takes_max() {
    let mut rng = Rng::new(0xBEEF);
    for _ in 0..CASES {
        let lens = rng.vec(1, 8, 0, 50);
        let max = lens.iter().copied().max().unwrap_or(0);
        assert_eq!(parallel_cycles(&lens), max, "lens = {lens:?}");
    }
}

#[test]
fn fifo_on_one_proc_sums_even_with_shared_dep() {
    // All launches depend on the same start signal but share one
    // processor: the queue serialises them (§III-D: "each processor
    // only executes one event at a time").
    let mut rng = Rng::new(0xFACADE);
    for _ in 0..CASES {
        let lens = rng.vec(1, 8, 1, 20);
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let mut dones = vec![];
        for &len in &lens {
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.op("equeue.op")
                    .attr("signature", "w")
                    .attr("cycles", len as i64)
                    .finish();
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let all = b.control_and(dones);
        b.await_all(vec![all]);
        let total: u64 = lens.iter().sum();
        assert_eq!(simulate(&m).unwrap().cycles, total, "lens = {lens:?}");
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = Rng::new(0xD15EA5E);
    for _ in 0..CASES / 4 {
        let lens = rng.vec(1, 6, 0, 30);
        assert_eq!(
            parallel_cycles(&lens),
            parallel_cycles(&lens),
            "lens = {lens:?}"
        );
        assert_eq!(chain_cycles(&lens), chain_cycles(&lens), "lens = {lens:?}");
    }
}

#[test]
fn control_or_fires_at_min_and_at_max() {
    // Launches of different lengths on separate PEs; awaiting the OR
    // ends at min, awaiting the AND at max — total runtime is still
    // max (all launches run to completion).
    let mut rng = Rng::new(0xAB5E11);
    for _ in 0..CASES {
        let lens = rng.vec(2, 6, 1, 40);
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let mut dones = vec![];
        for &len in &lens {
            let pe = b.create_proc(kinds::MAC);
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.op("equeue.op")
                    .attr("signature", "w")
                    .attr("cycles", len as i64)
                    .finish();
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let any = b.control_or(dones.clone());
        let all = b.control_and(dones);
        b.await_all(vec![any, all]);
        let cycles = simulate(&m).unwrap().cycles;
        assert_eq!(
            cycles,
            lens.iter().copied().max().unwrap(),
            "lens = {lens:?}"
        );
    }
}

#[test]
fn sram_reads_cost_ceil_elems_over_banks() {
    let mut rng = Rng::new(0x5EED);
    for _ in 0..CASES {
        let elems = rng.range(1, 64) as usize;
        let banks = rng.range(1, 8) as u32;
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let mem = b.create_mem(kinds::SRAM, &[elems], 32, banks);
        let buf = b.alloc(mem, &[elems], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], None);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let cycles = simulate(&m).unwrap().cycles;
        assert_eq!(
            cycles,
            (elems as u64).div_ceil(banks as u64),
            "elems = {elems}, banks = {banks}"
        );
    }
}

#[test]
fn systolic_always_at_least_ideal_cycles() {
    // For any config, simulated cycles ≥ MACs / PEs (no free lunch).
    use equeue::dialect::ConvDims;
    use equeue::gen::{generate_systolic, SystolicSpec};
    for (ah, hw, f, n) in [
        (2usize, 8usize, 2usize, 4usize),
        (4, 8, 3, 2),
        (8, 16, 2, 8),
    ] {
        let dims = ConvDims::square(hw, f, 2, n);
        for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
            let spec = SystolicSpec {
                rows: ah,
                cols: 64 / ah,
                dataflow: df,
            };
            let prog = generate_systolic(&spec, dims);
            let cycles = simulate(&prog.module).unwrap().cycles;
            let ideal = (dims.macs() / (ah * (64 / ah))) as u64;
            assert!(
                cycles >= ideal.min(1),
                "{df:?} ah={ah} hw={hw}: {cycles} < {ideal}"
            );
        }
    }
}
