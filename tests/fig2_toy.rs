//! End-to-end test of the paper's Fig. 2 toy accelerator: build with the
//! EQueue builder API, verify, print, reparse, and simulate — the printed
//! and reparsed program must behave identically.

use equeue::prelude::*;
use equeue_ir::ValueId;

fn build() -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R6);
    let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
    let dma = b.create_dma();
    let accel = b.create_comp(&["Kernel", "SRAM", "DMA"], vec![kernel, sram, dma]);
    let pe0 = b.create_proc(kinds::MAC);
    let reg0 = b.create_mem(kinds::REGISTER, &[4], 32, 1);
    let pe1 = b.create_proc(kinds::MAC);
    let reg1 = b.create_mem(kinds::REGISTER, &[4], 32, 1);
    b.add_comp(
        accel,
        &["PE0", "Reg0", "PE1", "Reg1"],
        vec![pe0, reg0, pe1, reg1],
    );

    let input = b.alloc(sram, &[4], Type::I32);
    let buf0 = b.alloc(reg0, &[4], Type::I32);
    let buf1 = b.alloc(reg1, &[4], Type::I32);

    let start = b.control_start();
    let outer = b.launch(start, kernel, &[], vec![]);
    {
        let mut ob = OpBuilder::at_end(b.module_mut(), outer.body);
        let copy_dep = ob.control_start();
        let launch_dep = ob.memcpy(copy_dep, input, buf0, dma, None);
        let l0 = ob.launch(launch_dep, pe0, &[buf0], vec![]);
        {
            let mut ib = OpBuilder::at_end(ob.module_mut(), l0.body);
            let ifmap = ib.read(l0.body_args[0], None);
            let four = ib.const_int(4, Type::I32);
            let _ = ib.addi(ifmap, four);
            ib.ret(vec![]);
        }
        let mut ob = OpBuilder::at_end(&mut m, outer.body);
        let l1 = ob.launch(launch_dep, pe1, &[buf1], vec![]);
        {
            let mut ib = OpBuilder::at_end(ob.module_mut(), l1.body);
            ib.ext_op("mac", vec![], vec![]);
            ib.ret(vec![]);
        }
        let mut ob = OpBuilder::at_end(&mut m, outer.body);
        ob.await_all(vec![l0.done, l1.done]);
        ob.ret(vec![]);
    }
    let outer_done = outer.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![outer_done]);
    m
}

#[test]
fn verifies_and_takes_two_cycles() {
    let m = build();
    verify_module(&m, &standard_registry()).unwrap();
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 2);
    // Structure: the accelerator has seven named children.
    assert!(report.memory_named("SRAM").is_some());
    assert_eq!(report.memory_named("SRAM").unwrap().bytes_read, 16);
    assert_eq!(report.memory_named("Reg0").unwrap().bytes_written, 16);
}

#[test]
fn print_parse_simulate_is_equivalent() {
    let m = build();
    let text = print_module(&m);
    let reparsed = parse_module(&text).unwrap();
    verify_module(&reparsed, &standard_registry()).unwrap();
    let a = simulate(&m).unwrap();
    let b = simulate(&reparsed).unwrap();
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.trace.len(), b.trace.len());
    // And the text itself is a fixed point.
    assert_eq!(print_module(&reparsed), text);
}

#[test]
fn both_pes_run_in_parallel() {
    let m = build();
    let report = simulate(&m).unwrap();
    let start_of = |tid: &str| {
        report
            .trace
            .events()
            .iter()
            .filter(|e| e.tid == tid)
            .map(|e| e.ts)
            .min()
    };
    // Both PEs start at the same cycle, right after the DMA copy (§II-B:
    // "PE0 and PE1 start simultaneously").
    let pe0 = start_of("PE0").expect("PE0 traced");
    let pe1 = start_of("PE1").expect("PE1 traced");
    assert_eq!(pe0, pe1);
    assert_eq!(pe0, 1);
}

#[test]
fn get_comp_resolves_hierarchy() {
    // Extend the program with get_comp lookups (Fig. 3's `get_comp(accel,
    // "DMA")`) and check they simulate.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R5);
    let dma = b.create_dma();
    let accel = b.create_comp(&["Kernel", "DMA"], vec![kernel, dma]);
    let looked: ValueId = b.get_comp(accel, "Kernel", Type::Proc);
    let start = b.control_start();
    let l = b.launch(start, looked, &[], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 1);
}

#[test]
fn missing_component_is_runtime_error() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R5);
    let accel = b.create_comp(&["Kernel"], vec![kernel]);
    let ghost = b.get_comp(accel, "Ghost", Type::Proc);
    let start = b.control_start();
    let l = b.launch(start, ghost, &[], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    let err = simulate(&m).unwrap_err();
    assert!(err.to_string().contains("Ghost"), "{err}");
}
