//! Golden cycle-count tests: perf-semantics invariance.
//!
//! The expected values below were captured from the engine **before** the
//! dense-frame / copy-on-write hot-path refactor (the original
//! `HashMap<ValueId, SimValue>` interpreter). Any engine optimisation must
//! reproduce them bit-for-bit: speed changes are welcome, simulated cycle
//! counts are contract. If a PR intentionally changes *timing semantics*
//! (not perf), it must update these values and say so loudly.

use equeue_bench::{
    fig09_ifmap_sweep, fig09_weight_sweep, fig11_rows, fig12_sweep, fir_rows, run_quiet, scenarios,
};

#[test]
fn fig09_sweeps_golden() {
    let ifmap: Vec<(String, u64)> = fig09_ifmap_sweep()
        .into_iter()
        .map(|r| (r.label, r.equeue_cycles))
        .collect();
    assert_eq!(
        ifmap,
        [
            ("2x2", 18),
            ("4x4", 42),
            ("8x8", 162),
            ("16x16", 690),
            ("32x32", 2898)
        ]
        .map(|(l, c)| (l.to_string(), c))
    );
    let weight: Vec<(String, u64)> = fig09_weight_sweep()
        .into_iter()
        .map(|r| (r.label, r.equeue_cycles))
        .collect();
    assert_eq!(
        weight,
        [
            ("2x2", 2898),
            ("4x4", 10152),
            ("8x8", 30240),
            ("16x16", 56448),
            ("32x32", 4608)
        ]
        .map(|(l, c)| (l.to_string(), c))
    );
}

#[test]
fn fig11_grid_golden() {
    let got: Vec<u64> = fig11_rows(&[4, 6]).into_iter().map(|r| r.cycles).collect();
    // Stage-major, dataflow-minor (Ws, Is, Os), hw in {4, 6}.
    assert_eq!(
        got,
        vec![
            3456, 3456, 3456, 2592, 2592, 2592, 1767, 1767, 1767, 103, 103, 159, // hw = 4
            13824, 13824, 13824, 10368, 10368, 10368, 6966, 6966, 6966, 187, 412,
            327, // hw = 6
        ]
    );
}

#[test]
fn fig12_sweep_golden() {
    let rows = fig12_sweep(false);
    assert_eq!(rows.len(), 216);
    let sum: u64 = rows.iter().map(|r| r.cycles).sum();
    assert_eq!(
        sum, 344_442,
        "fig12 small-sweep total simulated cycles drifted"
    );
}

#[test]
fn fir_cases_golden() {
    let got: Vec<u64> = fir_rows().into_iter().map(|r| r.cycles).collect();
    assert_eq!(got, vec![2048, 143, 588, 540]);
}

#[test]
fn engine_scenarios_golden() {
    assert_eq!(run_quiet(&scenarios::matmul_linalg(64)).cycles, 2_097_152);
    assert_eq!(run_quiet(&scenarios::matmul_affine(32)).cycles, 196_608);
    assert_eq!(run_quiet(&scenarios::tensor_stream(64, 16)).cycles, 2_048);
}
