//! The paper's §III-B data-movement examples: the same copy expressed as
//! kernel-driven reads/writes (Fig. 4a) and as a DMA memcpy (Fig. 4b),
//! plus connection-mediated transfers between two memories (Fig. 3).

use equeue::prelude::*;
use equeue::sim::TensorData;
use equeue_ir::ValueId;

/// Two SRAM memories joined by a 32 B/cycle streaming connection, with a
/// 64-element buffer in each (§III-B's running example).
fn two_memories() -> (Module, ValueId, ValueId, ValueId, ValueId, ValueId) {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R5);
    let mem0 = b.create_mem(kinds::SRAM, &[4096], 32, 4);
    let mem1 = b.create_mem(kinds::SRAM, &[4096], 32, 4);
    let conn = b.create_connection(ConnKind::Streaming, 32);
    let buffer0 = b.alloc(mem0, &[64], Type::I32);
    let buffer1 = b.alloc(mem1, &[64], Type::I32);
    // Pre-fill buffer0 with recognisable data.
    for i in 0..4 {
        let v = b.const_int(100 + i, Type::I32);
        let idx = b.const_index(i);
        b.write_indexed(v, buffer0, vec![idx], None);
    }
    let start = b.control_start();
    (m, kernel, conn, buffer0, buffer1, start)
}

#[test]
fn kernel_driven_copy_fig4a() {
    // Fig. 4a: the kernel itself reads buffer0 and writes buffer1 through
    // the connection.
    let (mut m, kernel, conn, buffer0, buffer1, start) = two_memories();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let l = b.launch(start, kernel, &[buffer0, buffer1, conn], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let data = ib.read(l.body_args[0], Some(l.body_args[2]));
        ib.write(data, l.body_args[1], Some(l.body_args[2]));
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);

    verify_module(&m, &standard_registry()).unwrap();
    let report = simulate(&m).unwrap();
    // 64 elems over 4 banks = 16 cycles per leg; the kernel serialises
    // read then write (it holds the data in between): 32 cycles total.
    // The four writes that pre-fill buffer0 add 4 cycles up front.
    assert_eq!(report.cycles, 4 + 16 + 16);
    // Data arrived.
    match &report.buffers[1].data.data {
        TensorData::Int(v) => {
            assert_eq!(&v[..4], &[100, 101, 102, 103]);
            assert!(v[4..].iter().all(|&x| x == 0));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Connection stats saw both directions.
    let c = &report.connections[0];
    assert_eq!(c.read.bytes, 256);
    assert_eq!(c.write.bytes, 256);
}

#[test]
fn dma_driven_copy_fig4b() {
    // Fig. 4b: the DMA engine performs the copy; the kernel only issues it.
    let (mut m, kernel, conn, buffer0, buffer1, start) = two_memories();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let dma = b.create_dma();
    let l = b.launch(start, kernel, &[buffer0, buffer1], vec![]);
    let (dma_v, conn_v) = (dma, conn);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let inner_start = ib.control_start();
        let copied = ib.memcpy(
            inner_start,
            l.body_args[0],
            l.body_args[1],
            dma_v,
            Some(conn_v),
        );
        ib.await_all(vec![copied]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);

    verify_module(&m, &standard_registry()).unwrap();
    let report = simulate(&m).unwrap();
    // The DMA pipelines read, transfer, and write: max(16, 8, 16) = 16
    // cycles (plus the 4-cycle pre-fill) — half the kernel-driven copy.
    assert_eq!(report.cycles, 4 + 16);
    match &report.buffers[1].data.data {
        TensorData::Int(v) => assert_eq!(&v[..4], &[100, 101, 102, 103]),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn dealloc_frees_for_reuse_fig3() {
    // §III-B ends by deallocating both buffers; capacity returns.
    let (mut m, _kernel, _conn, buffer0, buffer1, _start) = two_memories();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.dealloc(buffer0);
    b.dealloc(buffer1);
    // Re-allocate the full capacity: only possible if dealloc worked.
    let mem0 = m.result(m.find_first("equeue.create_mem").unwrap(), 0);
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.alloc(mem0, &[4096], Type::I32);
    assert!(simulate(&m).is_ok());
}

#[test]
fn bandwidth_throttles_the_same_copy() {
    // Narrowing the connection from 32 B/cyc to 8 B/cyc makes the transfer
    // connection-bound: 256 B / 8 = 32 cycles per leg.
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let kernel = b.create_proc(kinds::ARM_R5);
    let mem0 = b.create_mem(kinds::SRAM, &[4096], 32, 4);
    let buffer0 = b.alloc(mem0, &[64], Type::I32);
    let conn = b.create_connection(ConnKind::Streaming, 8);
    let start = b.control_start();
    let l = b.launch(start, kernel, &[buffer0, conn], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        ib.read(l.body_args[0], Some(l.body_args[1]));
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    let report = simulate(&m).unwrap();
    assert_eq!(report.cycles, 32);
    assert!((report.connections[0].read.max_bw - 8.0).abs() < 1e-9);
}
