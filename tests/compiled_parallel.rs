//! Golden-equivalence tests for the compile-once / run-many API.
//!
//! Contract: compiling a module once via [`CompiledModule`] and simulating
//! it N times — sequentially or from N threads at once — must yield
//! bit-identical `cycles` / `events_processed` / `ops_interpreted` to N
//! fresh [`simulate_with`] calls (each of which re-runs the prepass). The
//! scenarios are the paper's figure workloads: a fig09 systolic point, a
//! fig11 last-lowering-stage point, and the balanced FIR case.

use equeue_core::{simulate_with, CompiledModule, SimLibrary, SimOptions};
use equeue_dialect::ConvDims;
use equeue_gen::{
    build_stage_program, generate_fir, generate_systolic, FirCase, FirSpec, Stage, SystolicSpec,
};
use equeue_ir::Module;
use equeue_passes::Dataflow;

const RUNS: usize = 3;

/// The determinism fingerprint of one simulation.
type Fingerprint = (u64, u64, u64);

fn fingerprint(r: &equeue_core::SimReport) -> Fingerprint {
    (r.cycles, r.events_processed, r.ops_interpreted)
}

fn quiet() -> SimOptions {
    SimOptions {
        trace: false,
        ..Default::default()
    }
}

/// Runs the equivalence check for one module: N fresh `simulate_with` calls
/// vs one compile + N sequential runs + N concurrent runs.
fn assert_compiled_equivalent(name: &str, module: Module) {
    let opts = quiet();
    let fresh: Vec<Fingerprint> = (0..RUNS)
        .map(|_| {
            let lib = SimLibrary::standard();
            fingerprint(&simulate_with(&module, &lib, &opts).expect("fresh simulation"))
        })
        .collect();
    assert!(
        fresh.windows(2).all(|w| w[0] == w[1]),
        "{name}: fresh simulate_with calls disagree with each other: {fresh:?}"
    );
    let golden = fresh[0];

    let compiled = CompiledModule::compile(module, SimLibrary::standard()).expect("compile");
    for i in 0..RUNS {
        let got = fingerprint(&compiled.simulate(&opts).expect("compiled simulation"));
        assert_eq!(
            got, golden,
            "{name}: sequential compiled run {i} diverged from fresh simulate_with"
        );
    }

    let concurrent: Vec<Fingerprint> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..RUNS)
            .map(|_| {
                let compiled = &compiled;
                let opts = quiet();
                s.spawn(move || {
                    fingerprint(&compiled.simulate(&opts).expect("concurrent simulation"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (i, got) in concurrent.into_iter().enumerate() {
        assert_eq!(
            got, golden,
            "{name}: concurrent compiled run {i} diverged from fresh simulate_with"
        );
    }
}

#[test]
fn fig09_point_compiled_equivalence() {
    let prog = generate_systolic(
        &SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Ws,
        },
        ConvDims::square(8, 2, 3, 1),
    );
    assert_compiled_equivalent("fig09_8x8_ws", prog.module);
}

#[test]
fn fig11_last_stage_compiled_equivalence() {
    let prog = build_stage_program(
        Stage::all()[Stage::all().len() - 1],
        ConvDims::square(4, 3, 3, 4),
        (4, 4),
        Dataflow::Ws,
    );
    assert_compiled_equivalent("fig11_last_stage_4x4", prog.module);
}

#[test]
fn fir_balanced_compiled_equivalence() {
    let prog = generate_fir(FirSpec::default(), FirCase::Balanced4);
    assert_compiled_equivalent("fir_balanced4", prog.module);
}

#[test]
fn fir_traced_compiled_equivalence() {
    // Same contract with tracing on: the trace machinery is per-run state
    // and must not perturb timing across compiled/concurrent runs.
    let prog = generate_fir(FirSpec::default(), FirCase::Pipelined16);
    let opts = SimOptions::default();
    let lib = SimLibrary::standard();
    let fresh = simulate_with(&prog.module, &lib, &opts).expect("fresh simulation");
    let compiled = CompiledModule::compile(prog.module, lib).expect("compile");
    let a = compiled.simulate(&opts).expect("first compiled run");
    let b = compiled.simulate(&opts).expect("second compiled run");
    assert_eq!(fingerprint(&a), fingerprint(&fresh));
    assert_eq!(fingerprint(&b), fingerprint(&fresh));
    assert_eq!(a.trace.to_chrome_json(), b.trace.to_chrome_json());
}
