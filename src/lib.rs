//! # equeue — compiler-driven simulation of reconfigurable hardware accelerators
//!
//! A Rust reproduction of *Compiler-Driven Simulation of Reconfigurable
//! Hardware Accelerators* (Li, Ye, Neuendorffer, Sampson — HPCA 2022).
//! This facade crate re-exports the whole stack:
//!
//! * [`ir`] — the hosting IR kernel (operations, regions, SSA values,
//!   printer/parser, verifier, pass manager);
//! * [`dialect`] — the arith/affine/linalg dialect subsets and the
//!   **EQueue dialect**, the paper's core contribution (§III);
//! * [`sim`] — the generic timed discrete-event simulation engine (§IV)
//!   with its extensible component library, profiling summary, and Chrome
//!   tracing;
//! * [`passes`] — the reusable lowering passes of §V;
//! * [`gen`] — the systolic-array and AI Engine FIR generators used by the
//!   case studies (§VI, §VII);
//! * [`baseline`] — the SCALE-Sim-style analytical model the systolic
//!   study compares against (§VI-C).
//!
//! ## Quick start
//!
//! Model two MAC processing elements fed by a DMA copy (the paper's
//! Fig. 2 accelerator), then simulate:
//!
//! ```
//! use equeue::prelude::*;
//!
//! let mut m = Module::new();
//! let blk = m.top_block();
//! let mut b = OpBuilder::at_end(&mut m, blk);
//! let kernel = b.create_proc(kinds::ARM_R6);
//! let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
//! let reg = b.create_mem(kinds::REGISTER, &[8], 32, 1);
//! let dma = b.create_dma();
//! let pe = b.create_proc(kinds::MAC);
//! let src = b.alloc(sram, &[4], Type::I32);
//! let dst = b.alloc(reg, &[4], Type::I32);
//!
//! let start = b.control_start();
//! let copied = b.memcpy(start, src, dst, dma, None);
//! let work = b.launch(copied, pe, &[dst], vec![]);
//! let mut body = OpBuilder::at_end(b.module_mut(), work.body);
//! body.read(work.body_args[0], None);
//! body.ext_op("mac", vec![], vec![]);
//! body.ret(vec![]);
//! let done = work.done;
//! let mut b = OpBuilder::at_end(&mut m, blk);
//! b.await_all(vec![done]);
//!
//! let report = simulate(&m)?;
//! assert_eq!(report.cycles, 2); // 1-cycle banked copy + 1-cycle mac
//! # Ok::<(), equeue::sim::SimError>(())
//! ```

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use equeue_core as sim;
pub use equeue_dialect as dialect;
pub use equeue_gen as gen;
pub use equeue_ir as ir;
pub use equeue_passes as passes;
pub use scalesim as baseline;

/// The most common imports in one place.
pub mod prelude {
    pub use equeue_core::{
        simulate, simulate_with, SimLibrary, SimOptions, SimReport, Trace, TraceCat,
    };
    pub use equeue_dialect::{
        kinds, standard_registry, AffineBuilder, ArithBuilder, ConnKind, ConvDims, EqueueBuilder,
        LinalgBuilder,
    };
    pub use equeue_ir::{
        parse_module, print_module, verify_module, Module, OpBuilder, Pass, PassManager, Type,
    };
    pub use equeue_passes::Dataflow;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_align() {
        // The stack's dataflow enums convert cleanly.
        let _ = crate::passes::Dataflow::Ws.as_str();
        let _ = crate::baseline::Dataflow::Ws.as_str();
        assert!(crate::dialect::standard_registry().knows("equeue.launch"));
    }
}
