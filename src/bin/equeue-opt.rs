//! `equeue-opt` — the `mlir-opt` analogue for the EQueue stack.
//!
//! Reads a textual EQueue/affine/linalg module, runs a named pass
//! pipeline, and prints the result (or verifies/simulates it):
//!
//! ```text
//! equeue-opt input.mlir \
//!     --pass convert-linalg-to-affine-loops \
//!     --pass equeue-read-write \
//!     --pass canonicalize \
//!     --simulate --trace out.json
//! ```
//!
//! Parameterised passes pick their components from the module the way the
//! paper's pass options name components: `allocate-buffer` places buffers
//! on the *first* memory declared, `launch` targets the *first* processor.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue::prelude::*;
use equeue_ir::{IrError, Pass};
use equeue_passes as passes;
use std::io::Read;
use std::process::ExitCode;

struct Options {
    input: Option<String>,
    pipeline: Vec<String>,
    verify: bool,
    simulate: bool,
    print: bool,
    summary: bool,
    trace: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: equeue-opt [FILE|-] [--pass NAME]... [--verify] [--simulate] \
         [--summary] [--trace FILE] [--no-print]\n\
         passes: canonicalize, convert-linalg-to-affine-loops, equeue-read-write,\n\
         allocate-buffer, launch, memcpy-to-launch, merge-memcpy-launch,\n\
         lower-extraction, flatten-conv-loops-ws|is|os"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut opts = Options {
        input: None,
        pipeline: vec![],
        verify: false,
        simulate: false,
        print: true,
        summary: false,
        trace: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--pass" | "-p" => match args.next() {
                Some(p) => opts.pipeline.push(p),
                None => usage(),
            },
            "--verify" => opts.verify = true,
            "--simulate" => opts.simulate = true,
            "--summary" => {
                opts.simulate = true;
                opts.summary = true;
            }
            "--trace" => match args.next() {
                Some(f) => {
                    opts.simulate = true;
                    opts.trace = Some(f);
                }
                None => usage(),
            },
            "--no-print" => opts.print = false,
            "--help" | "-h" => usage(),
            f if !f.starts_with('-') || f == "-" => {
                if opts.input.replace(f.to_string()).is_some() {
                    usage();
                }
            }
            _ => usage(),
        }
    }
    opts
}

/// Resolves a pass name, using the module for component parameters.
fn make_pass(name: &str, module: &Module) -> Result<Box<dyn Pass>, IrError> {
    let first_result = |op_name: &str| -> Result<equeue_ir::ValueId, IrError> {
        module
            .find_first(op_name)
            .map(|op| module.result(op, 0))
            .ok_or_else(|| {
                IrError::other(format!("pass '{name}' needs a '{op_name}' in the module"))
            })
    };
    Ok(match name {
        "canonicalize" => Box::new(passes::Canonicalize),
        "convert-linalg-to-affine-loops" => Box::new(passes::ConvertLinalgToAffineLoops),
        "equeue-read-write" => Box::new(passes::EqueueReadWrite),
        "memcpy-to-launch" => Box::new(passes::MemcpyToLaunch),
        "merge-memcpy-launch" => Box::new(passes::MergeMemcpyLaunch),
        "lower-extraction" => Box::new(passes::LowerExtraction),
        "allocate-buffer" => Box::new(passes::AllocateMemory::new(first_result(
            "equeue.create_mem",
        )?)),
        "launch" => Box::new(passes::WrapInLaunch::new(first_result(
            "equeue.create_proc",
        )?)),
        "flatten-conv-loops-ws" => Box::new(passes::FlattenConvLoops::new(Dataflow::Ws)),
        "flatten-conv-loops-is" => Box::new(passes::FlattenConvLoops::new(Dataflow::Is)),
        "flatten-conv-loops-os" => Box::new(passes::FlattenConvLoops::new(Dataflow::Os)),
        other => return Err(IrError::other(format!("unknown pass '{other}'"))),
    })
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let opts = parse_args();
    let text = match opts.input.as_deref() {
        None | Some("-") => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
        Some(path) => std::fs::read_to_string(path)?,
    };

    let mut module = parse_module(&text)?;
    let registry = standard_registry();

    for name in &opts.pipeline {
        let mut pass = make_pass(name, &module)?;
        pass.run(&mut module)?;
        verify_module(&module, &registry)
            .map_err(|e| IrError::pass(name.clone(), format!("post-pass verification: {e}")))?;
    }
    if opts.verify {
        verify_module(&module, &registry)?;
        eprintln!("verification: ok");
    }
    if opts.print {
        print!("{}", print_module(&module));
    }
    if opts.simulate {
        let report = simulate(&module)?;
        eprintln!("simulated runtime: {} cycles", report.cycles);
        if opts.summary {
            eprint!("{}", report.summary());
        }
        if let Some(path) = &opts.trace {
            std::fs::write(path, report.trace.to_chrome_json())?;
            eprintln!("trace written: {path}");
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("equeue-opt: {e}");
            ExitCode::FAILURE
        }
    }
}
