//! Deterministic text and JSON renderings of an [`AnalysisReport`].
//!
//! Both formats are stable across runs and thread counts (the analysis is
//! a pure function of the module) and are what the golden-snapshot tests
//! pin down. JSON is hand-rolled — the workspace carries no external
//! dependencies — with keys in fixed order.

use std::fmt::Write as _;

use crate::{AnalysisReport, FuseStatus};

/// Plain-text rendering (the `simcheck` default output).
pub(crate) fn to_text(report: &AnalysisReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== conflict graph ==");
    for (i, n) in report.conflict.nodes.iter().enumerate() {
        let _ = writeln!(
            s,
            "node {i}: {}{}",
            n.label,
            if n.opaque { " (opaque)" } else { "" }
        );
    }
    for &(a, b) in &report.conflict.edges {
        let _ = writeln!(s, "edge: {a} -- {b}");
    }
    for (gi, g) in report.conflict.groups.iter().enumerate() {
        let members: Vec<String> = g.iter().map(|m| m.to_string()).collect();
        let _ = writeln!(s, "group {gi}: [{}]", members.join(", "));
    }
    let _ = writeln!(s, "== deadlock ==");
    let _ = writeln!(s, "deadlock_free: {}", report.deadlock_free);
    let _ = writeln!(s, "== fusibility ==");
    for l in &report.fusibility.loops {
        let status = match &l.status {
            FuseStatus::Fuses { insts } => format!("fuses ({insts} insts)"),
            FuseStatus::ZeroTrip => "zero-trip".to_string(),
            FuseStatus::Declines { reason } => format!("declines: {reason}"),
        };
        let trip = l
            .trip_count
            .map_or("unknown".to_string(), |t| t.to_string());
        let _ = writeln!(s, "{}: {status}, trip {trip}", l.location);
    }
    let _ = writeln!(
        s,
        "fusible: {} of {}",
        report.fusibility.fusible_count(),
        report.fusibility.loops.len()
    );
    let _ = writeln!(s, "== resources ==");
    let fmt_bound = |b: Option<u64>| b.map_or("unknown".to_string(), |v| v.to_string());
    let _ = writeln!(
        s,
        "live_tensor_bytes <= {}",
        fmt_bound(report.resources.live_tensor_bytes_bound)
    );
    let _ = writeln!(s, "events <= {}", fmt_bound(report.resources.events_bound));
    let _ = writeln!(s, "== diagnostics ==");
    for d in &report.diagnostics {
        let _ = writeln!(s, "{d}");
    }
    s
}

/// Minimal JSON string escaping.
fn esc(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn opt_u64(out: &mut String, v: Option<u64>) {
    match v {
        Some(x) => {
            let _ = write!(out, "{x}");
        }
        None => out.push_str("null"),
    }
}

/// JSON rendering (the `simcheck --json` output).
pub(crate) fn to_json(report: &AnalysisReport) -> String {
    let mut s = String::new();
    s.push_str("{\"conflict\":{\"nodes\":[");
    for (i, n) in report.conflict.nodes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"label\":");
        esc(&mut s, &n.label);
        let _ = write!(s, ",\"opaque\":{}}}", n.opaque);
    }
    s.push_str("],\"edges\":[");
    for (i, &(a, b)) in report.conflict.edges.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{a},{b}]");
    }
    s.push_str("],\"groups\":[");
    for (i, g) in report.conflict.groups.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        for (j, m) in g.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let _ = write!(s, "{m}");
        }
        s.push(']');
    }
    let _ = write!(s, "]}},\"deadlock_free\":{},", report.deadlock_free);
    s.push_str("\"fusibility\":{\"loops\":[");
    for (i, l) in report.fusibility.loops.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"location\":");
        esc(&mut s, &l.location);
        s.push_str(",\"trip\":");
        opt_u64(&mut s, l.trip_count);
        s.push_str(",\"status\":");
        match &l.status {
            FuseStatus::Fuses { insts } => {
                let _ = write!(s, "\"fuses\",\"insts\":{insts}");
            }
            FuseStatus::ZeroTrip => s.push_str("\"zero-trip\""),
            FuseStatus::Declines { reason } => {
                s.push_str("\"declines\",\"reason\":");
                esc(&mut s, reason);
            }
        }
        s.push('}');
    }
    let _ = write!(s, "],\"fusible\":{}}},", report.fusibility.fusible_count());
    s.push_str("\"resources\":{\"live_tensor_bytes_bound\":");
    opt_u64(&mut s, report.resources.live_tensor_bytes_bound);
    s.push_str(",\"events_bound\":");
    opt_u64(&mut s, report.resources.events_bound);
    s.push_str("},\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str("{\"pass\":");
        esc(&mut s, d.pass);
        s.push_str(",\"severity\":");
        esc(&mut s, d.severity.as_str());
        s.push_str(",\"code\":");
        esc(&mut s, d.code);
        s.push_str(",\"message\":");
        esc(&mut s, &d.message);
        s.push_str(",\"location\":");
        match &d.location {
            Some(loc) => esc(&mut s, loc),
            None => s.push_str("null"),
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}
