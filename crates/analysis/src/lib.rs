//! # equeue-analysis — static analysis over EQueue modules
//!
//! A pass framework that inspects a module *before* any cycle is simulated
//! and emits structured, source-located diagnostics. The passes lean on the
//! engine's own layout prepass (via [`equeue_core::PrepassFacts`]) so their
//! claims are about exactly the program the engine would execute.
//!
//! The standard pipeline ([`Analyzer::standard`]) runs five passes:
//!
//! 1. **conflict** — builds the port/connection [`ConflictGraph`]: which
//!    processors touch overlapping memories/connections and therefore
//!    contend if scheduled in the same time window. The serialized graph is
//!    the prerequisite artifact for the parallel event loop on the roadmap.
//! 2. **deadlock** — a sound completion proof over the launch/connection
//!    graph. `deadlock_free = true` is a *guarantee* (the runtime can never
//!    return `SimError::Deadlock`); `false` means either a proven wait
//!    cycle (Error) or an unprovable case (Warning).
//! 3. **fusibility** — for every `affine.for`, either "fuses" (with trace
//!    length) or the precise decline reason, including the
//!    statically-decidable parts of the runtime preflight (non-integer
//!    tensors, cache-backed memories).
//! 4. **dead** — dead values and never-used hardware entities
//!    (processors, memories, connections, DMA engines).
//! 5. **resource** — static upper bounds on live tensor bytes and spawned
//!    events, cross-checked against [`RunLimits`].
//!
//! Analysis is total: it accepts IR that the strict
//! [`equeue_core::CompiledModule::compile`] path rejects (the malformed-IR
//! fuzzer corpus is part of its test suite) and never panics — malformed
//! structure degrades to `Unknown`/`Warning`, not to a crash.
//!
//! ## Example
//!
//! ```
//! use equeue_analysis::analyze_module;
//! use equeue_core::{RunLimits, SimLibrary};
//!
//! let module = equeue_gen::scenarios::matmul_affine(4);
//! let report = analyze_module(&module, &SimLibrary::standard(), &RunLimits::default());
//! assert!(report.deadlock_free);
//! assert_eq!(report.fusibility.fusible_count(), 1); // the innermost loop
//! println!("{}", report.to_text());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Analysis must never panic, even on fuzzer-malformed IR.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::collections::HashMap;
use std::fmt;

use equeue_core::{analyze_facts, CompiledModule, MemFact, PrepassFacts, RunLimits, SimLibrary};
use equeue_dialect::launch_view;
use equeue_ir::{BlockId, Module, OpId, ValueDef, ValueId};

mod conflict;
mod dead;
mod deadlock;
mod fusibility;
mod render;
mod resource;

pub use conflict::{ConflictGraph, ConflictNode};
pub use deadlock::DeadlockPass;
pub use fusibility::{FuseStatus, FusibilityReport, LoopReport};
pub use resource::ResourceEstimate;

pub use conflict::ConflictPass;
pub use dead::DeadPass;
pub use fusibility::FusibilityPass;
pub use resource::ResourcePass;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// Diagnostic severity, ordered `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational finding (summaries, per-item reports).
    Info,
    /// Suspicious but not definitely wrong, or a claim analysis cannot
    /// prove either way.
    Warning,
    /// A definite problem: the program is malformed or provably misbehaves.
    Error,
}

impl Severity {
    /// Lower-case display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One structured, source-located diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Name of the pass that produced this diagnostic.
    pub pass: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Stable machine-readable code (`"static-deadlock"`, `"dead-value"`).
    pub code: &'static str,
    /// Human-readable message.
    pub message: String,
    /// Op path within the module (`"equeue.launch@op5/affine.for@op9"`),
    /// when the finding anchors to an op.
    pub location: Option<String>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.as_str(),
            self.code,
            self.message
        )?;
        if let Some(loc) = &self.location {
            write!(f, " (at {loc})")?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Analysis context
// ---------------------------------------------------------------------------

/// Where a buffer value ultimately lives, as far as static resolution can
/// tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferOrigin {
    /// Allocated (via `equeue.alloc`) in the memory created by this
    /// `equeue.create_mem` op.
    Mem(OpId),
    /// Host memory (`memref.alloc`).
    Host(OpId),
    /// Not statically resolvable (malformed IR, or a value shape the
    /// resolver does not model). Passes must treat this conservatively.
    Unknown,
}

/// Shared read-only state handed to every pass: the module, the engine's
/// prepass facts, run limits to cross-check against, and pre-computed
/// op-path / use maps.
pub struct AnalysisCtx<'m> {
    /// The module under analysis.
    pub module: &'m Module,
    /// The engine layout prepass's view of the module (lenient: malformed
    /// ops are data, not errors).
    pub facts: PrepassFacts,
    /// Limits the resource pass cross-checks its bounds against.
    pub limits: RunLimits,
    op_paths: Vec<Option<String>>,
    uses: HashMap<ValueId, Vec<(OpId, usize)>>,
    mem_by_op: HashMap<usize, usize>,
    loop_by_body: HashMap<usize, usize>,
}

/// Depth cap for all recursive walks: fuzzer-mutated IR may contain
/// region/capture chains the arena invariants no longer bound.
pub(crate) const MAX_DEPTH: usize = 128;

impl<'m> AnalysisCtx<'m> {
    /// Builds the context: runs the lenient prepass and pre-computes op
    /// paths and the use map.
    pub fn new(module: &'m Module, library: &SimLibrary, limits: RunLimits) -> Self {
        let facts = analyze_facts(module, library);
        let mut op_paths = vec![None; module.num_ops()];
        build_paths(
            module,
            module.top_block(),
            &mut String::new(),
            &mut op_paths,
            0,
        );
        let mem_by_op = facts
            .mems
            .iter()
            .enumerate()
            .map(|(i, m)| (m.op.index(), i))
            .collect();
        let loop_by_body = facts
            .loops
            .iter()
            .enumerate()
            .map(|(i, l)| (l.body.index(), i))
            .collect();
        AnalysisCtx {
            module,
            facts,
            limits,
            op_paths,
            uses: module.collect_uses(),
            mem_by_op,
            loop_by_body,
        }
    }

    /// The op's path within the module: its enclosing region-owning ops
    /// joined with `/`, each as `name@opN`. Falls back to `opN` for ops the
    /// path walk could not reach (detached or malformed).
    pub fn location(&self, op: OpId) -> String {
        match self.op_paths.get(op.index()).and_then(|p| p.clone()) {
            Some(p) => p,
            None => format!("{op}"),
        }
    }

    /// Uses of `value` as `(op, operand index)` pairs; empty if unused.
    pub fn uses_of(&self, value: ValueId) -> &[(OpId, usize)] {
        self.uses.get(&value).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The [`MemFact`] for a `equeue.create_mem` op, if the prepass decoded
    /// one there.
    pub fn mem_fact(&self, op: OpId) -> Option<&MemFact> {
        self.mem_by_op
            .get(&op.index())
            .map(|&i| &self.facts.mems[i])
    }

    /// The loop-fact index for an `affine.for` *body* block.
    pub fn loop_fact_by_body(&self, body: BlockId) -> Option<&equeue_core::LoopFact> {
        self.loop_by_body
            .get(&body.index())
            .map(|&i| &self.facts.loops[i])
    }

    /// Bounds-checked op lookup (skips erased and out-of-range ids).
    pub fn op_checked(&self, op: OpId) -> Option<&equeue_ir::Operation> {
        if op.index() >= self.module.num_ops() {
            return None;
        }
        let data = self.module.op(op);
        (!data.erased).then_some(data)
    }

    /// Resolves a value to its ultimate defining op, looking through
    /// `equeue.launch` body arguments to the captured value in the parent
    /// scope. Returns `None` for block arguments that are not launch
    /// captures (loop induction variables, top-level args) and for
    /// malformed chains.
    pub fn resolve_def(&self, value: ValueId) -> Option<OpId> {
        let mut v = value;
        for _ in 0..MAX_DEPTH {
            if v.index() >= self.module.num_values() {
                return None;
            }
            match self.module.value(v).def {
                ValueDef::OpResult { op, .. } => {
                    return self.op_checked(op).map(|_| op);
                }
                ValueDef::BlockArg { block, index } => {
                    if block.index() >= self.module.num_blocks() {
                        return None;
                    }
                    let region = self.module.block(block).parent_region;
                    if region.index() >= self.module.num_regions() {
                        return None;
                    }
                    let parent = self.module.region(region).parent_op?;
                    let pdata = self.op_checked(parent)?;
                    if pdata.name != "equeue.launch" {
                        return None;
                    }
                    let lv = launch_view(self.module, parent).ok()?;
                    v = *lv.captures.get(index)?;
                }
            }
        }
        None
    }

    /// Resolves a buffer-typed value to its allocation site's memory.
    pub fn buffer_origin(&self, value: ValueId) -> BufferOrigin {
        let Some(def) = self.resolve_def(value) else {
            return BufferOrigin::Unknown;
        };
        let Some(data) = self.op_checked(def) else {
            return BufferOrigin::Unknown;
        };
        match data.name.as_str() {
            "equeue.alloc" => {
                let Some(&mem) = data.operands.first() else {
                    return BufferOrigin::Unknown;
                };
                match self.resolve_def(mem) {
                    Some(m)
                        if self
                            .op_checked(m)
                            .is_some_and(|d| d.name == "equeue.create_mem") =>
                    {
                        BufferOrigin::Mem(m)
                    }
                    _ => BufferOrigin::Unknown,
                }
            }
            "memref.alloc" => BufferOrigin::Host(def),
            _ => BufferOrigin::Unknown,
        }
    }
}

/// Depth-first path construction over the region tree. Uses an explicit
/// depth cap instead of trusting arena invariants (fuzzer-mutated modules).
fn build_paths(
    module: &Module,
    block: BlockId,
    prefix: &mut String,
    out: &mut Vec<Option<String>>,
    depth: usize,
) {
    if depth > MAX_DEPTH || block.index() >= module.num_blocks() {
        return;
    }
    for &op in &module.block(block).ops {
        if op.index() >= module.num_ops() {
            continue;
        }
        let data = module.op(op);
        if data.erased {
            continue;
        }
        let seg = format!("{}@{op}", data.name);
        let path = if prefix.is_empty() {
            seg.clone()
        } else {
            format!("{prefix}/{seg}")
        };
        if let Some(slot) = out.get_mut(op.index()) {
            if slot.is_none() {
                *slot = Some(path.clone());
            } else {
                // Already visited via another parent: the region tree is
                // not a tree (malformed IR) — stop descending here.
                continue;
            }
        }
        for &region in &data.regions {
            if region.index() >= module.num_regions() {
                continue;
            }
            for &b in &module.region(region).blocks {
                let saved = prefix.len();
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(&seg);
                build_paths(module, b, prefix, out, depth + 1);
                prefix.truncate(saved);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Report and pass pipeline
// ---------------------------------------------------------------------------

/// Aggregate result of an analysis run: diagnostics plus the structured
/// artifacts individual passes fill in.
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// All diagnostics, in pass-pipeline order (deterministic).
    pub diagnostics: Vec<Diagnostic>,
    /// The port/connection conflict graph (conflict pass).
    pub conflict: ConflictGraph,
    /// Per-loop fusibility verdicts (fusibility pass).
    pub fusibility: FusibilityReport,
    /// Static resource upper bounds (resource pass).
    pub resources: ResourceEstimate,
    /// `true` only when the deadlock pass *proved* every event completes.
    /// A scenario with this set can never return `SimError::Deadlock` at
    /// runtime.
    pub deadlock_free: bool,
}

impl AnalysisReport {
    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warning`-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Deterministic plain-text rendering (golden-snapshot format).
    pub fn to_text(&self) -> String {
        render::to_text(self)
    }

    /// Deterministic JSON rendering (no external serializer; keys in fixed
    /// order).
    pub fn to_json(&self) -> String {
        render::to_json(self)
    }
}

/// One static-analysis pass.
pub trait AnalysisPass {
    /// Stable pass name (used as [`Diagnostic::pass`]).
    fn name(&self) -> &'static str;
    /// Runs the pass, appending diagnostics and filling the report section
    /// it owns. Must not panic on any input.
    fn run(&self, ctx: &AnalysisCtx<'_>, out: &mut AnalysisReport);
}

/// An ordered pipeline of [`AnalysisPass`]es.
pub struct Analyzer {
    passes: Vec<Box<dyn AnalysisPass>>,
}

impl Analyzer {
    /// The standard five-pass pipeline: conflict, deadlock, fusibility,
    /// dead, resource.
    pub fn standard() -> Self {
        Analyzer {
            passes: vec![
                Box::new(conflict::ConflictPass),
                Box::new(deadlock::DeadlockPass),
                Box::new(fusibility::FusibilityPass),
                Box::new(dead::DeadPass),
                Box::new(resource::ResourcePass),
            ],
        }
    }

    /// An empty pipeline to extend with [`Analyzer::add`].
    pub fn empty() -> Self {
        Analyzer { passes: Vec::new() }
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: Box<dyn AnalysisPass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Runs every pass in order over `ctx`.
    pub fn run(&self, ctx: &AnalysisCtx<'_>) -> AnalysisReport {
        let mut report = AnalysisReport::default();
        for pass in &self.passes {
            pass.run(ctx, &mut report);
        }
        report
    }
}

/// Runs the standard pipeline over a module **leniently**: malformed IR
/// yields typed diagnostics, never a panic or an error return. This is the
/// entry point `simcheck` and the fuzzer harness use.
pub fn analyze_module(module: &Module, library: &SimLibrary, limits: &RunLimits) -> AnalysisReport {
    let ctx = AnalysisCtx::new(module, library, *limits);
    Analyzer::standard().run(&ctx)
}

/// Runs the standard pipeline over an already-compiled (strictly validated)
/// module, with default run limits.
pub fn analyze(compiled: &CompiledModule) -> AnalysisReport {
    analyze_module(compiled.module(), compiled.library(), &RunLimits::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_through_launch_captures() {
        let module = equeue_gen::scenarios::matmul_affine(4);
        let lib = SimLibrary::standard();
        let ctx = AnalysisCtx::new(&module, &lib, RunLimits::default());
        // Every affine.load buffer in the loop body must resolve to the
        // single create_mem through the launch capture chain.
        let mut loads = 0;
        module.walk(|op| {
            let data = ctx.module.op(op);
            if data.name == "affine.load" {
                loads += 1;
                let buf = data.operands[0];
                assert!(matches!(ctx.buffer_origin(buf), BufferOrigin::Mem(_)));
            }
        });
        assert!(loads >= 3);
    }

    #[test]
    fn locations_are_paths() {
        let module = equeue_gen::scenarios::matmul_linalg(4);
        let lib = SimLibrary::standard();
        let ctx = AnalysisCtx::new(&module, &lib, RunLimits::default());
        let mut seen_nested = false;
        module.walk(|op| {
            if ctx.module.op(op).name == "linalg.matmul" {
                let loc = ctx.location(op);
                assert!(loc.starts_with("equeue.launch@"), "{loc}");
                assert!(loc.contains("/linalg.matmul@"), "{loc}");
                seen_nested = true;
            }
        });
        assert!(seen_nested);
    }
}
