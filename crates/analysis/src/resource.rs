//! Static resource estimation: upper bounds on live tensor bytes and
//! spawned events, cross-checked against [`equeue_core::RunLimits`].
//!
//! The bounds are sound over-approximations of the runtime counters
//! ([`equeue_core::SimReport::peak_live_tensor_bytes`] and
//! [`equeue_core::SimReport::events_spawned`]):
//!
//! * every allocation site (`equeue.alloc` / `memref.alloc`) contributes
//!   its byte size times the product of enclosing loop trip counts
//!   (deallocations are ignored — peak ≤ total allocated);
//! * every event site (`equeue.launch` / `equeue.memcpy`) contributes its
//!   execution multiplicity the same way.
//!
//! A site whose multiplicity is not statically derivable (unknown loop
//! bounds, non-loop region parents) makes the corresponding bound `None`
//! rather than silently wrong. When a derived bound exceeds a `RunLimits`
//! budget the pass warns: the scenario *may* trip that limit at runtime.

use equeue_ir::OpId;

use crate::{AnalysisCtx, AnalysisPass, AnalysisReport, Diagnostic, Severity};

/// Static upper bounds; `None` = not derivable for this module.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Upper bound on simultaneously-live tensor bytes.
    pub live_tensor_bytes_bound: Option<u64>,
    /// Upper bound on spawned events (launches + memcpys).
    pub events_bound: Option<u64>,
}

/// The resource-estimation pass.
pub struct ResourcePass;

/// Execution multiplicity of `op`: the product of the trip counts of every
/// enclosing `affine.for`/`affine.parallel` across the whole launch-nest
/// chain. `None` when any enclosing construct has no static trip count.
fn multiplicity(ctx: &AnalysisCtx<'_>, op: OpId) -> Option<u64> {
    let mut acc: u64 = 1;
    let mut cur = op;
    for _ in 0..crate::MAX_DEPTH {
        let data = ctx.op_checked(cur)?;
        let block = data.parent_block?;
        if block.index() >= ctx.module.num_blocks() {
            return None;
        }
        let region = ctx.module.block(block).parent_region;
        if region.index() >= ctx.module.num_regions() {
            return None;
        }
        let Some(parent) = ctx.module.region(region).parent_op else {
            return Some(acc); // reached the top region
        };
        let pdata = ctx.op_checked(parent)?;
        match pdata.name.as_str() {
            "affine.for" => {
                let lf = ctx.loop_fact_by_body(block)?;
                acc = acc.checked_mul(lf.trip_count()?)?;
            }
            "affine.parallel" => {
                let lowers = pdata.attrs.int_array("lowers")?.to_vec();
                let uppers = pdata.attrs.int_array("uppers")?.to_vec();
                let steps = pdata.attrs.int_array("steps")?.to_vec();
                if lowers.len() != uppers.len() || lowers.len() != steps.len() {
                    return None;
                }
                for ((&lo, &up), &st) in lowers.iter().zip(&uppers).zip(&steps) {
                    let trips = if lo >= up {
                        0
                    } else if st <= 0 {
                        return None;
                    } else {
                        ((up - lo) as u64).div_ceil(st as u64)
                    };
                    acc = acc.checked_mul(trips)?;
                }
            }
            "equeue.launch" => {
                // The body runs once per spawn of the launch event; keep
                // accumulating the launch op's own multiplicity.
            }
            _ => return None, // unmodelled region parent: no static bound
        }
        cur = parent;
    }
    None
}

/// Byte size of an allocation site from its result type.
fn alloc_bytes(ctx: &AnalysisCtx<'_>, op: OpId) -> Option<u64> {
    let data = ctx.op_checked(op)?;
    let result = *data.results.first()?;
    if result.index() >= ctx.module.num_values() {
        return None;
    }
    let ty = ctx.module.value_type(result);
    let elems = ty.num_elements()? as u64;
    let width = ty.elem_byte_width()? as u64;
    elems.checked_mul(width)
}

impl AnalysisPass for ResourcePass {
    fn name(&self) -> &'static str {
        "resource"
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, out: &mut AnalysisReport) {
        let mut tensor_bound: Option<u64> = Some(0);
        let mut event_bound: Option<u64> = Some(0);
        let mut opaque_allocs = 0usize;
        let mut opaque_events = 0usize;

        for op in ctx.module.live_ops() {
            let Some(data) = ctx.op_checked(op) else {
                continue;
            };
            match data.name.as_str() {
                "equeue.alloc" | "memref.alloc" => {
                    let site = alloc_bytes(ctx, op)
                        .and_then(|b| multiplicity(ctx, op).and_then(|m| b.checked_mul(m)));
                    match (tensor_bound, site) {
                        (Some(acc), Some(b)) => tensor_bound = acc.checked_add(b),
                        _ => {
                            tensor_bound = None;
                            opaque_allocs += 1;
                        }
                    }
                }
                "equeue.launch" | "equeue.memcpy" => match (event_bound, multiplicity(ctx, op)) {
                    (Some(acc), Some(m)) => event_bound = acc.checked_add(m),
                    _ => {
                        event_bound = None;
                        opaque_events += 1;
                    }
                },
                _ => {}
            }
        }

        let fmt_bound = |b: Option<u64>| b.map_or("unknown".to_string(), |v| v.to_string());
        out.diagnostics.push(Diagnostic {
            pass: self.name(),
            severity: Severity::Info,
            code: "resource-summary",
            message: format!(
                "static bounds: live tensor bytes <= {}, events <= {}",
                fmt_bound(tensor_bound),
                fmt_bound(event_bound)
            ),
            location: None,
        });
        if opaque_allocs + opaque_events > 0 {
            out.diagnostics.push(Diagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                code: "unbounded-site",
                message: format!(
                    "{opaque_allocs} allocation and {opaque_events} event sites have no static multiplicity"
                ),
                location: None,
            });
        }
        if let Some(b) = tensor_bound {
            if b > ctx.limits.max_live_tensor_bytes {
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "limit-risk",
                    message: format!(
                        "tensor-byte bound {b} exceeds RunLimits.max_live_tensor_bytes {}",
                        ctx.limits.max_live_tensor_bytes
                    ),
                    location: None,
                });
            }
        }
        if let Some(b) = event_bound {
            if b > ctx.limits.max_events {
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "limit-risk",
                    message: format!(
                        "event bound {b} exceeds RunLimits.max_events {}",
                        ctx.limits.max_events
                    ),
                    location: None,
                });
            }
        }

        out.resources = ResourceEstimate {
            live_tensor_bytes_bound: tensor_bound,
            events_bound: event_bound,
        };
    }
}
