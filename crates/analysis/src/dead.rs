//! Dead-value and unused-hardware detection.
//!
//! Flags two kinds of waste:
//!
//! * **dead values** — results of side-effect-free ops (`arith.*`,
//!   `affine.load`, `equeue.get_comp`) that nothing uses: computed, timed,
//!   then discarded;
//! * **unused hardware** — processors, memories, connections, and DMA
//!   engines that are created but never referenced. These still elaborate
//!   into the machine model, so they are almost certainly authoring
//!   mistakes (e.g. a swept parameter that disconnected a port).
//!
//! Both are warnings: the program still simulates, just wastefully.

use crate::{AnalysisCtx, AnalysisPass, AnalysisReport, Diagnostic, Severity};

/// The dead-value / unused-hardware pass.
pub struct DeadPass;

/// Ops whose only observable effect is their result value.
fn is_pure(name: &str) -> bool {
    name.starts_with("arith.") || name == "affine.load" || name == "equeue.get_comp"
}

/// Hardware-entity creators, with the label used in diagnostics.
fn entity_kind(name: &str) -> Option<&'static str> {
    match name {
        "equeue.create_proc" => Some("processor"),
        "equeue.create_mem" => Some("memory"),
        "equeue.create_connection" => Some("connection"),
        "equeue.create_dma" => Some("dma engine"),
        _ => None,
    }
}

impl AnalysisPass for DeadPass {
    fn name(&self) -> &'static str {
        "dead"
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, out: &mut AnalysisReport) {
        let mut dead = 0usize;
        let mut unused = 0usize;
        for op in ctx.module.live_ops() {
            let Some(data) = ctx.op_checked(op) else {
                continue;
            };
            if data.results.is_empty() {
                continue;
            }
            let all_unused = data.results.iter().all(|r| ctx.uses_of(*r).is_empty());
            if !all_unused {
                continue;
            }
            if let Some(kind) = entity_kind(&data.name) {
                unused += 1;
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "unused-port",
                    message: format!("{kind} is created but never used"),
                    location: Some(ctx.location(op)),
                });
            } else if is_pure(&data.name) {
                dead += 1;
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "dead-value",
                    message: format!("result of {} is never used", data.name),
                    location: Some(ctx.location(op)),
                });
            }
        }
        out.diagnostics.push(Diagnostic {
            pass: self.name(),
            severity: Severity::Info,
            code: "dead-summary",
            message: format!("{dead} dead values, {unused} unused hardware entities"),
            location: None,
        });
    }
}
