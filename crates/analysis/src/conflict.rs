//! Port/connection conflict graph.
//!
//! Builds a graph whose nodes are processors (plus the implicit host and
//! every DMA engine) and whose edges connect two nodes that statically
//! *may* touch the same memory or connection — i.e. that can contend for
//! ports/bandwidth if scheduled in the same time window. The complement
//! relation (absence of an edge) is the safety certificate the future
//! parallel event loop needs: two processors in different independent
//! groups can be stepped concurrently without observing each other's
//! machine state.
//!
//! Resolution is conservative. A node whose resource footprint contains
//! anything unresolvable is marked *opaque* and conflicts with every other
//! node; a launch whose target processor cannot be resolved degrades the
//! whole graph to a single group. Both cases emit warnings — sound, never
//! silently optimistic.

use std::collections::BTreeSet;

use equeue_dialect::{launch_view, memcpy_view, read_view, write_view};
use equeue_ir::{BlockId, OpId};

use crate::{AnalysisCtx, AnalysisPass, AnalysisReport, BufferOrigin, Diagnostic, Severity};

/// One conflict-graph node: a processor, DMA engine, or the implicit host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictNode {
    /// The defining `create_proc`/`create_dma` op; `None` for the host.
    pub op: Option<OpId>,
    /// Display label (`"host"`, `"arm_r5@op0"`).
    pub label: String,
    /// Whether the node's footprint could not be fully resolved; opaque
    /// nodes conflict with every other node.
    pub opaque: bool,
}

/// The serialized conflict graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictGraph {
    /// Nodes in deterministic order: host first, then processors/DMAs in
    /// op order.
    pub nodes: Vec<ConflictNode>,
    /// Conflict edges as `(a, b)` node-index pairs with `a < b`, sorted.
    pub edges: Vec<(usize, usize)>,
    /// Connected components of the conflict relation, each sorted; the
    /// groups themselves sorted by first member. Nodes in different groups
    /// never contend.
    pub groups: Vec<Vec<usize>>,
}

/// A statically-identified shared resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Res {
    /// A device memory (`create_mem` op index).
    Mem(usize),
    /// A connection (`create_connection` op index).
    Conn(usize),
    /// The host's implicit memory (`memref.alloc` buffers).
    HostMem,
}

/// The conflict-graph pass.
pub struct ConflictPass;

struct Builder<'c, 'm> {
    ctx: &'c AnalysisCtx<'m>,
    footprints: Vec<BTreeSet<Res>>,
    opaque: Vec<bool>,
    node_of_proc: std::collections::HashMap<usize, usize>,
    unresolved_launches: Vec<String>,
}

impl<'c, 'm> Builder<'c, 'm> {
    /// Records one resource use by `node`, degrading to opaque on
    /// unresolvable buffers/connections.
    fn touch_buffer(&mut self, node: usize, buffer: equeue_ir::ValueId) {
        match self.ctx.buffer_origin(buffer) {
            BufferOrigin::Mem(m) => {
                self.footprints[node].insert(Res::Mem(m.index()));
            }
            BufferOrigin::Host(_) => {
                self.footprints[node].insert(Res::HostMem);
            }
            BufferOrigin::Unknown => self.opaque[node] = true,
        }
    }

    fn touch_conn(&mut self, node: usize, conn: Option<equeue_ir::ValueId>) {
        let Some(c) = conn else { return };
        match self.ctx.resolve_def(c) {
            Some(def)
                if self
                    .ctx
                    .op_checked(def)
                    .is_some_and(|d| d.name == "equeue.create_connection") =>
            {
                self.footprints[node].insert(Res::Conn(def.index()));
            }
            _ => self.opaque[node] = true,
        }
    }

    /// Walks `block` attributing resource uses to `owner`; descends into
    /// loop bodies with the same owner and into launch bodies with the
    /// launch's target node.
    fn visit_block(&mut self, block: BlockId, owner: usize, depth: usize) {
        if depth > crate::MAX_DEPTH || block.index() >= self.ctx.module.num_blocks() {
            return;
        }
        let ops = self.ctx.module.block(block).ops.clone();
        for op in ops {
            let Some(data) = self.ctx.op_checked(op) else {
                continue;
            };
            match data.name.as_str() {
                "equeue.launch" => {
                    let Ok(lv) = launch_view(self.ctx.module, op) else {
                        self.unresolved_launches.push(self.ctx.location(op));
                        continue;
                    };
                    let target = self
                        .ctx
                        .resolve_def(lv.proc)
                        .and_then(|d| self.node_of_proc.get(&d.index()).copied());
                    match target {
                        Some(node) => self.visit_block(lv.body, node, depth + 1),
                        None => {
                            self.unresolved_launches.push(self.ctx.location(op));
                            // Still walk the body (attributed to host) so
                            // nested launches get their own attribution.
                            self.visit_block(lv.body, 0, depth + 1);
                        }
                    }
                }
                "equeue.memcpy" => {
                    if let Ok(mv) = memcpy_view(self.ctx.module, op) {
                        let node = self
                            .ctx
                            .resolve_def(mv.dma)
                            .and_then(|d| self.node_of_proc.get(&d.index()).copied());
                        match node {
                            Some(n) => {
                                self.touch_buffer(n, mv.src);
                                self.touch_buffer(n, mv.dst);
                                self.touch_conn(n, mv.conn);
                            }
                            None => self.unresolved_launches.push(self.ctx.location(op)),
                        }
                    } else {
                        self.unresolved_launches.push(self.ctx.location(op));
                    }
                }
                "equeue.read" => {
                    if let Ok(rv) = read_view(self.ctx.module, op) {
                        self.touch_buffer(owner, rv.buffer);
                        self.touch_conn(owner, rv.conn);
                    } else {
                        self.opaque[owner] = true;
                    }
                }
                "equeue.write" => {
                    if let Ok(wv) = write_view(self.ctx.module, op) {
                        self.touch_buffer(owner, wv.buffer);
                        self.touch_conn(owner, wv.conn);
                    } else {
                        self.opaque[owner] = true;
                    }
                }
                "affine.load" => {
                    if let Some(&buf) = data.operands.first() {
                        self.touch_buffer(owner, buf);
                    }
                }
                "affine.store" => {
                    if let Some(&buf) = data.operands.get(1) {
                        self.touch_buffer(owner, buf);
                    }
                }
                _ => {
                    // Descend into non-launch regions (loops) with the same
                    // owner.
                    let regions = data.regions.clone();
                    for region in regions {
                        if region.index() >= self.ctx.module.num_regions() {
                            continue;
                        }
                        let blocks = self.ctx.module.region(region).blocks.clone();
                        for b in blocks {
                            self.visit_block(b, owner, depth + 1);
                        }
                    }
                }
            }
        }
    }
}

impl AnalysisPass for ConflictPass {
    fn name(&self) -> &'static str {
        "conflict"
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, out: &mut AnalysisReport) {
        let mut nodes = vec![ConflictNode {
            op: None,
            label: "host".to_string(),
            opaque: false,
        }];
        let mut node_of_proc = std::collections::HashMap::new();
        for p in &ctx.facts.procs {
            node_of_proc.insert(p.op.index(), nodes.len());
            nodes.push(ConflictNode {
                op: Some(p.op),
                label: format!("{}@{}", p.kind, p.op),
                opaque: false,
            });
        }

        let n = nodes.len();
        let mut b = Builder {
            ctx,
            footprints: vec![BTreeSet::new(); n],
            opaque: vec![false; n],
            node_of_proc,
            unresolved_launches: Vec::new(),
        };
        b.visit_block(ctx.module.top_block(), 0, 0);

        for loc in &b.unresolved_launches {
            out.diagnostics.push(Diagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                code: "unresolved-target",
                message: "event target not statically resolvable; conflict graph degraded to a single group".to_string(),
                location: Some(loc.clone()),
            });
        }
        // An unattributable event could touch anything: every node becomes
        // opaque, collapsing the graph into one group.
        if !b.unresolved_launches.is_empty() {
            for o in &mut b.opaque {
                *o = true;
            }
        }

        for (i, node) in nodes.iter_mut().enumerate() {
            node.opaque = b.opaque[i];
            if node.opaque && b.unresolved_launches.is_empty() {
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "opaque-footprint",
                    message: format!(
                        "resource footprint of {} not statically resolvable; it conflicts with every node",
                        node.label
                    ),
                    location: node.op.map(|o| ctx.location(o)),
                });
            }
        }

        let mut edges = Vec::new();
        for a in 0..n {
            for c in a + 1..n {
                let conflict = b.opaque[a]
                    || b.opaque[c]
                    || b.footprints[a]
                        .intersection(&b.footprints[c])
                        .next()
                        .is_some();
                if conflict {
                    edges.push((a, c));
                }
            }
        }

        // Union-find over the edges → independent groups.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &(a, c) in &edges {
            let (ra, rc) = (find(&mut parent, a), find(&mut parent, c));
            if ra != rc {
                parent[ra.max(rc)] = ra.min(rc);
            }
        }
        let mut groups_map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups_map.entry(r).or_default().push(i);
        }
        let groups: Vec<Vec<usize>> = groups_map.into_values().collect();

        out.diagnostics.push(Diagnostic {
            pass: self.name(),
            severity: Severity::Info,
            code: "conflict-summary",
            message: format!(
                "{} nodes, {} conflict edges, {} independent groups",
                n,
                edges.len(),
                groups.len()
            ),
            location: None,
        });

        out.conflict = ConflictGraph {
            nodes,
            edges,
            groups,
        };
    }
}
