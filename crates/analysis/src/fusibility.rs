//! Fusibility reporter: for every `affine.for`, either "fuses" with the
//! trace length, or a precise decline reason.
//!
//! Two layers feed the verdict. The engine's trace builder already decided
//! structurally (via [`equeue_core::FuseVerdict`]): multi-level nests,
//! cross-iteration flow, unsupported body ops. On top of that, the fused
//! backend's *runtime* preflight declines on machine state — non-integer
//! tensors and cache-backed (non-uniform-latency) memories. Those two
//! conditions are statically decidable here by resolving each body
//! buffer's element type and allocation memory, so this pass folds them
//! into the static verdict: a loop reported `Fuses` really will execute
//! through the fused backend (the differential tests hold the pass to
//! that).

use equeue_core::FuseVerdict;
use equeue_ir::OpId;

use crate::{AnalysisCtx, AnalysisPass, AnalysisReport, BufferOrigin, Diagnostic, Severity};

/// Final static verdict for one loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseStatus {
    /// Compiles to a fused trace of `insts` instructions and passes the
    /// statically-decidable runtime preflight.
    Fuses {
        /// Trace length in instructions.
        insts: usize,
    },
    /// Never enters (`lower >= upper`).
    ZeroTrip,
    /// Does not fuse, with the reason.
    Declines {
        /// Human-readable decline reason.
        reason: String,
    },
}

/// One loop's report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopReport {
    /// The `affine.for` op.
    pub op: OpId,
    /// Op path of the loop.
    pub location: String,
    /// Static trip count (`None` = non-positive step, a runtime error).
    pub trip_count: Option<u64>,
    /// The verdict.
    pub status: FuseStatus,
}

/// All loops, in prepass (op) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FusibilityReport {
    /// Per-loop verdicts.
    pub loops: Vec<LoopReport>,
}

impl FusibilityReport {
    /// Number of loops that fuse.
    pub fn fusible_count(&self) -> usize {
        self.loops
            .iter()
            .filter(|l| matches!(l.status, FuseStatus::Fuses { .. }))
            .count()
    }
}

/// The fusibility pass.
pub struct FusibilityPass;

/// Statically re-checks the fused backend's runtime preflight for a loop
/// body: all accessed buffers must be integer tensors in
/// uniform-scalar-latency memories. Returns a decline reason, or `None`
/// if the loop survives.
fn static_preflight(ctx: &AnalysisCtx<'_>, body: equeue_ir::BlockId) -> Option<String> {
    if body.index() >= ctx.module.num_blocks() {
        return Some("structurally malformed body".to_string());
    }
    for &op in &ctx.module.block(body).ops {
        let Some(data) = ctx.op_checked(op) else {
            continue;
        };
        let buf = match data.name.as_str() {
            "affine.load" => data.operands.first().copied(),
            "affine.store" => data.operands.get(1).copied(),
            _ => None,
        };
        let Some(buf) = buf else { continue };
        if buf.index() >= ctx.module.num_values() {
            return Some("declines at runtime: buffer not resolvable".to_string());
        }
        let ty = ctx.module.value_type(buf);
        if let Some(elem) = ty.elem() {
            if !elem.is_integer() {
                return Some(format!("declines at runtime: non-integer tensor ({elem})"));
            }
        }
        match ctx.buffer_origin(buf) {
            BufferOrigin::Mem(m) => {
                if let Some(fact) = ctx.mem_fact(m) {
                    if fact.uniform_scalar_cycles.is_none() {
                        return Some(format!(
                            "declines at runtime: {} memory has state-dependent latency",
                            fact.model
                        ));
                    }
                } else {
                    return Some("declines at runtime: memory model not resolvable".to_string());
                }
            }
            BufferOrigin::Host(_) => {}
            BufferOrigin::Unknown => {
                return Some("declines at runtime: buffer origin not resolvable".to_string());
            }
        }
    }
    None
}

impl AnalysisPass for FusibilityPass {
    fn name(&self) -> &'static str {
        "fusibility"
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, out: &mut AnalysisReport) {
        let mut report = FusibilityReport::default();
        for lf in &ctx.facts.loops {
            let status = match &lf.verdict {
                FuseVerdict::ZeroTrip => FuseStatus::ZeroTrip,
                FuseVerdict::Declined(d) => FuseStatus::Declines {
                    reason: d.to_string(),
                },
                FuseVerdict::Fused { insts } => match static_preflight(ctx, lf.body) {
                    Some(reason) => FuseStatus::Declines { reason },
                    None => FuseStatus::Fuses { insts: *insts },
                },
            };
            report.loops.push(LoopReport {
                op: lf.op,
                location: ctx.location(lf.op),
                trip_count: lf.trip_count(),
                status,
            });
        }

        for l in &report.loops {
            let (code, message) = match &l.status {
                FuseStatus::Fuses { insts } => (
                    "fuses",
                    format!(
                        "fuses: {insts}-instruction trace, trip count {}",
                        l.trip_count
                            .map_or("unknown".to_string(), |t| t.to_string())
                    ),
                ),
                FuseStatus::ZeroTrip => ("zero-trip", "loop never enters".to_string()),
                FuseStatus::Declines { reason } => ("no-fuse", reason.clone()),
            };
            out.diagnostics.push(Diagnostic {
                pass: self.name(),
                severity: Severity::Info,
                code,
                message,
                location: Some(l.location.clone()),
            });
        }
        out.diagnostics.push(Diagnostic {
            pass: self.name(),
            severity: Severity::Info,
            code: "fusibility-summary",
            message: format!(
                "{} of {} affine.for bodies fuse",
                report.fusible_count(),
                report.loops.len()
            ),
            location: None,
        });
        out.fusibility = report;
    }
}
