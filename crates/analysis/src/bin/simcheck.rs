//! `simcheck` — run the static-analysis pipeline over EQueue modules.
//!
//! ```text
//! simcheck [--json] [--quiet] --all-scenarios
//! simcheck [--json] [--quiet] --scenario NAME
//! simcheck [--json] [--quiet] FILE.mlir [FILE.mlir ...]
//! ```
//!
//! Exit status: 0 = no Error-severity diagnostics, 1 = at least one, 2 =
//! usage or input error. Analysis is lenient — malformed IR yields typed
//! diagnostics, not a crash — but a file that fails to *parse* is a usage
//! error.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;

use equeue_analysis::{analyze_module, AnalysisReport, Severity};
use equeue_core::{RunLimits, SimLibrary};
use equeue_gen::scenarios::golden_scenarios;

struct Options {
    json: bool,
    quiet: bool,
    all_scenarios: bool,
    scenario: Option<String>,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: simcheck [--json] [--quiet] (--all-scenarios | --scenario NAME | FILE...)\n\
         \n\
         Runs the five-pass static analysis (conflict graph, deadlock,\n\
         fusibility, dead values, resource bounds) and prints diagnostics.\n\
         Exit 0: clean; 1: errors found; 2: bad usage/input."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        json: false,
        quiet: false,
        all_scenarios: false,
        scenario: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--all-scenarios" => opts.all_scenarios = true,
            "--scenario" => match args.next() {
                Some(n) => opts.scenario = Some(n),
                None => return Err(usage()),
            },
            "--help" | "-h" => return Err(usage()),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            _ => return Err(usage()),
        }
    }
    if !opts.all_scenarios && opts.scenario.is_none() && opts.files.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

fn emit(name: &str, report: &AnalysisReport, opts: &Options) {
    if opts.json {
        println!("{{\"name\":\"{name}\",\"report\":{}}}", report.to_json());
        return;
    }
    println!("=== {name} ===");
    if opts.quiet {
        let shown = report
            .diagnostics
            .iter()
            .filter(|d| d.severity > Severity::Info);
        for d in shown {
            println!("{d}");
        }
        println!(
            "{}: {} errors, {} warnings, deadlock_free={}",
            name,
            report.error_count(),
            report.warning_count(),
            report.deadlock_free
        );
    } else {
        print!("{}", report.to_text());
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let library = SimLibrary::standard();
    let limits = RunLimits::default();

    let mut targets: Vec<(String, equeue_ir::Module)> = Vec::new();
    if opts.all_scenarios || opts.scenario.is_some() {
        let want = opts.scenario.as_deref();
        for s in golden_scenarios() {
            if want.is_none_or(|w| w == s.name) {
                targets.push((s.name.to_string(), s.module));
            }
        }
        if targets.is_empty() {
            eprintln!(
                "simcheck: unknown scenario: {}",
                opts.scenario.unwrap_or_default()
            );
            eprintln!("known scenarios:");
            for s in golden_scenarios() {
                eprintln!("  {}", s.name);
            }
            return ExitCode::from(2);
        }
    }
    for f in &opts.files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simcheck: {f}: {e}");
                return ExitCode::from(2);
            }
        };
        match equeue_ir::parse_module(&text) {
            Ok(m) => targets.push((f.clone(), m)),
            Err(e) => {
                eprintln!("simcheck: {f}: parse error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut errors = 0usize;
    for (name, module) in &targets {
        let report = analyze_module(module, &library, &limits);
        errors += report.error_count();
        emit(name, &report, &opts);
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
