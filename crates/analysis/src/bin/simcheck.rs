//! `simcheck` — run the static-analysis pipeline over EQueue modules.
//!
//! ```text
//! simcheck [--json] [--quiet] [--partition] --all-scenarios
//! simcheck [--json] [--quiet] [--partition] --scenario NAME
//! simcheck [--json] [--quiet] [--partition] FILE.mlir [FILE.mlir ...]
//! ```
//!
//! `--partition` additionally compiles each module and reports its
//! conflict partition — the independent processor/DMA groups the parallel
//! engine (`SimOptions::threads`) shards over: a one-line group-count
//! summary in text mode, a deterministic group dump in `--json` mode.
//!
//! Exit status: 0 = no Error-severity diagnostics, 1 = at least one, 2 =
//! usage or input error. Analysis is lenient — malformed IR yields typed
//! diagnostics, not a crash — but a file that fails to *parse* is a usage
//! error.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::process::ExitCode;

use equeue_analysis::{analyze_module, AnalysisReport, Severity};
use equeue_core::{CompiledModule, Partition, RunLimits, SimLibrary};
use equeue_gen::scenarios::golden_scenarios;

struct Options {
    json: bool,
    quiet: bool,
    partition: bool,
    all_scenarios: bool,
    scenario: Option<String>,
    files: Vec<String>,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: simcheck [--json] [--quiet] [--partition] (--all-scenarios | --scenario NAME | FILE...)\n\
         \n\
         Runs the five-pass static analysis (conflict graph, deadlock,\n\
         fusibility, dead values, resource bounds) and prints diagnostics.\n\
         --partition also compiles each module and reports the conflict\n\
         partition the parallel engine shards over.\n\
         Exit 0: clean; 1: errors found; 2: bad usage/input."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Options, ExitCode> {
    let mut opts = Options {
        json: false,
        quiet: false,
        partition: false,
        all_scenarios: false,
        scenario: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--quiet" | "-q" => opts.quiet = true,
            "--partition" => opts.partition = true,
            "--all-scenarios" => opts.all_scenarios = true,
            "--scenario" => match args.next() {
                Some(n) => opts.scenario = Some(n),
                None => return Err(usage()),
            },
            "--help" | "-h" => return Err(usage()),
            f if !f.starts_with('-') => opts.files.push(f.to_string()),
            _ => return Err(usage()),
        }
    }
    if !opts.all_scenarios && opts.scenario.is_none() && opts.files.is_empty() {
        return Err(usage());
    }
    Ok(opts)
}

/// Serialises a partition as deterministic JSON: groups are sorted by
/// construction and the pure-launch listing is sorted by op index, so the
/// same module always produces the same bytes.
fn partition_json(p: &Partition) -> String {
    let groups: Vec<String> = p
        .groups()
        .iter()
        .map(|g| {
            let members: Vec<String> = g.iter().map(|n| n.to_string()).collect();
            format!("[{}]", members.join(","))
        })
        .collect();
    let launches: Vec<String> = p
        .pure_launches()
        .iter()
        .map(|(op, g)| format!("{{\"op\":{op},\"group\":{g}}}"))
        .collect();
    format!(
        "{{\"nodes\":{},\"groups\":[{}],\"host_group\":{},\"degraded\":{},\"pure_launches\":[{}]}}",
        p.num_nodes(),
        groups.join(","),
        p.host_group(),
        p.degraded(),
        launches.join(",")
    )
}

fn partition_summary(p: &Partition) -> String {
    format!(
        "partition: {} groups over {} nodes, {} pure launches, host group {}{}",
        p.groups().len(),
        p.num_nodes(),
        p.pure_launch_count(),
        p.host_group(),
        if p.degraded() { " (degraded)" } else { "" }
    )
}

fn emit(name: &str, report: &AnalysisReport, partition: Option<&Partition>, opts: &Options) {
    if opts.json {
        match partition {
            Some(p) => println!(
                "{{\"name\":\"{name}\",\"partition\":{},\"report\":{}}}",
                partition_json(p),
                report.to_json()
            ),
            None => println!("{{\"name\":\"{name}\",\"report\":{}}}", report.to_json()),
        }
        return;
    }
    println!("=== {name} ===");
    if opts.quiet {
        let shown = report
            .diagnostics
            .iter()
            .filter(|d| d.severity > Severity::Info);
        for d in shown {
            println!("{d}");
        }
        println!(
            "{}: {} errors, {} warnings, deadlock_free={}",
            name,
            report.error_count(),
            report.warning_count(),
            report.deadlock_free
        );
    } else {
        print!("{}", report.to_text());
    }
    if let Some(p) = partition {
        println!("{}", partition_summary(p));
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(code) => return code,
    };
    let library = SimLibrary::standard();
    let limits = RunLimits::default();

    let mut targets: Vec<(String, equeue_ir::Module)> = Vec::new();
    if opts.all_scenarios || opts.scenario.is_some() {
        let want = opts.scenario.as_deref();
        for s in golden_scenarios() {
            if want.is_none_or(|w| w == s.name) {
                targets.push((s.name.to_string(), s.module));
            }
        }
        if targets.is_empty() {
            eprintln!(
                "simcheck: unknown scenario: {}",
                opts.scenario.unwrap_or_default()
            );
            eprintln!("known scenarios:");
            for s in golden_scenarios() {
                eprintln!("  {}", s.name);
            }
            return ExitCode::from(2);
        }
    }
    for f in &opts.files {
        let text = match std::fs::read_to_string(f) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simcheck: {f}: {e}");
                return ExitCode::from(2);
            }
        };
        match equeue_ir::parse_module(&text) {
            Ok(m) => targets.push((f.clone(), m)),
            Err(e) => {
                eprintln!("simcheck: {f}: parse error: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut errors = 0usize;
    for (name, module) in &targets {
        let report = analyze_module(module, &library, &limits);
        errors += report.error_count();
        let compiled = if opts.partition {
            // Partition reporting needs the compile-time plan; a module
            // that fails layout is an input error like a parse failure.
            match CompiledModule::compile(module.clone(), SimLibrary::standard()) {
                Ok(c) => Some(c),
                Err(e) => {
                    eprintln!("simcheck: {name}: compile error: {e}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        };
        emit(
            name,
            &report,
            compiled.as_ref().map(|c| c.partition()),
            &opts,
        );
    }
    if errors > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
