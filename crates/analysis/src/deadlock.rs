//! Static deadlock detection: a sound completion proof over the
//! launch/connection graph.
//!
//! The runtime declares [`equeue_core::SimError::Deadlock`] when its event
//! heap drains while any non-host processor still holds an unfinished frame
//! or a queued event. This pass proves the *absence* of that state: it
//! shows every event (each `equeue.launch` / `equeue.memcpy` site)
//! provably starts and finishes under the engine's scheduling rules:
//!
//! * an event starts only after its `dep` signal resolves **and** every
//!   event enqueued before it on the same processor queue finishes
//!   (strict FIFO with head-of-line blocking — a pending head blocks
//!   everything behind it);
//! * events spawned from the same frame enqueue in program order, so
//!   same-frame FIFO predecessors are known statically; events from
//!   *different* frames interleave in timing-dependent order;
//! * a frame finishes only when every `equeue.await` it executes has all
//!   of its signals resolved.
//!
//! The proof is linear-time in the module size: events and signal
//! expressions become nodes of one AND/OR graph (`start(e)` = dep ∧
//! earlier same-frame awaits ∧ immediate FIFO predecessor finished ∧
//! parent started; `finish(e)` = started ∧ body awaits; `control_and` =
//! all inputs; `control_or` = any input) and a counter-based worklist
//! propagates "provably satisfied" outward from `equeue.control_start`
//! ground nodes. Only the *immediate* same-frame FIFO predecessor is
//! linked — by induction its own start already requires every earlier
//! queue entry to finish. The module need not be well-formed: signals
//! that do not resolve to a recognised producer become a
//! never-satisfiable Unknown leaf, and cyclic (fuzzer-mutated) signal
//! graphs simply never satisfy their counters.
//!
//! What survives unproved is classified: a dependency cycle among
//! unsatisfied nodes is a definite deadlock (**Error**, with the cycle
//! path); everything else is merely unprovable (**Warning**). Two events
//! on the same processor queue from *different* frames with a completion
//! dependency between them are flagged (**Warning**) — whether they
//! deadlock depends on arrival order, which is not static.
//! `deadlock_free` is set only when every event is proved and no warnings
//! were emitted — a guarantee, held to by the differential test suite,
//! that the runtime cannot return `Deadlock`.

use std::collections::{HashMap, HashSet, VecDeque};

use equeue_dialect::launch_view;
use equeue_ir::{BlockId, OpId, ValueId};

use crate::{AnalysisCtx, AnalysisPass, AnalysisReport, Diagnostic, Severity};

/// The static deadlock-detection pass.
pub struct DeadlockPass;

/// Cap on per-event diagnostics, so fuzzer-malformed modules with
/// thousands of unprovable events stay readable.
const MAX_EVENT_DIAGS: usize = 10;

/// Node-visit budget for the cross-frame queue-order reachability check
/// (shared across all candidate events).
const HAZARD_BUDGET: usize = 2_000_000;

/// One event site (`equeue.launch` or `equeue.memcpy`).
struct Event {
    op: OpId,
    /// Frame the site executes in: 0 = the top-level (host) frame.
    frame: usize,
    /// Resolved target (`create_proc`/`create_dma` op index).
    proc: Option<usize>,
    /// The dep signal operand, if decodable.
    dep: Option<ValueId>,
    /// How many of the frame's awaits precede this site (a prefix of
    /// `frame_awaits[frame]` gates reaching this op).
    awaits_before: usize,
    /// Nearest earlier event in the same frame on the same processor.
    fifo_pred: Option<usize>,
    /// Parent event (the launch whose body frame contains this site).
    parent: Option<usize>,
    /// For launches: the body frame index.
    body_frame: Option<usize>,
}

struct Collector<'c, 'm> {
    ctx: &'c AnalysisCtx<'m>,
    events: Vec<Event>,
    /// Await signals per frame, in program order. Index 0 = top frame.
    frame_awaits: Vec<Vec<ValueId>>,
    /// Launch/memcpy op index → event index.
    event_of_op: HashMap<usize, usize>,
    /// Last event per (frame, proc), for immediate FIFO predecessor links.
    last_on_queue: HashMap<(usize, usize), usize>,
    unresolved: Vec<String>,
}

impl Collector<'_, '_> {
    fn resolve_target(&self, v: ValueId) -> Option<usize> {
        let d = self.ctx.resolve_def(v)?;
        self.ctx
            .op_checked(d)
            .filter(|o| o.name == "equeue.create_proc" || o.name == "equeue.create_dma")
            .map(|_| d.index())
    }

    fn record_event(
        &mut self,
        op: OpId,
        frame: usize,
        parent: Option<usize>,
        proc: Option<usize>,
        dep: Option<ValueId>,
    ) -> usize {
        let idx = self.events.len();
        let fifo_pred = proc.and_then(|p| self.last_on_queue.insert((frame, p), idx));
        self.events.push(Event {
            op,
            frame,
            proc,
            dep,
            awaits_before: self.frame_awaits[frame].len(),
            fifo_pred,
            parent,
            body_frame: None,
        });
        self.event_of_op.insert(op.index(), idx);
        idx
    }

    fn visit_block(&mut self, block: BlockId, frame: usize, parent: Option<usize>, depth: usize) {
        if depth > crate::MAX_DEPTH || block.index() >= self.ctx.module.num_blocks() {
            return;
        }
        let ops = self.ctx.module.block(block).ops.clone();
        for op in ops {
            let Some(data) = self.ctx.op_checked(op) else {
                continue;
            };
            match data.name.as_str() {
                "equeue.launch" => {
                    let view = launch_view(self.ctx.module, op).ok();
                    let proc = view.as_ref().and_then(|lv| self.resolve_target(lv.proc));
                    if proc.is_none() {
                        self.unresolved.push(self.ctx.location(op));
                    }
                    let dep = view.as_ref().map(|lv| lv.dep);
                    let idx = self.record_event(op, frame, parent, proc, dep);
                    self.frame_awaits.push(Vec::new());
                    let body = self.frame_awaits.len() - 1;
                    self.events[idx].body_frame = Some(body);
                    if let Some(lv) = view {
                        self.visit_block(lv.body, body, Some(idx), depth + 1);
                    }
                }
                "equeue.memcpy" => {
                    let view = equeue_dialect::memcpy_view(self.ctx.module, op).ok();
                    let proc = view.as_ref().and_then(|mv| self.resolve_target(mv.dma));
                    if proc.is_none() {
                        self.unresolved.push(self.ctx.location(op));
                    }
                    let dep = view.as_ref().map(|mv| mv.dep);
                    self.record_event(op, frame, parent, proc, dep);
                }
                "equeue.await" => {
                    for &sig in &data.operands {
                        self.frame_awaits[frame].push(sig);
                    }
                }
                _ => {
                    // Loop bodies and other nested regions execute within
                    // the same frame on the same processor.
                    let regions = data.regions.clone();
                    for region in regions {
                        if region.index() >= self.ctx.module.num_regions() {
                            continue;
                        }
                        let blocks = self.ctx.module.region(region).blocks.clone();
                        for b in blocks {
                            self.visit_block(b, frame, parent, depth + 1);
                        }
                    }
                }
            }
        }
    }
}

/// The AND/OR provability graph. One arena holds all node kinds:
/// `start(e)` = `2e`, `finish(e)` = `2e + 1`, then shared leaves and
/// signal-expression nodes.
struct Graph {
    /// Prerequisite nodes per node (AND semantics unless `is_or`).
    deps: Vec<Vec<u32>>,
    /// Reverse edges, filled after construction.
    consumers: Vec<Vec<u32>>,
    is_or: Vec<bool>,
    /// Never-satisfiable leaf (unresolvable signal).
    unknown: Vec<bool>,
    satisfied: Vec<bool>,
}

impl Graph {
    fn new_node(&mut self, is_or: bool) -> u32 {
        let id = self.deps.len() as u32;
        self.deps.push(Vec::new());
        self.consumers.push(Vec::new());
        self.is_or.push(is_or);
        self.unknown.push(false);
        self.satisfied.push(false);
        id
    }
}

struct GraphBuilder<'c, 'm> {
    ctx: &'c AnalysisCtx<'m>,
    g: Graph,
    /// Shared never-satisfiable leaf.
    unknown_node: u32,
    /// Ground (always satisfied) leaf, for `equeue.control_start`.
    ground_node: u32,
    /// Memoized signal nodes, by defining-op index. Shared sub-expressions
    /// (e.g. long `control_and` chains) are built exactly once.
    sig_memo: HashMap<usize, u32>,
    event_of_op: HashMap<usize, usize>,
    saw_unknown: bool,
}

impl GraphBuilder<'_, '_> {
    /// The node expressing "signal `v` provably resolves".
    fn sig_node(&mut self, v: ValueId) -> u32 {
        self.sig_node_depth(v, 0)
    }

    fn sig_node_depth(&mut self, v: ValueId, depth: usize) -> u32 {
        if depth > crate::MAX_DEPTH {
            self.saw_unknown = true;
            return self.unknown_node;
        }
        let Some(def) = self.ctx.resolve_def(v) else {
            self.saw_unknown = true;
            return self.unknown_node;
        };
        if let Some(&n) = self.sig_memo.get(&def.index()) {
            return n;
        }
        let Some(data) = self.ctx.op_checked(def) else {
            self.saw_unknown = true;
            return self.unknown_node;
        };
        let name = data.name.clone();
        let node = match name.as_str() {
            "equeue.control_start" => self.ground_node,
            "equeue.control_and" | "equeue.control_or" => {
                let n = self.g.new_node(name.ends_with("_or"));
                // Memoize *before* wiring children: a cyclic (malformed)
                // signal graph then feeds the node to itself and never
                // satisfies, instead of recursing forever.
                self.sig_memo.insert(def.index(), n);
                let operands = data.operands.clone();
                for o in operands {
                    let c = self.sig_node_depth(o, depth + 1);
                    self.g.deps[n as usize].push(c);
                }
                n
            }
            "equeue.launch" | "equeue.memcpy" => match self.event_of_op.get(&def.index()) {
                Some(&e) => (2 * e + 1) as u32,
                None => {
                    self.saw_unknown = true;
                    self.unknown_node
                }
            },
            _ => {
                self.saw_unknown = true;
                self.unknown_node
            }
        };
        self.sig_memo.insert(def.index(), node);
        node
    }
}

impl AnalysisPass for DeadlockPass {
    fn name(&self) -> &'static str {
        "deadlock"
    }

    fn run(&self, ctx: &AnalysisCtx<'_>, out: &mut AnalysisReport) {
        let mut collector = Collector {
            ctx,
            events: Vec::new(),
            frame_awaits: vec![Vec::new()],
            event_of_op: HashMap::new(),
            last_on_queue: HashMap::new(),
            unresolved: Vec::new(),
        };
        collector.visit_block(ctx.module.top_block(), 0, None, 0);
        let Collector {
            events,
            frame_awaits,
            event_of_op,
            unresolved,
            ..
        } = collector;
        let n = events.len();

        let mut clean = unresolved.is_empty();
        for loc in unresolved.iter().take(MAX_EVENT_DIAGS) {
            out.diagnostics.push(Diagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                code: "unresolved-target",
                message: "event target not statically resolvable; completion not provable"
                    .to_string(),
                location: Some(loc.clone()),
            });
        }
        if unresolved.len() > MAX_EVENT_DIAGS {
            out.diagnostics.push(Diagnostic {
                pass: self.name(),
                severity: Severity::Warning,
                code: "unresolved-target",
                message: format!(
                    "... and {} more events with unresolvable targets",
                    unresolved.len() - MAX_EVENT_DIAGS
                ),
                location: None,
            });
        }

        // Build the provability graph.
        let mut g = Graph {
            deps: Vec::new(),
            consumers: Vec::new(),
            is_or: Vec::new(),
            unknown: Vec::new(),
            satisfied: Vec::new(),
        };
        for _ in 0..n {
            g.new_node(false); // start(e)
            g.new_node(false); // finish(e)
        }
        let unknown_node = g.new_node(false);
        let ground_node = g.new_node(false);
        g.unknown[unknown_node as usize] = true;
        g.satisfied[ground_node as usize] = true;
        let mut b = GraphBuilder {
            ctx,
            g,
            unknown_node,
            ground_node,
            sig_memo: HashMap::new(),
            event_of_op,
            saw_unknown: false,
        };

        for (e, ev) in events.iter().enumerate() {
            let start = 2 * e;
            let finish = 2 * e + 1;
            match ev.dep {
                Some(dep) => {
                    let s = b.sig_node(dep);
                    b.g.deps[start].push(s);
                }
                None => {
                    b.saw_unknown = true;
                    b.g.deps[start].push(unknown_node);
                }
            }
            if let Some(awaits) = frame_awaits.get(ev.frame) {
                let sigs: Vec<ValueId> = awaits.iter().take(ev.awaits_before).copied().collect();
                for sig in sigs {
                    let s = b.sig_node(sig);
                    b.g.deps[start].push(s);
                }
            }
            if let Some(p) = ev.fifo_pred {
                b.g.deps[start].push((2 * p + 1) as u32);
            }
            if let Some(p) = ev.parent {
                b.g.deps[start].push((2 * p) as u32);
            }
            b.g.deps[finish].push(start as u32);
            if let Some(bf) = ev.body_frame {
                let sigs: Vec<ValueId> = frame_awaits.get(bf).cloned().unwrap_or_default();
                for sig in sigs {
                    let s = b.sig_node(sig);
                    b.g.deps[finish].push(s);
                }
            }
        }
        let mut g = b.g;

        // Counter-based worklist propagation from the ground leaf.
        let total = g.deps.len();
        for x in 0..total {
            for i in 0..g.deps[x].len() {
                let d = g.deps[x][i] as usize;
                g.consumers[d].push(x as u32);
            }
        }
        let mut need: Vec<u32> = (0..total)
            .map(|x| {
                g.deps[x]
                    .iter()
                    .filter(|&&d| !g.satisfied[d as usize])
                    .count() as u32
            })
            .collect();
        let mut queue: VecDeque<u32> = VecDeque::new();
        for (x, &n_unmet) in need.iter().enumerate() {
            if g.satisfied[x] || g.unknown[x] {
                continue;
            }
            let ready = if g.is_or[x] {
                g.deps[x].iter().any(|&d| g.satisfied[d as usize])
            } else {
                n_unmet == 0
            };
            if ready {
                g.satisfied[x] = true;
                queue.push_back(x as u32);
            }
        }
        while let Some(x) = queue.pop_front() {
            for i in 0..g.consumers[x as usize].len() {
                let c = g.consumers[x as usize][i];
                let ci = c as usize;
                if g.satisfied[ci] || g.unknown[ci] {
                    continue;
                }
                let ready = if g.is_or[ci] {
                    true
                } else {
                    need[ci] = need[ci].saturating_sub(1);
                    need[ci] == 0
                };
                if ready {
                    g.satisfied[ci] = true;
                    queue.push_back(c);
                }
            }
        }

        let unproved: Vec<usize> = (0..n).filter(|&e| !g.satisfied[2 * e + 1]).collect();

        if !unproved.is_empty() {
            clean = false;
            match find_cycle(&g) {
                Some(cycle) => {
                    let path: Vec<String> = cycle
                        .iter()
                        .filter_map(|&node| {
                            let node = node as usize;
                            (node < 2 * n).then(|| ctx.location(events[node / 2].op))
                        })
                        .collect();
                    out.diagnostics.push(Diagnostic {
                        pass: self.name(),
                        severity: Severity::Error,
                        code: "static-deadlock",
                        message: format!("wait cycle: {}", dedup_adjacent(path).join(" -> ")),
                        location: None,
                    });
                }
                None => {
                    for &e in unproved.iter().take(MAX_EVENT_DIAGS) {
                        out.diagnostics.push(Diagnostic {
                            pass: self.name(),
                            severity: Severity::Warning,
                            code: "unproved-completion",
                            message: "cannot prove this event completes".to_string(),
                            location: Some(ctx.location(events[e].op)),
                        });
                    }
                    if unproved.len() > MAX_EVENT_DIAGS {
                        out.diagnostics.push(Diagnostic {
                            pass: self.name(),
                            severity: Severity::Warning,
                            code: "unproved-completion",
                            message: format!(
                                "... and {} more events not proved to complete",
                                unproved.len() - MAX_EVENT_DIAGS
                            ),
                            location: None,
                        });
                    }
                }
            }
        }

        // Cross-frame queue-order hazards: only processors receiving
        // events from more than one frame can race on arrival order, and
        // for golden scenarios that set is empty — the reachability scan
        // below never runs on the hot path.
        let mut by_proc: HashMap<usize, Vec<usize>> = HashMap::new();
        for (e, ev) in events.iter().enumerate() {
            if let Some(p) = ev.proc {
                by_proc.entry(p).or_default().push(e);
            }
        }
        let mut hazard_events: Vec<usize> = Vec::new();
        for evs in by_proc.values() {
            let first_frame = events[evs[0]].frame;
            if evs.iter().any(|&e| events[e].frame != first_frame) {
                hazard_events.extend(evs.iter().copied());
            }
        }
        hazard_events.sort_unstable();
        if !hazard_events.is_empty() {
            let budget_per = HAZARD_BUDGET / hazard_events.len();
            let mut reported = 0usize;
            let mut capped = false;
            for &a in &hazard_events {
                match reaches_peer(&g, &events, a, &hazard_events, budget_per) {
                    Reach::Peer(peer) => {
                        clean = false;
                        if reported < MAX_EVENT_DIAGS {
                            out.diagnostics.push(Diagnostic {
                                pass: self.name(),
                                severity: Severity::Warning,
                                code: "queue-order-hazard",
                                message: format!(
                                    "waits on {}, which shares its processor queue from a different frame; completion depends on arrival order",
                                    ctx.location(events[peer].op)
                                ),
                                location: Some(ctx.location(events[a].op)),
                            });
                        }
                        reported += 1;
                    }
                    Reach::Capped => capped = true,
                    Reach::No => {}
                }
            }
            if reported > MAX_EVENT_DIAGS {
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "queue-order-hazard",
                    message: format!(
                        "... and {} more queue-order hazards",
                        reported - MAX_EVENT_DIAGS
                    ),
                    location: None,
                });
            }
            if capped {
                clean = false;
                out.diagnostics.push(Diagnostic {
                    pass: self.name(),
                    severity: Severity::Warning,
                    code: "queue-order-hazard",
                    message: "cross-frame queue-order analysis exceeded its work budget; not proved deadlock-free"
                        .to_string(),
                    location: None,
                });
            }
        }

        out.deadlock_free = clean;
        out.diagnostics.push(Diagnostic {
            pass: self.name(),
            severity: Severity::Info,
            code: "deadlock-summary",
            message: if clean {
                format!("proved all {n} events complete: deadlock-free")
            } else {
                format!("{} of {n} events not proved to complete", unproved.len())
            },
            location: None,
        });
    }
}

/// Collapses immediately-repeated path entries (the start and finish nodes
/// of one event map to the same source location).
fn dedup_adjacent(path: Vec<String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for p in path {
        if out.last() != Some(&p) {
            out.push(p);
        }
    }
    out
}

enum Reach {
    Peer(usize),
    No,
    Capped,
}

/// Does `finish(a)` transitively depend on `finish(b)` for some *other*
/// hazard event `b` on the same processor but a different frame? Bounded
/// DFS over the dependency edges.
fn reaches_peer(g: &Graph, events: &[Event], a: usize, peers: &[usize], budget: usize) -> Reach {
    let frame_a = events[a].frame;
    let proc_a = events[a].proc;
    let root = (2 * a + 1) as u32;
    let mut seen: HashSet<u32> = HashSet::new();
    let mut stack = vec![root];
    let mut work = 0usize;
    while let Some(x) = stack.pop() {
        if !seen.insert(x) {
            continue;
        }
        work += 1;
        if work > budget {
            return Reach::Capped;
        }
        let xi = x as usize;
        if xi < 2 * events.len() && xi % 2 == 1 {
            let e = xi / 2;
            if e != a
                && events[e].proc == proc_a
                && events[e].frame != frame_a
                && peers.binary_search(&e).is_ok()
            {
                return Reach::Peer(e);
            }
        }
        for &d in &g.deps[xi] {
            stack.push(d);
        }
    }
    Reach::No
}

/// Finds a dependency cycle among unsatisfied nodes (iterative
/// three-colour DFS). `None` when the unproved residue is acyclic — i.e.
/// it rests on unknowns rather than on a genuine wait cycle.
fn find_cycle(g: &Graph) -> Option<Vec<u32>> {
    let total = g.deps.len();
    let mut color = vec![0u8; total]; // 0 = white, 1 = grey, 2 = black
    for root in 0..total {
        if g.satisfied[root] || color[root] != 0 {
            continue;
        }
        let mut stack: Vec<(u32, usize)> = vec![(root as u32, 0)];
        let mut path: Vec<u32> = Vec::new();
        while let Some(&mut (x, ref mut i)) = stack.last_mut() {
            let xi = x as usize;
            if *i == 0 {
                color[xi] = 1;
                path.push(x);
            }
            // Find the next unsatisfied dependency from position *i.
            let mut next = None;
            let mut j = *i;
            while j < g.deps[xi].len() {
                let d = g.deps[xi][j];
                j += 1;
                if !g.satisfied[d as usize] {
                    next = Some(d);
                    break;
                }
            }
            *i = j;
            match next {
                Some(y) => {
                    let yi = y as usize;
                    match color[yi] {
                        0 => stack.push((y, 0)),
                        1 => {
                            if let Some(pos) = path.iter().position(|&p| p == y) {
                                let mut cyc = path[pos..].to_vec();
                                cyc.push(y);
                                return Some(cyc);
                            }
                        }
                        _ => {}
                    }
                }
                None => {
                    color[xi] = 2;
                    path.pop();
                    stack.pop();
                }
            }
        }
    }
    None
}
