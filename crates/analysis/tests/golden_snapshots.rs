//! Golden snapshots of the analysis output for representative paper
//! scenarios, plus determinism checks.
//!
//! The committed files under `tests/golden/` pin down the full text
//! rendering — conflict graph, deadlock verdict, fusibility table,
//! resource bounds, and every diagnostic — so an accidental change to any
//! pass shows up as a readable diff. Regenerate intentionally with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p equeue-analysis --test golden_snapshots
//! ```
//!
//! The analysis is a pure function of the module, so its output must also
//! be byte-identical across repeated runs and across threads (the parallel
//! sweep driver analyzes scenarios concurrently).

use std::path::PathBuf;

use equeue_analysis::analyze_module;
use equeue_core::{RunLimits, SimLibrary};
use equeue_gen::scenarios::golden_scenarios;

/// Scenarios pinned as snapshots: one per paper figure family, the matmul
/// microbenchmarks (both fusible and non-fusible shapes), and the
/// scenario-diversity sweep (cache + DMA staging, tenant interleaving,
/// wide processor grid).
const SNAPSHOT_SCENARIOS: &[&str] = &[
    "fig09_4x4_ws_8x8",
    "fig11_systolic_ws_8",
    "fig12_ah8_hw16_f4_c4_n8_ws",
    "fir_pipelined16",
    "matmul_linalg16",
    "matmul_affine16",
    "conv2d_systolic_8x3",
    "multi_tenant_4x16x6",
    "mega_grid_8x8",
];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

fn report(name: &str) -> equeue_analysis::AnalysisReport {
    let scenario = golden_scenarios()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown snapshot scenario {name}"));
    analyze_module(
        &scenario.module,
        &SimLibrary::standard(),
        &RunLimits::default(),
    )
}

fn render(name: &str) -> String {
    report(name).to_text()
}

#[test]
fn snapshots_match_golden_files() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let dir = golden_dir();
    if update {
        std::fs::create_dir_all(&dir).expect("create golden dir");
    }
    let mut mismatches = Vec::new();
    for name in SNAPSHOT_SCENARIOS {
        let r = report(name);
        // Both renderings are pinned: `.txt` for readable diffs, `.json`
        // for the machine-facing form the sweep tooling consumes.
        for (ext, actual) in [("txt", r.to_text()), ("json", r.to_json())] {
            let path = dir.join(format!("{name}.{ext}"));
            if update {
                std::fs::write(&path, &actual).expect("write golden file");
                continue;
            }
            let expected = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
            if actual != expected {
                mismatches.push(format!(
                    "{name}: analysis output diverged from {}\n--- expected\n{expected}\n--- actual\n{actual}",
                    path.display()
                ));
            }
        }
    }
    assert!(
        mismatches.is_empty(),
        "golden snapshot mismatches (rerun with UPDATE_GOLDEN=1 if intended):\n{}",
        mismatches.join("\n")
    );
}

/// The report must be byte-identical across repeated in-process runs:
/// no iteration-order leakage from hash maps into output.
#[test]
fn reports_are_deterministic_across_runs() {
    for name in SNAPSHOT_SCENARIOS {
        let first = render(name);
        for _ in 0..3 {
            assert_eq!(render(name), first, "{name}: output varies across runs");
        }
    }
}

/// ... and across threads: the sweep driver runs analyses concurrently
/// with `--jobs`, which must not perturb the output.
#[test]
fn reports_are_deterministic_across_threads() {
    let baseline: Vec<String> = SNAPSHOT_SCENARIOS.iter().map(|n| render(n)).collect();
    let handles: Vec<_> = SNAPSHOT_SCENARIOS
        .iter()
        .map(|name| std::thread::spawn(move || render(name)))
        .collect();
    for (handle, (name, expected)) in handles
        .into_iter()
        .zip(SNAPSHOT_SCENARIOS.iter().zip(&baseline))
    {
        let actual = handle.join().expect("analysis thread panicked");
        assert_eq!(&actual, expected, "{name}: output varies across threads");
    }
}

/// JSON rendering is deterministic too, and structurally sane: balanced
/// braces and the fixed top-level key order the sweep tooling relies on.
#[test]
fn json_rendering_is_deterministic_and_wellformed() {
    for name in SNAPSHOT_SCENARIOS {
        let scenario = golden_scenarios()
            .into_iter()
            .find(|s| s.name == *name)
            .expect("scenario");
        let report = analyze_module(
            &scenario.module,
            &SimLibrary::standard(),
            &RunLimits::default(),
        );
        let a = report.to_json();
        let b = report.to_json();
        assert_eq!(a, b, "{name}: JSON varies across renderings");
        assert!(a.starts_with("{\"conflict\":"), "{name}: key order changed");
        assert!(a.contains("\"deadlock_free\":"), "{name}: missing key");
        assert!(a.contains("\"diagnostics\":"), "{name}: missing key");
        let depth = a.chars().fold(0i64, |d, c| match c {
            '{' | '[' => d + 1,
            '}' | ']' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0, "{name}: unbalanced JSON");
    }
}
