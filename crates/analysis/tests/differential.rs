//! Differential tests: every verdict the static analysis hands out is
//! checked against what the simulation engine actually does.
//!
//! * **Deadlock**: `deadlock_free = true` is a guarantee — the runtime
//!   must never return [`SimError::Deadlock`] for such a module. The
//!   converse direction is exercised with two deliberately-broken
//!   modules: a cross-frame queue-order inversion that deadlocks the
//!   engine (and that the analysis refuses to certify), and a cyclic
//!   dep graph the analysis pins as a hard `static-deadlock` error.
//! * **Fusibility**: the per-loop fuse verdicts must agree with the fused
//!   backend's `fused_trace_entries` counter — loops reported fusible
//!   produce trace entries, scenarios with none (the fig12 convolutions)
//!   produce exactly zero.
//! * **Resources**: the static bounds are sound over-approximations of
//!   the runtime `events_spawned` / `peak_live_tensor_bytes` counters.

use equeue_analysis::{analyze_module, FuseStatus};
use equeue_core::{Backend, CompiledModule, RunLimits, SimError, SimLibrary, SimOptions};
use equeue_dialect::{kinds, EqueueBuilder};
use equeue_gen::scenarios::{golden_scenarios, matmul_affine};
use equeue_ir::{Module, OpBuilder};

fn quiet_options() -> SimOptions {
    SimOptions {
        trace: false,
        ..Default::default()
    }
}

/// Statically proved deadlock-free ⇒ the engine never reports Deadlock.
#[test]
fn deadlock_free_scenarios_never_deadlock_at_runtime() {
    let library = SimLibrary::standard();
    let limits = RunLimits::default();
    for scenario in golden_scenarios() {
        let report = analyze_module(&scenario.module, &library, &limits);
        assert!(
            report.deadlock_free,
            "{}: expected a deadlock-freedom proof, got:\n{}",
            scenario.name,
            report.to_text()
        );
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", scenario.name));
        match compiled.simulate(&quiet_options()) {
            Ok(_) => {}
            Err(SimError::Deadlock(msg)) => panic!(
                "{}: statically deadlock-free but the engine deadlocked: {msg}",
                scenario.name
            ),
            // Any non-deadlock failure would contradict the gen-side
            // golden_scenarios_simulate test; surface it loudly here too.
            Err(e) => panic!("{}: simulation failed: {e}", scenario.name),
        }
    }
}

/// A cross-frame queue-order inversion: the host enqueues `x` on `p2`
/// waiting on `a`, while `a`'s body later enqueues `c` on the same `p2`
/// and awaits it. At runtime `x` arrives first, blocks the head of `p2`'s
/// FIFO queue, and the machine wedges. Statically the two events sit in
/// different frames on one processor with a completion dependency between
/// them — exactly what the queue-order-hazard check refuses to certify.
fn queue_inversion_module() -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let p1 = b.create_proc(kinds::ARM_R6);
    let p2 = b.create_proc(kinds::ARM_R6);
    let start = b.control_start();
    let a = b.launch(start, p1, &[], vec![]);
    let x = b.launch(a.done, p2, &[], vec![]);
    let mut xb = OpBuilder::at_end(b.module_mut(), x.body);
    xb.ret(vec![]);
    let mut ab = OpBuilder::at_end(&mut m, a.body);
    let inner_start = ab.control_start();
    let c = ab.launch(inner_start, p2, &[], vec![]);
    ab.await_all(vec![c.done]);
    ab.ret(vec![]);
    let mut cb = OpBuilder::at_end(&mut m, c.body);
    cb.ret(vec![]);
    let mut top = OpBuilder::at_end(&mut m, blk);
    top.await_all(vec![x.done]);
    m
}

#[test]
fn queue_order_inversion_is_flagged_and_deadlocks() {
    let library = SimLibrary::standard();
    let module = queue_inversion_module();
    let report = analyze_module(&module, &library, &RunLimits::default());
    assert!(
        !report.deadlock_free,
        "analysis wrongly certified a module that deadlocks:\n{}",
        report.to_text()
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "queue-order-hazard"),
        "expected a queue-order-hazard diagnostic:\n{}",
        report.to_text()
    );
    let compiled = CompiledModule::compile(module, library)
        .expect("the module is well-formed; it only wedges");
    match compiled.simulate(&quiet_options()) {
        Err(SimError::Deadlock(_)) => {}
        Ok(_) => panic!("engine completed a run the analysis predicted would wedge"),
        Err(e) => panic!("expected Deadlock, got: {e}"),
    }
}

/// A direct wait cycle (two launches on one processor, each gated on the
/// other's completion, spliced together after construction). The analysis
/// must report a hard `static-deadlock` error; the runtime must reject or
/// wedge — never complete.
#[test]
fn wait_cycle_is_a_static_deadlock_error() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let p = b.create_proc(kinds::ARM_R6);
    let start = b.control_start();
    let a = b.launch(start, p, &[], vec![]);
    let bb = b.launch(a.done, p, &[], vec![]);
    let mut ab = OpBuilder::at_end(b.module_mut(), a.body);
    ab.ret(vec![]);
    let mut bbb = OpBuilder::at_end(&mut m, bb.body);
    bbb.ret(vec![]);
    let mut top = OpBuilder::at_end(&mut m, blk);
    top.await_all(vec![bb.done]);
    // Splice the cycle: a's dep (operand 0) becomes b's done signal.
    m.set_operand(a.op, 0, bb.done);

    let library = SimLibrary::standard();
    let report = analyze_module(&m, &library, &RunLimits::default());
    assert!(!report.deadlock_free);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == "static-deadlock"),
        "expected a static-deadlock error:\n{}",
        report.to_text()
    );
    // The runtime must not silently complete this module: either the
    // verifier rejects the use-before-def, or the engine wedges.
    match CompiledModule::compile(m, library) {
        Err(_) => {}
        Ok(compiled) => match compiled.simulate(&quiet_options()) {
            Err(_) => {}
            Ok(_) => panic!("engine completed a module with a dependency cycle"),
        },
    }
}

/// The fusibility report agrees with the fused backend: trace entries
/// appear exactly when the analysis says a loop fuses, and the entry
/// count for the matmul microbenchmark matches the static trip structure.
#[test]
fn fusibility_report_matches_fused_backend() {
    let library = SimLibrary::standard();
    let limits = RunLimits::default();
    let fused = SimOptions {
        trace: false,
        backend: Backend::Fused,
        ..Default::default()
    };

    // matmul_affine(16): a 3-deep nest where only the innermost 1-D body
    // fuses. The fused loop executes once per (i, j) iteration: 16 × 16
    // trace entries.
    let module = matmul_affine(16);
    let report = analyze_module(&module, &library, &limits);
    let fusible: Vec<_> = report
        .fusibility
        .loops
        .iter()
        .filter(|l| matches!(l.status, FuseStatus::Fuses { .. }))
        .collect();
    assert_eq!(fusible.len(), 1, "exactly the innermost loop fuses");
    assert_eq!(fusible[0].trip_count, Some(16));
    let compiled = CompiledModule::compile(module, SimLibrary::standard()).expect("compile");
    let run = compiled.simulate(&fused).expect("simulate");
    assert_eq!(
        run.fused_trace_entries,
        16 * 16,
        "fused backend trace-entry count diverges from the static trip structure"
    );

    // Every golden scenario: entries appear iff something was fusible.
    for scenario in golden_scenarios() {
        let report = analyze_module(&scenario.module, &library, &limits);
        let fusible = report.fusibility.fusible_count();
        let compiled =
            CompiledModule::compile(scenario.module, SimLibrary::standard()).expect("compile");
        let run = compiled.simulate(&fused).expect("simulate");
        if fusible == 0 {
            assert_eq!(
                run.fused_trace_entries, 0,
                "{}: fused entries without a fusible loop",
                scenario.name
            );
        } else {
            assert!(
                run.fused_trace_entries > 0,
                "{}: analysis reports {fusible} fusible loops but the backend fused nothing",
                scenario.name
            );
        }
        if scenario.name.starts_with("fig12_") {
            // The paper's conv pipelines lower through linalg without
            // affine loops: nothing to fuse, and the backend must agree.
            assert_eq!(fusible, 0, "{}: expected zero fusible loops", scenario.name);
            assert_eq!(run.fused_trace_entries, 0, "{}", scenario.name);
        }
    }
}

/// Static resource bounds are sound: runtime counters never exceed them.
#[test]
fn resource_bounds_cover_runtime_counters() {
    let library = SimLibrary::standard();
    let limits = RunLimits::default();
    for scenario in golden_scenarios() {
        let report = analyze_module(&scenario.module, &library, &limits);
        let est = report.resources;
        let compiled =
            CompiledModule::compile(scenario.module, SimLibrary::standard()).expect("compile");
        let run = compiled.simulate(&quiet_options()).expect("simulate");
        if let Some(bound) = est.events_bound {
            assert!(
                run.events_spawned <= bound,
                "{}: events_spawned {} exceeds static bound {bound}",
                scenario.name,
                run.events_spawned
            );
        }
        if let Some(bound) = est.live_tensor_bytes_bound {
            assert!(
                run.peak_live_tensor_bytes <= bound,
                "{}: peak_live_tensor_bytes {} exceeds static bound {bound}",
                scenario.name,
                run.peak_live_tensor_bytes
            );
        }
        // The bounds must also be *useful* on the golden set: every
        // scenario here is fully static, so both bounds derive.
        assert!(
            est.events_bound.is_some() && est.live_tensor_bytes_bound.is_some(),
            "{}: expected derivable bounds",
            scenario.name
        );
    }
}

/// The engine's compile-time partition mirror (`CompiledModule::partition`)
/// must agree with `ConflictPass` group-for-group: same node enumeration,
/// same independent groups, on every golden scenario. The sharded runtime
/// trusts the mirror; this pins it to the analysis pass it claims to copy.
#[test]
fn partition_mirror_matches_conflict_pass() {
    let library = SimLibrary::standard();
    let limits = RunLimits::default();
    for scenario in golden_scenarios() {
        let report = analyze_module(&scenario.module, &library, &limits);
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", scenario.name));
        let partition = compiled.partition();
        assert_eq!(
            partition.num_nodes(),
            report.conflict.nodes.len(),
            "{}: node count mismatch",
            scenario.name
        );
        assert_eq!(
            partition.groups(),
            &report.conflict.groups[..],
            "{}: independent groups diverge from ConflictPass",
            scenario.name
        );
        assert_eq!(
            partition.degraded(),
            report.conflict.nodes.iter().all(|n| n.opaque) && partition.num_nodes() > 1,
            "{}: degradation flag diverges",
            scenario.name
        );
    }
}
