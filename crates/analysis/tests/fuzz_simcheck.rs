//! Malformed-IR fuzzing for the analysis pipeline: every textual program
//! that *parses* must analyze without panicking and without diverging —
//! all five passes run to completion and report through typed
//! [`equeue_analysis::Diagnostic`]s, never through unwinding.
//!
//! Mirrors the engine-side fuzzer (`crates/core/tests/fuzz_malformed_ir.rs`):
//! the same dependency-free xorshift64* PRNG drives the same mix of
//! byte-level and line-level mutations over the same corpus, so the two
//! suites explore the same hostile neighbourhood of the IR grammar.

use std::panic::{catch_unwind, AssertUnwindSafe};

use equeue_analysis::analyze_module;
use equeue_core::{RunLimits, SimLibrary};

/// Real programs the mutations start from — one per dialect surface the
/// analyzer walks (launch bodies, affine loops, arith, memcpy).
const CORPUS: &[&str] = &[
    r#"
%kernel = "equeue.create_proc"() {kind = "MAC"} : () -> !equeue.proc
%mem = "equeue.create_mem"() {banks = 1, data_bits = 32, kind = "SRAM", shape = [8]} : () -> !equeue.mem
%buf = "equeue.alloc"(%mem) : (!equeue.mem) -> !equeue.buffer<4xi32>
%start = "equeue.control_start"() : () -> !equeue.signal
%done = "equeue.launch"(%start, %kernel, %buf) ({
^bb0(%b: !equeue.buffer<4xi32>):
  %data = "equeue.read"(%b) {segments = [1, 0, 0]} : (!equeue.buffer<4xi32>) -> tensor<4xi32>
  "equeue.return"() : () -> ()
}) : (!equeue.signal, !equeue.proc, !equeue.buffer<4xi32>) -> !equeue.signal
"equeue.await"(%done) : (!equeue.signal) -> ()
"#,
    r#"
%c0 = "arith.constant"() {value = 0} : () -> i32
%c1 = "arith.constant"() {value = 1} : () -> i32
%sum = "arith.addi"(%c0, %c1) : (i32, i32) -> i32
"affine.for"() ({
^bb0(%i: index):
  %sq = "arith.muli"(%sum, %sum) : (i32, i32) -> i32
  "affine.yield"() : () -> ()
}) {lower = 0, step = 1, upper = 4} : () -> ()
"#,
    r#"
%p = "equeue.create_proc"() {kind = "ARM"} : () -> !equeue.proc
%sram = "equeue.create_mem"() {banks = 2, data_bits = 32, kind = "SRAM", shape = [64]} : () -> !equeue.mem
%dram = "equeue.create_mem"() {banks = 1, data_bits = 32, kind = "DRAM", shape = [256]} : () -> !equeue.mem
%a = "equeue.alloc"(%dram) : (!equeue.mem) -> !equeue.buffer<16xi32>
%b = "equeue.alloc"(%sram) : (!equeue.mem) -> !equeue.buffer<16xi32>
%s = "equeue.control_start"() : () -> !equeue.signal
%d = "equeue.memcpy"(%s, %a, %b) : (!equeue.signal, !equeue.buffer<16xi32>, !equeue.buffer<16xi32>) -> !equeue.signal
"equeue.await"(%d) : (!equeue.signal) -> ()
"#,
    r#"%c = "arith.constant"() {value = 3} : () -> i32
"#,
];

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One random mutation of `text`: byte noise (flips, inserts, truncation)
/// plus structure-aware edits (line shuffles, token splices) so both the
/// lexer and the analyzer's lenient walkers see hostile input.
fn mutate(rng: &mut Rng, text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match rng.below(8) {
        0 => {
            let at = rng.below(bytes.len() + 1);
            bytes.truncate(at);
        }
        1 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
        }
        2 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = b' ' + (rng.below(95) as u8);
            }
        }
        3 => {
            const TOKENS: &[&str] = &[
                "(",
                ")",
                "{",
                "}",
                "[",
                "]",
                "%",
                "\"",
                "^bb0",
                "->",
                ":",
                ",",
                "!equeue.mem",
                "tensor<",
                "-9999999999999999999",
                "= [",
            ];
            let tok = TOKENS[rng.below(TOKENS.len())];
            let at = rng.below(bytes.len() + 1);
            bytes.splice(at..at, tok.bytes());
        }
        4 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                lines.remove(rng.below(lines.len()));
            }
            bytes = lines.join("\n").into_bytes();
        }
        5 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                let at = rng.below(lines.len());
                lines.insert(at, lines[at]);
            }
            bytes = lines.join("\n").into_bytes();
        }
        6 => {
            let mut lines: Vec<&str> = text.lines().collect();
            if lines.len() >= 2 {
                let a = rng.below(lines.len());
                let b = rng.below(lines.len());
                lines.swap(a, b);
            }
            bytes = lines.join("\n").into_bytes();
        }
        _ => {
            if let Some(at) = bytes.iter().position(|b| b.is_ascii_digit()) {
                const REPL: &[&str] = &["0", "-1", "18446744073709551615", "9223372036854775807"];
                let r = REPL[rng.below(REPL.len())];
                bytes.splice(at..at + 1, r.bytes());
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Feeds ≥1.5k mutated programs through parse → analyze. Any panic in any
/// of the five passes fails the test with the case number and input so it
/// can be replayed.
#[test]
fn mutated_ir_never_panics_the_analyzer() {
    let library = SimLibrary::standard();
    let limits = RunLimits::default();
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let mut parsed_ok = 0usize;
    let mut analyzed = 0usize;

    for case in 0..1500 {
        let base = CORPUS[rng.below(CORPUS.len())];
        // Stack 1–4 mutations so errors compound.
        let mut text = base.to_string();
        for _ in 0..(1 + rng.below(4)) {
            text = mutate(&mut rng, &text);
        }

        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match equeue_ir::parse_module(&text) {
                Ok(module) => {
                    let report = analyze_module(&module, &library, &limits);
                    // The report itself must render without panicking.
                    let _ = report.to_text();
                    let _ = report.to_json();
                    true
                }
                Err(_) => false,
            }
        }));

        match outcome {
            Ok(ran) => {
                parsed_ok += usize::from(ran);
                analyzed += usize::from(ran);
            }
            Err(_) => panic!("fuzz case {case} panicked the analyzer on input:\n{text}"),
        }
    }

    // Sanity: the mutator must not be so destructive that nothing parses —
    // otherwise the pass pipeline was never exercised.
    assert!(parsed_ok > 10, "only {parsed_ok} cases parsed");
    assert!(analyzed > 10, "only {analyzed} cases analyzed");
}

/// Pure truncation sweep: every parseable prefix of every corpus program
/// must analyze cleanly. Catches end-of-input artefacts (dangling regions,
/// half-built launches) that the walkers must tolerate.
#[test]
fn truncated_ir_never_panics_the_analyzer() {
    let library = SimLibrary::standard();
    let limits = RunLimits::default();
    for (i, base) in CORPUS.iter().enumerate() {
        for at in 0..base.len() {
            if !base.is_char_boundary(at) {
                continue;
            }
            let text = &base[..at];
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if let Ok(module) = equeue_ir::parse_module(text) {
                    let _ = analyze_module(&module, &library, &limits).to_text();
                }
            }));
            assert!(
                outcome.is_ok(),
                "corpus {i} truncated at byte {at} panicked the analyzer:\n{text}"
            );
        }
    }
}
