//! Error-path coverage: malformed EQueue ops must be rejected by the
//! structured views and verifiers with actionable messages, not panics.

use equeue_dialect::{
    kinds, launch_view, memcpy_view, read_view, standard_registry, write_view, EqueueBuilder,
};
use equeue_ir::{verify_module, AttrMap, Module, OpBuilder, Type};

fn module_with_buffer() -> (Module, equeue_ir::ValueId) {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
    let buf = b.alloc(mem, &[8], Type::I32);
    (m, buf)
}

#[test]
fn read_without_segments_rejected() {
    let (mut m, buf) = module_with_buffer();
    let op = m.create_op(
        "equeue.read",
        vec![buf],
        vec![Type::I32],
        AttrMap::new(),
        vec![],
    );
    m.append_op(m.top_block(), op);
    let err = read_view(&m, op).unwrap_err();
    assert!(err.contains("segments"), "{err}");
    assert!(verify_module(&m, &standard_registry()).is_err());
}

#[test]
fn read_with_inconsistent_segments_rejected() {
    let (mut m, buf) = module_with_buffer();
    let mut attrs = AttrMap::new();
    attrs.set("segments", vec![1i64, 5, 0]); // claims 5 indices, has none
    let op = m.create_op("equeue.read", vec![buf], vec![Type::I32], attrs, vec![]);
    m.append_op(m.top_block(), op);
    assert!(read_view(&m, op).unwrap_err().contains("segments"));
}

#[test]
fn write_wrong_segment_arity_rejected() {
    let (mut m, buf) = module_with_buffer();
    let mut attrs = AttrMap::new();
    attrs.set("segments", vec![1i64, 1]); // needs 4 entries
    let op = m.create_op("equeue.write", vec![buf, buf], vec![], attrs, vec![]);
    m.append_op(m.top_block(), op);
    assert!(write_view(&m, op).unwrap_err().contains("4 entries"));
}

#[test]
fn memcpy_missing_operands_rejected() {
    let (mut m, buf) = module_with_buffer();
    let mut attrs = AttrMap::new();
    attrs.set("segments", vec![1i64, 1, 1, 1, 0]);
    let op = m.create_op(
        "equeue.memcpy",
        vec![buf, buf],
        vec![Type::Signal],
        attrs,
        vec![],
    );
    m.append_op(m.top_block(), op);
    assert!(memcpy_view(&m, op).unwrap_err().contains("segments"));
}

#[test]
fn launch_without_region_rejected() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let start = b.control_start();
    let op = m.create_op(
        "equeue.launch",
        vec![start, pe],
        vec![Type::Signal],
        AttrMap::new(),
        vec![],
    );
    m.append_op(m.top_block(), op);
    assert!(launch_view(&m, op).unwrap_err().contains("region"));
}

#[test]
fn launch_capture_arity_mismatch_rejected() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mem = b.create_mem(kinds::SRAM, &[8], 32, 1);
    let buf = b.alloc(mem, &[4], Type::I32);
    let start = b.control_start();
    // Region takes zero args but the launch passes one capture.
    let (region, body) = b.region_with_block(vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), body);
        ib.ret(vec![]);
    }
    let op = m.create_op(
        "equeue.launch",
        vec![start, pe, buf],
        vec![Type::Signal],
        AttrMap::new(),
        vec![region],
    );
    m.append_op(m.top_block(), op);
    let err = verify_module(&m, &standard_registry()).unwrap_err();
    assert!(err.to_string().contains("captures"), "{err}");
}

#[test]
fn launch_on_memory_rejected() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let mem = b.create_mem(kinds::SRAM, &[8], 32, 1);
    let start = b.control_start();
    let (region, body) = b.region_with_block(vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), body);
        ib.ret(vec![]);
    }
    let op = m.create_op(
        "equeue.launch",
        vec![start, mem],
        vec![Type::Signal],
        AttrMap::new(),
        vec![region],
    );
    m.append_op(m.top_block(), op);
    let err = verify_module(&m, &standard_registry()).unwrap_err();
    assert!(err.to_string().contains("processor"), "{err}");
}

#[test]
fn control_start_with_operands_rejected() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let s = b.control_start();
    let op = m.create_op(
        "equeue.control_start",
        vec![s],
        vec![Type::Signal],
        AttrMap::new(),
        vec![],
    );
    m.append_op(m.top_block(), op);
    let err = verify_module(&m, &standard_registry()).unwrap_err();
    assert!(err.to_string().contains("no operands"), "{err}");
}

#[test]
fn create_mem_with_zero_banks_rejected() {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.op("equeue.create_mem")
        .attr("kind", "SRAM")
        .attr("shape", vec![8i64])
        .attr("data_bits", 32i64)
        .attr("banks", 0i64)
        .result(Type::Mem)
        .finish();
    let err = verify_module(&m, &standard_registry()).unwrap_err();
    assert!(err.to_string().contains("banks"), "{err}");
}

#[test]
fn alloc_larger_than_declared_type_ok_but_capacity_checked_at_runtime() {
    // The verifier checks types; capacity is a runtime property.
    let (m, _) = module_with_buffer();
    verify_module(&m, &standard_registry()).unwrap();
}
