//! Registration of every dialect op into an [`DialectRegistry`].

use crate::{affine, arith, equeue, linalg};
use equeue_ir::{DialectRegistry, OpTraits};

const PURE: OpTraits = OpTraits {
    is_terminator: false,
    is_pure: true,
    is_event: false,
    is_structure: false,
};
const TERM: OpTraits = OpTraits {
    is_terminator: true,
    is_pure: false,
    is_event: false,
    is_structure: false,
};
const EVENT: OpTraits = OpTraits {
    is_terminator: false,
    is_pure: false,
    is_event: true,
    is_structure: false,
};
const STRUCT: OpTraits = OpTraits {
    is_terminator: false,
    is_pure: false,
    is_event: false,
    is_structure: true,
};
const PLAIN: OpTraits = OpTraits {
    is_terminator: false,
    is_pure: false,
    is_event: false,
    is_structure: false,
};

/// Registers the arith, affine, linalg, and equeue dialects into `reg`.
pub fn register_into(reg: &mut DialectRegistry) {
    // arith ----------------------------------------------------------------
    reg.register_op("arith.constant", PURE, Some(arith::verify_constant));
    for name in [
        "arith.addi",
        "arith.subi",
        "arith.muli",
        "arith.divi",
        "arith.remi",
        "arith.addf",
        "arith.mulf",
    ] {
        reg.register_op(name, PURE, Some(arith::verify_binary));
    }
    reg.register_op("arith.cmpi", PURE, Some(arith::verify_cmpi));
    reg.register_op("arith.select", PURE, None);

    // affine / memref --------------------------------------------------------
    reg.register_op("memref.alloc", PLAIN, None);
    reg.register_op("memref.dealloc", PLAIN, None);
    reg.register_op("affine.for", PLAIN, Some(affine::verify_for));
    reg.register_op("affine.parallel", PLAIN, Some(affine::verify_parallel));
    reg.register_op("affine.load", PLAIN, Some(affine::verify_load));
    reg.register_op("affine.store", PLAIN, Some(affine::verify_store));
    reg.register_op("affine.yield", TERM, None);

    // linalg -----------------------------------------------------------------
    reg.register_op("linalg.conv2d", PLAIN, Some(linalg::verify_conv2d));
    reg.register_op("linalg.matmul", PLAIN, Some(linalg::verify_matmul));
    reg.register_op("linalg.fill", PLAIN, Some(linalg::verify_fill));

    // equeue structure --------------------------------------------------------
    reg.register_op(
        "equeue.create_proc",
        STRUCT,
        Some(equeue::verify_create_proc),
    );
    reg.register_op("equeue.create_mem", STRUCT, Some(equeue::verify_create_mem));
    reg.register_op("equeue.create_dma", STRUCT, None);
    reg.register_op("equeue.create_comp", STRUCT, Some(equeue::verify_comp));
    reg.register_op("equeue.add_comp", STRUCT, Some(equeue::verify_comp));
    reg.register_op("equeue.get_comp", STRUCT, Some(equeue::verify_get_comp));
    reg.register_op(
        "equeue.create_connection",
        STRUCT,
        Some(equeue::verify_create_connection),
    );

    // equeue data movement ------------------------------------------------------
    reg.register_op("equeue.alloc", PLAIN, Some(equeue::verify_alloc));
    reg.register_op("equeue.dealloc", PLAIN, None);
    reg.register_op("equeue.read", PLAIN, Some(equeue::verify_read));
    reg.register_op("equeue.write", PLAIN, Some(equeue::verify_write));

    // equeue control -----------------------------------------------------------
    reg.register_op("equeue.memcpy", EVENT, Some(equeue::verify_memcpy));
    reg.register_op("equeue.launch", EVENT, Some(equeue::verify_launch));
    reg.register_op("equeue.control_start", EVENT, Some(equeue::verify_control));
    reg.register_op("equeue.control_and", EVENT, Some(equeue::verify_control));
    reg.register_op("equeue.control_or", EVENT, Some(equeue::verify_control));
    reg.register_op("equeue.await", PLAIN, Some(equeue::verify_await));
    reg.register_op("equeue.return", TERM, None);
    reg.register_op("equeue.op", PLAIN, Some(equeue::verify_ext_op));
}

/// Builds a registry with every dialect registered.
///
/// # Examples
///
/// ```
/// let reg = equeue_dialect::standard_registry();
/// assert!(reg.knows("equeue.launch"));
/// assert!(reg.traits("equeue.launch").is_event);
/// assert!(reg.traits("equeue.return").is_terminator);
/// ```
pub fn standard_registry() -> DialectRegistry {
    let mut reg = DialectRegistry::new();
    register_into(&mut reg);
    reg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_populated() {
        let reg = standard_registry();
        assert!(reg.len() > 25);
        for name in [
            "arith.constant",
            "affine.for",
            "linalg.conv2d",
            "equeue.create_proc",
            "equeue.launch",
            "equeue.read",
            "equeue.op",
        ] {
            assert!(reg.knows(name), "{name} missing");
        }
    }

    #[test]
    fn traits_are_sensible() {
        let reg = standard_registry();
        assert!(reg.traits("arith.addi").is_pure);
        assert!(reg.traits("equeue.return").is_terminator);
        assert!(reg.traits("affine.yield").is_terminator);
        assert!(reg.traits("equeue.launch").is_event);
        assert!(reg.traits("equeue.memcpy").is_event);
        assert!(reg.traits("equeue.create_mem").is_structure);
        assert!(!reg.traits("equeue.await").is_event);
    }
}
