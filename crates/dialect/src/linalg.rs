//! The `linalg` dialect subset: named tensor/buffer computations.
//!
//! Linalg is the highest abstraction level in the paper's Fig. 1 pipeline: a
//! whole convolution is one op, simulated analytically. The
//! `--convert-linalg-to-affine-loops` pass (in `equeue-passes`) lowers these
//! into explicit affine loop nests.
//!
//! Shapes follow the paper's §VI notation:
//!
//! * ifmap: `memref<C x H x W x ty>`
//! * weights: `memref<N x C x Fh x Fw x ty>`
//! * ofmap: `memref<N x Eh x Ew x ty>` with `Eh = H - Fh + 1`, `Ew = W - Fw + 1`

use equeue_ir::{Module, OpBuilder, OpId, ValueId};

/// Convolution problem dimensions, named as in the paper (§VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvDims {
    /// Input feature-map height.
    pub h: usize,
    /// Input feature-map width.
    pub w: usize,
    /// Filter height.
    pub fh: usize,
    /// Filter width.
    pub fw: usize,
    /// Input channels.
    pub c: usize,
    /// Number of filters (output channels).
    pub n: usize,
}

impl ConvDims {
    /// A square problem: `H = W = hw`, `Fh = Fw = f`.
    pub fn square(hw: usize, f: usize, c: usize, n: usize) -> Self {
        ConvDims {
            h: hw,
            w: hw,
            fh: f,
            fw: f,
            c,
            n,
        }
    }

    /// Output feature-map height `Eh = H − Fh + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the filter is taller than the input.
    pub fn eh(&self) -> usize {
        assert!(self.fh <= self.h, "filter taller than input");
        self.h - self.fh + 1
    }

    /// Output feature-map width `Ew = W − Fw + 1`.
    ///
    /// # Panics
    ///
    /// Panics if the filter is wider than the input.
    pub fn ew(&self) -> usize {
        assert!(self.fw <= self.w, "filter wider than input");
        self.w - self.fw + 1
    }

    /// Total multiply-accumulate count: `Eh·Ew·N·Fh·Fw·C`.
    pub fn macs(&self) -> usize {
        self.eh() * self.ew() * self.n * self.fh * self.fw * self.c
    }

    /// Number of ifmap elements, `C·H·W`.
    pub fn ifmap_elems(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Number of weight elements, `N·C·Fh·Fw`.
    pub fn weight_elems(&self) -> usize {
        self.n * self.c * self.fh * self.fw
    }

    /// Number of ofmap elements, `N·Eh·Ew`.
    pub fn ofmap_elems(&self) -> usize {
        self.n * self.eh() * self.ew()
    }
}

/// Fluent constructors for `linalg` ops.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type};
/// use equeue_dialect::{AffineBuilder, LinalgBuilder, ConvDims};
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let d = ConvDims::square(8, 3, 3, 4);
/// let i = b.memref_alloc(Type::memref(vec![d.c, d.h, d.w], Type::I32));
/// let w = b.memref_alloc(Type::memref(vec![d.n, d.c, d.fh, d.fw], Type::I32));
/// let o = b.memref_alloc(Type::memref(vec![d.n, d.eh(), d.ew()], Type::I32));
/// b.linalg_conv2d(i, w, o);
/// ```
pub trait LinalgBuilder {
    /// `linalg.conv2d`: 2-D convolution over explicit buffers
    /// (ifmap, weights, ofmap).
    fn linalg_conv2d(&mut self, ifmap: ValueId, weights: ValueId, ofmap: ValueId) -> OpId;

    /// `linalg.matmul`: `C += A × B` over buffers.
    fn linalg_matmul(&mut self, a: ValueId, b: ValueId, c: ValueId) -> OpId;

    /// `linalg.fill`: broadcast `scalar` into `buffer`.
    fn linalg_fill(&mut self, scalar: ValueId, buffer: ValueId) -> OpId;
}

impl LinalgBuilder for OpBuilder<'_> {
    fn linalg_conv2d(&mut self, ifmap: ValueId, weights: ValueId, ofmap: ValueId) -> OpId {
        self.op("linalg.conv2d")
            .operands(vec![ifmap, weights, ofmap])
            .finish()
    }

    fn linalg_matmul(&mut self, a: ValueId, b: ValueId, c: ValueId) -> OpId {
        self.op("linalg.matmul").operands(vec![a, b, c]).finish()
    }

    fn linalg_fill(&mut self, scalar: ValueId, buffer: ValueId) -> OpId {
        self.op("linalg.fill")
            .operands(vec![scalar, buffer])
            .finish()
    }
}

/// Extracts [`ConvDims`] from a `linalg.conv2d` op's operand shapes.
///
/// # Errors
///
/// Returns a description of the first malformed operand.
pub fn conv2d_dims(m: &Module, op: OpId) -> Result<ConvDims, String> {
    let data = m.op(op);
    if data.operands.len() != 3 {
        return Err("linalg.conv2d needs (ifmap, weights, ofmap)".into());
    }
    let ishape = m
        .value_type(data.operands[0])
        .shape()
        .ok_or("conv2d ifmap must be shaped")?
        .to_vec();
    let wshape = m
        .value_type(data.operands[1])
        .shape()
        .ok_or("conv2d weights must be shaped")?
        .to_vec();
    let oshape = m
        .value_type(data.operands[2])
        .shape()
        .ok_or("conv2d ofmap must be shaped")?
        .to_vec();
    if ishape.len() != 3 {
        return Err(format!(
            "conv2d ifmap must be rank 3 (CxHxW), got rank {}",
            ishape.len()
        ));
    }
    if wshape.len() != 4 {
        return Err(format!(
            "conv2d weights must be rank 4 (NxCxFhxFw), got rank {}",
            wshape.len()
        ));
    }
    if oshape.len() != 3 {
        return Err(format!(
            "conv2d ofmap must be rank 3 (NxEhxEw), got rank {}",
            oshape.len()
        ));
    }
    let dims = ConvDims {
        c: ishape[0],
        h: ishape[1],
        w: ishape[2],
        n: wshape[0],
        fh: wshape[2],
        fw: wshape[3],
    };
    if wshape[1] != dims.c {
        return Err(format!(
            "conv2d channel mismatch: ifmap C={} weights C={}",
            dims.c, wshape[1]
        ));
    }
    if oshape != vec![dims.n, dims.eh(), dims.ew()] {
        return Err(format!(
            "conv2d ofmap shape {:?} does not match expected [{}, {}, {}]",
            oshape,
            dims.n,
            dims.eh(),
            dims.ew()
        ));
    }
    Ok(dims)
}

/// Verifies `linalg.conv2d` by attempting dimension extraction.
pub fn verify_conv2d(m: &Module, op: OpId) -> Result<(), String> {
    conv2d_dims(m, op).map(|_| ())
}

/// Verifies `linalg.matmul` operand shapes `(MxK, KxN, MxN)`.
pub fn verify_matmul(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.len() != 3 {
        return Err("linalg.matmul needs (A, B, C)".into());
    }
    let get = |i: usize| -> Result<Vec<usize>, String> {
        m.value_type(data.operands[i])
            .shape()
            .map(|s| s.to_vec())
            .ok_or_else(|| format!("matmul operand {i} must be shaped"))
    };
    let (a, b, c) = (get(0)?, get(1)?, get(2)?);
    if a.len() != 2 || b.len() != 2 || c.len() != 2 {
        return Err("matmul operands must be rank 2".into());
    }
    if a[1] != b[0] || c[0] != a[0] || c[1] != b[1] {
        return Err(format!("matmul shape mismatch: {a:?} × {b:?} -> {c:?}"));
    }
    Ok(())
}

/// Verifies `linalg.fill`: a scalar and a shaped target.
pub fn verify_fill(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.len() != 2 {
        return Err("linalg.fill needs (scalar, buffer)".into());
    }
    let st = m.value_type(data.operands[0]);
    let bt = m.value_type(data.operands[1]);
    if st.is_shaped() {
        return Err("linalg.fill scalar operand must not be shaped".into());
    }
    if !bt.is_shaped() {
        return Err("linalg.fill target must be shaped".into());
    }
    let Some(be) = bt.elem() else {
        return Err("linalg.fill target must be shaped".into());
    };
    if !st.matches(be) {
        return Err(format!(
            "linalg.fill scalar {st} does not match element {be}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::affine::AffineBuilder;
    use crate::arith::ArithBuilder;
    use equeue_ir::Type;

    fn conv_setup(d: ConvDims) -> (Module, OpId) {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let i = b.memref_alloc(Type::memref(vec![d.c, d.h, d.w], Type::I32));
        let w = b.memref_alloc(Type::memref(vec![d.n, d.c, d.fh, d.fw], Type::I32));
        let o = b.memref_alloc(Type::memref(vec![d.n, d.eh(), d.ew()], Type::I32));
        let op = b.linalg_conv2d(i, w, o);
        (m, op)
    }

    #[test]
    fn dims_arithmetic() {
        let d = ConvDims::square(8, 3, 3, 4);
        assert_eq!(d.eh(), 6);
        assert_eq!(d.ew(), 6);
        assert_eq!(d.macs(), 6 * 6 * 4 * 3 * 3 * 3);
        assert_eq!(d.ifmap_elems(), 3 * 8 * 8);
        assert_eq!(d.weight_elems(), 4 * 3 * 3 * 3);
        assert_eq!(d.ofmap_elems(), 4 * 6 * 6);
    }

    #[test]
    fn conv_dims_extraction() {
        let d = ConvDims::square(8, 3, 3, 4);
        let (m, op) = conv_setup(d);
        assert_eq!(conv2d_dims(&m, op).unwrap(), d);
        assert!(verify_conv2d(&m, op).is_ok());
    }

    #[test]
    fn conv_rejects_bad_ofmap() {
        let d = ConvDims::square(8, 3, 3, 4);
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let i = b.memref_alloc(Type::memref(vec![d.c, d.h, d.w], Type::I32));
        let w = b.memref_alloc(Type::memref(vec![d.n, d.c, d.fh, d.fw], Type::I32));
        let o = b.memref_alloc(Type::memref(vec![d.n, 5, 5], Type::I32));
        let op = b.linalg_conv2d(i, w, o);
        assert!(verify_conv2d(&m, op).unwrap_err().contains("ofmap shape"));
    }

    #[test]
    fn matmul_verification() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let a = b.memref_alloc(Type::memref(vec![2, 3], Type::F32));
        let bb = b.memref_alloc(Type::memref(vec![3, 4], Type::F32));
        let c = b.memref_alloc(Type::memref(vec![2, 4], Type::F32));
        let good = b.linalg_matmul(a, bb, c);
        assert!(verify_matmul(&m, good).is_ok());

        let mut b = OpBuilder::at_end(&mut m, blk);
        let bad = b.linalg_matmul(a, c, bb);
        assert!(verify_matmul(&m, bad).unwrap_err().contains("mismatch"));
    }

    #[test]
    fn fill_verification() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let zero = b.const_int(0, Type::I32);
        let buf = b.memref_alloc(Type::memref(vec![4], Type::I32));
        let good = b.linalg_fill(zero, buf);
        assert!(verify_fill(&m, good).is_ok());

        let mut b = OpBuilder::at_end(&mut m, blk);
        let f = b.const_float(0.0, Type::F32);
        let bad = b.linalg_fill(f, buf);
        assert!(verify_fill(&m, bad).unwrap_err().contains("does not match"));
    }
}
