//! The **EQueue dialect**: the paper's core contribution (§III).
//!
//! EQueue programs have two parts:
//!
//! 1. **Structure specification** — `create_proc`, `create_mem`,
//!    `create_dma`, `create_comp`/`add_comp`/`get_comp`, and
//!    `create_connection` declare the hardware resources of an accelerator
//!    (§III-A).
//! 2. **Control flow** — `launch` schedules blocks of code onto processors;
//!    `memcpy` moves data via DMA; `control_start`/`control_and`/
//!    `control_or` build event dependency graphs; `await` blocks on events;
//!    `return` passes values out of a launch block (§III-C, §III-D).
//!
//! Data movement is explicit: `alloc`/`dealloc` manage buffers inside
//! memories and `read`/`write` move values, optionally through a
//! bandwidth-constrained connection (§III-B). The escape hatch `equeue.op`
//! names an operation implemented directly by the simulator library
//! (§III-E), e.g. the AI Engine's `mul4`/`mac4` intrinsics.
//!
//! Ops with variadic operand groups carry a `segments` integer-array
//! attribute recording group sizes, mirroring MLIR's
//! `operand_segment_sizes`.

use equeue_ir::{Attr, BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// Well-known component-kind strings understood by the simulator library.
pub mod kinds {
    /// ARM Cortex-R5 control processor model.
    pub const ARM_R5: &str = "ARMr5";
    /// ARM Cortex-R6 control processor model.
    pub const ARM_R6: &str = "ARMr6";
    /// Multiply-accumulate processing-element model.
    pub const MAC: &str = "MAC";
    /// Versal ACAP AI Engine (VLIW SIMD) model with `mul4`/`mac4`.
    pub const AI_ENGINE: &str = "AIEngine";
    /// Generic 1-op-per-cycle processor model.
    pub const GENERIC: &str = "Generic";
    /// On-chip SRAM memory model (banked, 1-cycle access by default).
    pub const SRAM: &str = "SRAM";
    /// Register-file memory model (zero-cycle access).
    pub const REGISTER: &str = "Register";
    /// Off-chip DRAM memory model (high latency).
    pub const DRAM: &str = "DRAM";
    /// Set-associative cache model (see `equeue-core::components::Cache`).
    pub const CACHE: &str = "Cache";
}

/// Connection flavours (§III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConnKind {
    /// Simultaneous reads and writes; lower latency.
    Streaming,
    /// Buffered window requiring exclusive locking; higher bandwidth.
    Window,
}

impl ConnKind {
    /// The attribute spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ConnKind::Streaming => "Streaming",
            ConnKind::Window => "Window",
        }
    }

    /// Parses the attribute spelling.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        match s {
            "Streaming" => Some(ConnKind::Streaming),
            "Window" => Some(ConnKind::Window),
            _ => None,
        }
    }
}

/// The pieces of a freshly-built `equeue.launch` op.
#[derive(Debug, Clone)]
pub struct LaunchParts {
    /// The launch op itself.
    pub op: OpId,
    /// The completion signal (`done`), result 0.
    pub done: ValueId,
    /// Extra results (from `equeue.return` inside the body).
    pub results: Vec<ValueId>,
    /// The body block to fill with ops (must end with `equeue.return`).
    pub body: BlockId,
    /// Body block arguments, bound to the captured operands at run time.
    pub body_args: Vec<ValueId>,
}

/// Fluent constructors for EQueue ops, as an extension of [`OpBuilder`].
///
/// # Examples
///
/// Building the toy accelerator of the paper's Fig. 2a:
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type};
/// use equeue_dialect::{EqueueBuilder, kinds};
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let kernel = b.create_proc(kinds::ARM_R6);
/// let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
/// let dma = b.create_dma();
/// let accel = b.create_comp(&["Kernel", "SRAM", "DMA"], vec![kernel, sram, dma]);
/// let start = b.control_start();
/// let launch = b.launch(start, kernel, &[], vec![]);
/// let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
/// body.ret(vec![]);
/// assert_eq!(*m.value_type(launch.done), Type::Signal);
/// assert_eq!(*m.value_type(accel), Type::Comp);
/// ```
pub trait EqueueBuilder {
    /// `equeue.create_proc` of the given kind (see [`kinds`]).
    fn create_proc(&mut self, kind: &str) -> ValueId;
    /// `equeue.create_mem`: a memory with `shape` data elements of
    /// `data_bits` each, `banks` banks, of the given kind.
    fn create_mem(&mut self, kind: &str, shape: &[usize], data_bits: u32, banks: u32) -> ValueId;
    /// `equeue.create_dma`.
    fn create_dma(&mut self) -> ValueId;
    /// `equeue.create_comp` grouping `comps` under `names` (same length).
    fn create_comp(&mut self, names: &[&str], comps: Vec<ValueId>) -> ValueId;
    /// `equeue.add_comp` adding `comps` (named `names`) to `comp`.
    fn add_comp(&mut self, comp: ValueId, names: &[&str], comps: Vec<ValueId>);
    /// `equeue.get_comp` looking up sub-component `name`; the caller states
    /// the expected component type `ty`.
    fn get_comp(&mut self, comp: ValueId, name: &str, ty: Type) -> ValueId;
    /// `equeue.create_connection` with bandwidth in bytes/cycle
    /// (`0` = unlimited).
    fn create_connection(&mut self, kind: ConnKind, bandwidth: u32) -> ValueId;
    /// `equeue.alloc`: a buffer of `shape`×`elem` inside memory `mem`.
    fn alloc(&mut self, mem: ValueId, shape: &[usize], elem: Type) -> ValueId;
    /// `equeue.dealloc`.
    fn dealloc(&mut self, buffer: ValueId);
    /// `equeue.read` of a whole buffer, optionally through a connection.
    /// Result is the element type for single-element buffers, else a tensor.
    fn read(&mut self, buffer: ValueId, conn: Option<ValueId>) -> ValueId;
    /// `equeue.read` of one element at `indices`.
    fn read_indexed(
        &mut self,
        buffer: ValueId,
        indices: Vec<ValueId>,
        conn: Option<ValueId>,
    ) -> ValueId;
    /// `equeue.write` of a whole buffer, optionally through a connection.
    fn write(&mut self, value: ValueId, buffer: ValueId, conn: Option<ValueId>);
    /// `equeue.write` of one element at `indices`.
    fn write_indexed(
        &mut self,
        value: ValueId,
        buffer: ValueId,
        indices: Vec<ValueId>,
        conn: Option<ValueId>,
    );
    /// `equeue.memcpy` from `src` to `dst` on DMA engine `dma`, gated by
    /// `dep`; returns the completion signal.
    fn memcpy(
        &mut self,
        dep: ValueId,
        src: ValueId,
        dst: ValueId,
        dma: ValueId,
        conn: Option<ValueId>,
    ) -> ValueId;
    /// `equeue.control_start`: the root of an event chain.
    fn control_start(&mut self) -> ValueId;
    /// `equeue.control_and`: fires when **all** dependencies fire.
    fn control_and(&mut self, deps: Vec<ValueId>) -> ValueId;
    /// `equeue.control_or`: fires when **any** dependency fires.
    fn control_or(&mut self, deps: Vec<ValueId>) -> ValueId;
    /// `equeue.launch`: schedule a block on `proc` once `dep` fires.
    /// `captures` are bound to the body's block arguments; `extra_results`
    /// are returned by the body's `equeue.return`.
    fn launch(
        &mut self,
        dep: ValueId,
        proc: ValueId,
        captures: &[ValueId],
        extra_results: Vec<Type>,
    ) -> LaunchParts;
    /// `equeue.await` blocking on every signal in `deps`.
    fn await_all(&mut self, deps: Vec<ValueId>);
    /// `equeue.return` terminating a launch body.
    fn ret(&mut self, values: Vec<ValueId>);
    /// `equeue.op`: an externally-modelled operation named `signature`
    /// (§III-E), e.g. `"mac4"`.
    fn ext_op(&mut self, signature: &str, operands: Vec<ValueId>, results: Vec<Type>) -> OpId;
}

impl EqueueBuilder for OpBuilder<'_> {
    fn create_proc(&mut self, kind: &str) -> ValueId {
        self.op("equeue.create_proc")
            .attr("kind", kind)
            .result(Type::Proc)
            .finish_value()
    }

    fn create_mem(&mut self, kind: &str, shape: &[usize], data_bits: u32, banks: u32) -> ValueId {
        let shape_attr: Vec<i64> = shape.iter().map(|&d| d as i64).collect();
        self.op("equeue.create_mem")
            .attr("kind", kind)
            .attr("shape", shape_attr)
            .attr("data_bits", data_bits as i64)
            .attr("banks", banks as i64)
            .result(Type::Mem)
            .finish_value()
    }

    fn create_dma(&mut self) -> ValueId {
        self.op("equeue.create_dma")
            .result(Type::Dma)
            .finish_value()
    }

    fn create_comp(&mut self, names: &[&str], comps: Vec<ValueId>) -> ValueId {
        assert_eq!(names.len(), comps.len(), "one name per sub-component");
        let names_attr = Attr::StrArray(names.iter().map(|s| s.to_string()).collect());
        self.op("equeue.create_comp")
            .attr("names", names_attr)
            .operands(comps)
            .result(Type::Comp)
            .finish_value()
    }

    fn add_comp(&mut self, comp: ValueId, names: &[&str], comps: Vec<ValueId>) {
        assert_eq!(names.len(), comps.len(), "one name per sub-component");
        let names_attr = Attr::StrArray(names.iter().map(|s| s.to_string()).collect());
        self.op("equeue.add_comp")
            .attr("names", names_attr)
            .operand(comp)
            .operands(comps)
            .finish();
    }

    fn get_comp(&mut self, comp: ValueId, name: &str, ty: Type) -> ValueId {
        self.op("equeue.get_comp")
            .attr("name", name)
            .operand(comp)
            .result(ty)
            .finish_value()
    }

    fn create_connection(&mut self, kind: ConnKind, bandwidth: u32) -> ValueId {
        self.op("equeue.create_connection")
            .attr("kind", kind.as_str())
            .attr("bandwidth", bandwidth as i64)
            .result(Type::Conn)
            .finish_value()
    }

    fn alloc(&mut self, mem: ValueId, shape: &[usize], elem: Type) -> ValueId {
        self.op("equeue.alloc")
            .operand(mem)
            .result(Type::buffer(shape.to_vec(), elem))
            .finish_value()
    }

    fn dealloc(&mut self, buffer: ValueId) {
        self.op("equeue.dealloc").operand(buffer).finish();
    }

    fn read(&mut self, buffer: ValueId, conn: Option<ValueId>) -> ValueId {
        let bt = self.module().value_type(buffer).clone();
        let (shape, elem) = (
            bt.shape().unwrap_or(&[]).to_vec(),
            bt.elem().cloned().unwrap_or(Type::Any),
        );
        let result_ty = if shape.iter().product::<usize>() <= 1 {
            elem
        } else {
            Type::tensor(shape, elem)
        };
        let n_conn = conn.iter().len() as i64;
        self.op("equeue.read")
            .attr("segments", vec![1, 0, n_conn])
            .operand(buffer)
            .operands(conn)
            .result(result_ty)
            .finish_value()
    }

    fn read_indexed(
        &mut self,
        buffer: ValueId,
        indices: Vec<ValueId>,
        conn: Option<ValueId>,
    ) -> ValueId {
        let elem = self
            .module()
            .value_type(buffer)
            .elem()
            .cloned()
            .unwrap_or(Type::Any);
        let n_conn = conn.iter().len() as i64;
        self.op("equeue.read")
            .attr("segments", vec![1, indices.len() as i64, n_conn])
            .operand(buffer)
            .operands(indices)
            .operands(conn)
            .result(elem)
            .finish_value()
    }

    fn write(&mut self, value: ValueId, buffer: ValueId, conn: Option<ValueId>) {
        let n_conn = conn.iter().len() as i64;
        self.op("equeue.write")
            .attr("segments", vec![1, 1, 0, n_conn])
            .operand(value)
            .operand(buffer)
            .operands(conn)
            .finish();
    }

    fn write_indexed(
        &mut self,
        value: ValueId,
        buffer: ValueId,
        indices: Vec<ValueId>,
        conn: Option<ValueId>,
    ) {
        let n_conn = conn.iter().len() as i64;
        self.op("equeue.write")
            .attr("segments", vec![1, 1, indices.len() as i64, n_conn])
            .operand(value)
            .operand(buffer)
            .operands(indices)
            .operands(conn)
            .finish();
    }

    fn memcpy(
        &mut self,
        dep: ValueId,
        src: ValueId,
        dst: ValueId,
        dma: ValueId,
        conn: Option<ValueId>,
    ) -> ValueId {
        let n_conn = conn.iter().len() as i64;
        self.op("equeue.memcpy")
            .attr("segments", vec![1, 1, 1, 1, n_conn])
            .operands(vec![dep, src, dst, dma])
            .operands(conn)
            .result(Type::Signal)
            .finish_value()
    }

    fn control_start(&mut self) -> ValueId {
        self.op("equeue.control_start")
            .result(Type::Signal)
            .finish_value()
    }

    fn control_and(&mut self, deps: Vec<ValueId>) -> ValueId {
        self.op("equeue.control_and")
            .operands(deps)
            .result(Type::Signal)
            .finish_value()
    }

    fn control_or(&mut self, deps: Vec<ValueId>) -> ValueId {
        self.op("equeue.control_or")
            .operands(deps)
            .result(Type::Signal)
            .finish_value()
    }

    fn launch(
        &mut self,
        dep: ValueId,
        proc: ValueId,
        captures: &[ValueId],
        extra_results: Vec<Type>,
    ) -> LaunchParts {
        let arg_types: Vec<Type> = captures
            .iter()
            .map(|&c| self.module().value_type(c).clone())
            .collect();
        let (region, body) = self.region_with_block(arg_types);
        let body_args = self.module().block(body).args.clone();
        let mut result_types = vec![Type::Signal];
        result_types.extend(extra_results);
        let op = self
            .op("equeue.launch")
            .operand(dep)
            .operand(proc)
            .operands(captures.iter().copied())
            .results(result_types)
            .region(region)
            .finish();
        let done = self.module().result(op, 0);
        let results = (1..self.module().op(op).results.len())
            .map(|i| self.module().result(op, i))
            .collect();
        LaunchParts {
            op,
            done,
            results,
            body,
            body_args,
        }
    }

    fn await_all(&mut self, deps: Vec<ValueId>) {
        self.op("equeue.await").operands(deps).finish();
    }

    fn ret(&mut self, values: Vec<ValueId>) {
        self.op("equeue.return").operands(values).finish();
    }

    fn ext_op(&mut self, signature: &str, operands: Vec<ValueId>, results: Vec<Type>) -> OpId {
        self.op("equeue.op")
            .attr("signature", signature)
            .operands(operands)
            .results(results)
            .finish()
    }
}

// ---- structured views ------------------------------------------------------

/// Decoded view of an `equeue.read` op's operand groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadView {
    /// The buffer operand.
    pub buffer: ValueId,
    /// Optional element subscripts.
    pub indices: Vec<ValueId>,
    /// Optional connection.
    pub conn: Option<ValueId>,
}

/// Converts a `segments` attribute to counts, rejecting negative entries
/// (an `i64 as usize` cast would wrap them to huge counts).
fn segment_counts<const N: usize>(seg: &[i64]) -> Option<[usize; N]> {
    let mut out = [0usize; N];
    for (slot, &v) in out.iter_mut().zip(seg) {
        *slot = usize::try_from(v).ok()?;
    }
    Some(out)
}

/// Sums operand-group counts without overflow (attacker-controlled counts
/// near `usize::MAX` must not panic in debug builds).
fn checked_sum(counts: &[usize]) -> Option<usize> {
    counts.iter().try_fold(0usize, |acc, &c| acc.checked_add(c))
}

/// Decodes an `equeue.read`.
///
/// # Errors
///
/// Fails when the `segments` attribute is missing or inconsistent.
pub fn read_view(m: &Module, op: OpId) -> Result<ReadView, String> {
    let data = m.op(op);
    let seg = data
        .attrs
        .int_array("segments")
        .ok_or("equeue.read needs 'segments'")?;
    if seg.len() != 3 {
        return Err("equeue.read 'segments' must have 3 entries".into());
    }
    let [nb, ni, nc] =
        segment_counts::<3>(seg).ok_or("equeue.read 'segments' entries must be non-negative")?;
    if nb != 1 || nc > 1 || Some(data.operands.len()) != checked_sum(&[nb, ni, nc]) {
        return Err("equeue.read segments do not match operands".into());
    }
    Ok(ReadView {
        buffer: data.operands[0],
        indices: data.operands[1..1 + ni].to_vec(),
        conn: if nc == 1 {
            Some(data.operands[1 + ni])
        } else {
            None
        },
    })
}

/// Decoded view of an `equeue.write` op's operand groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteView {
    /// The value being written.
    pub value: ValueId,
    /// The target buffer.
    pub buffer: ValueId,
    /// Optional element subscripts.
    pub indices: Vec<ValueId>,
    /// Optional connection.
    pub conn: Option<ValueId>,
}

/// Decodes an `equeue.write`.
///
/// # Errors
///
/// Fails when the `segments` attribute is missing or inconsistent.
pub fn write_view(m: &Module, op: OpId) -> Result<WriteView, String> {
    let data = m.op(op);
    let seg = data
        .attrs
        .int_array("segments")
        .ok_or("equeue.write needs 'segments'")?;
    if seg.len() != 4 {
        return Err("equeue.write 'segments' must have 4 entries".into());
    }
    let [nv, nb, ni, nc] =
        segment_counts::<4>(seg).ok_or("equeue.write 'segments' entries must be non-negative")?;
    if nv != 1 || nb != 1 || nc > 1 || Some(data.operands.len()) != checked_sum(&[nv, nb, ni, nc]) {
        return Err("equeue.write segments do not match operands".into());
    }
    Ok(WriteView {
        value: data.operands[0],
        buffer: data.operands[1],
        indices: data.operands[2..2 + ni].to_vec(),
        conn: if nc == 1 {
            Some(data.operands[2 + ni])
        } else {
            None
        },
    })
}

/// Decoded view of an `equeue.memcpy` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemcpyView {
    /// Dependency signal.
    pub dep: ValueId,
    /// Source buffer.
    pub src: ValueId,
    /// Destination buffer.
    pub dst: ValueId,
    /// DMA engine executing the copy.
    pub dma: ValueId,
    /// Optional connection.
    pub conn: Option<ValueId>,
}

/// Decodes an `equeue.memcpy`.
///
/// # Errors
///
/// Fails when the `segments` attribute is missing or inconsistent.
pub fn memcpy_view(m: &Module, op: OpId) -> Result<MemcpyView, String> {
    let data = m.op(op);
    let seg = data
        .attrs
        .int_array("segments")
        .ok_or("equeue.memcpy needs 'segments'")?;
    if seg.len() != 5 {
        return Err("equeue.memcpy 'segments' must have 5 entries".into());
    }
    let nc = usize::try_from(seg[4])
        .map_err(|_| "equeue.memcpy 'segments' entries must be non-negative")?;
    if seg[..4] != [1, 1, 1, 1] || nc > 1 || data.operands.len() != 4 + nc {
        return Err("equeue.memcpy segments do not match operands".into());
    }
    Ok(MemcpyView {
        dep: data.operands[0],
        src: data.operands[1],
        dst: data.operands[2],
        dma: data.operands[3],
        conn: if nc == 1 {
            Some(data.operands[4])
        } else {
            None
        },
    })
}

/// Decoded view of an `equeue.launch` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchView {
    /// Dependency signal.
    pub dep: ValueId,
    /// Target processor (or DMA).
    pub proc: ValueId,
    /// Captured operands bound to the body's block arguments.
    pub captures: Vec<ValueId>,
    /// Completion signal (result 0).
    pub done: ValueId,
    /// Extra results.
    pub results: Vec<ValueId>,
    /// The body block.
    pub body: BlockId,
}

/// Decodes an `equeue.launch`.
///
/// # Errors
///
/// Fails on malformed launches (wrong operand count or missing region).
pub fn launch_view(m: &Module, op: OpId) -> Result<LaunchView, String> {
    let data = m.op(op);
    if data.operands.len() < 2 {
        return Err("equeue.launch needs (dep, proc, captures...)".into());
    }
    if data.regions.len() != 1 {
        return Err("equeue.launch needs exactly one region".into());
    }
    if data.results.is_empty() {
        return Err("equeue.launch must produce a done signal".into());
    }
    let body = *m
        .region(data.regions[0])
        .blocks
        .first()
        .ok_or("equeue.launch region has no body block")?;
    Ok(LaunchView {
        dep: data.operands[0],
        proc: data.operands[1],
        captures: data.operands[2..].to_vec(),
        done: data.results[0],
        results: data.results[1..].to_vec(),
        body,
    })
}

// ---- verifiers -------------------------------------------------------------

/// Verifies `equeue.create_proc`: `kind` attribute and a `!equeue.proc`
/// result.
pub fn verify_create_proc(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.attrs.str("kind").is_none() {
        return Err("create_proc needs a 'kind' attribute".into());
    }
    if data.results.len() != 1 || *m.value_type(data.results[0]) != Type::Proc {
        return Err("create_proc must return !equeue.proc".into());
    }
    Ok(())
}

/// Verifies `equeue.create_mem`: kind/shape/bits/banks attributes and a
/// `!equeue.mem` result.
pub fn verify_create_mem(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.attrs.str("kind").is_none() {
        return Err("create_mem needs a 'kind' attribute".into());
    }
    let shape = data
        .attrs
        .shape("shape")
        .ok_or("create_mem needs a 'shape' attribute")?;
    if shape.is_empty() || shape.iter().product::<usize>() == 0 {
        return Err("create_mem shape must be non-empty".into());
    }
    let bits = data
        .attrs
        .int("data_bits")
        .ok_or("create_mem needs 'data_bits'")?;
    if bits <= 0 {
        return Err("create_mem data_bits must be positive".into());
    }
    let banks = data.attrs.int("banks").ok_or("create_mem needs 'banks'")?;
    if banks <= 0 {
        return Err("create_mem banks must be positive".into());
    }
    if data.results.len() != 1 || *m.value_type(data.results[0]) != Type::Mem {
        return Err("create_mem must return !equeue.mem".into());
    }
    Ok(())
}

/// Verifies `equeue.create_comp`/`add_comp`: names match component operands.
pub fn verify_comp(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let names = data
        .attrs
        .get("names")
        .and_then(Attr::as_str_array)
        .ok_or("component op needs a 'names' string array")?;
    let offset = if data.name == "equeue.add_comp" { 1 } else { 0 };
    if data.operands.len() - offset != names.len() {
        return Err(format!(
            "'{}' has {} sub-components but {} names",
            data.name,
            data.operands.len() - offset,
            names.len()
        ));
    }
    for &c in &data.operands[offset..] {
        let t = m.value_type(c);
        if !t.is_component() && *t != Type::Conn {
            return Err(format!("sub-component has non-component type {t}"));
        }
    }
    if offset == 1 && *m.value_type(data.operands[0]) != Type::Comp {
        return Err("add_comp target must be !equeue.comp".into());
    }
    Ok(())
}

/// Verifies `equeue.get_comp`: a comp operand and a `name` attribute.
pub fn verify_get_comp(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.attrs.str("name").is_none() {
        return Err("get_comp needs a 'name' attribute".into());
    }
    if data.operands.len() != 1 || *m.value_type(data.operands[0]) != Type::Comp {
        return Err("get_comp takes exactly one !equeue.comp operand".into());
    }
    Ok(())
}

/// Verifies `equeue.create_connection`: a known kind and a bandwidth.
pub fn verify_create_connection(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let kind = data
        .attrs
        .str("kind")
        .ok_or("create_connection needs 'kind'")?;
    if ConnKind::from_str(kind).is_none() {
        return Err(format!("unknown connection kind '{kind}'"));
    }
    let bw = data
        .attrs
        .int("bandwidth")
        .ok_or("create_connection needs 'bandwidth'")?;
    if bw < 0 {
        return Err("bandwidth must be non-negative (0 = unlimited)".into());
    }
    Ok(())
}

/// Verifies `equeue.alloc`: a memory operand and a buffer result that fits.
pub fn verify_alloc(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.len() != 1 || *m.value_type(data.operands[0]) != Type::Mem {
        return Err("alloc takes exactly one !equeue.mem operand".into());
    }
    if data.results.len() != 1 {
        return Err("alloc must return one buffer".into());
    }
    let rt = m.value_type(data.results[0]);
    if !matches!(rt, Type::Buffer { .. }) {
        return Err(format!("alloc must return !equeue.buffer, got {rt}"));
    }
    Ok(())
}

/// Verifies `equeue.read` via [`read_view`], plus subscript typing.
pub fn verify_read(m: &Module, op: OpId) -> Result<(), String> {
    let v = read_view(m, op)?;
    if !matches!(m.value_type(v.buffer), Type::Buffer { .. }) {
        return Err("read target must be a buffer".into());
    }
    for &i in &v.indices {
        if *m.value_type(i) != Type::Index {
            return Err("read subscripts must be index-typed".into());
        }
    }
    if let Some(c) = v.conn {
        if *m.value_type(c) != Type::Conn {
            return Err("read connection operand must be !equeue.conn".into());
        }
    }
    if m.op(op).results.len() != 1 {
        return Err("read must produce one value".into());
    }
    Ok(())
}

/// Verifies `equeue.write` via [`write_view`], plus subscript typing.
pub fn verify_write(m: &Module, op: OpId) -> Result<(), String> {
    let v = write_view(m, op)?;
    if !matches!(m.value_type(v.buffer), Type::Buffer { .. }) {
        return Err("write target must be a buffer".into());
    }
    for &i in &v.indices {
        if *m.value_type(i) != Type::Index {
            return Err("write subscripts must be index-typed".into());
        }
    }
    if let Some(c) = v.conn {
        if *m.value_type(c) != Type::Conn {
            return Err("write connection operand must be !equeue.conn".into());
        }
    }
    Ok(())
}

/// Verifies `equeue.memcpy` via [`memcpy_view`], plus operand typing.
pub fn verify_memcpy(m: &Module, op: OpId) -> Result<(), String> {
    let v = memcpy_view(m, op)?;
    if *m.value_type(v.dep) != Type::Signal {
        return Err("memcpy dependency must be a signal".into());
    }
    for (what, val) in [("source", v.src), ("destination", v.dst)] {
        if !matches!(m.value_type(val), Type::Buffer { .. }) {
            return Err(format!("memcpy {what} must be a buffer"));
        }
    }
    if *m.value_type(v.dma) != Type::Dma {
        return Err("memcpy engine must be !equeue.dma".into());
    }
    if m.op(op).results.len() != 1 || *m.value_type(m.op(op).results[0]) != Type::Signal {
        return Err("memcpy must return a signal".into());
    }
    Ok(())
}

/// Verifies the `control_*` family: signal operands, one signal result;
/// `control_start` takes none, `control_and`/`or` at least one.
pub fn verify_control(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.name == "equeue.control_start" {
        if !data.operands.is_empty() {
            return Err("control_start takes no operands".into());
        }
    } else if data.operands.is_empty() {
        return Err(format!("'{}' needs at least one dependency", data.name));
    }
    for &d in &data.operands {
        if *m.value_type(d) != Type::Signal {
            return Err(format!("'{}' operands must be signals", data.name));
        }
    }
    if data.results.len() != 1 || *m.value_type(data.results[0]) != Type::Signal {
        return Err(format!("'{}' must return one signal", data.name));
    }
    Ok(())
}

/// Verifies `equeue.launch`: operand/result/region consistency, capture
/// types matching body arguments, and a terminating `equeue.return` whose
/// operand types match the extra results.
pub fn verify_launch(m: &Module, op: OpId) -> Result<(), String> {
    let v = launch_view(m, op)?;
    if *m.value_type(v.dep) != Type::Signal {
        return Err("launch dependency must be a signal".into());
    }
    let pt = m.value_type(v.proc);
    if *pt != Type::Proc && *pt != Type::Dma {
        return Err(format!(
            "launch target must be a processor or DMA, got {pt}"
        ));
    }
    if *m.value_type(v.done) != Type::Signal {
        return Err("launch result 0 must be the done signal".into());
    }
    let args = m.block(v.body).args.clone();
    if args.len() != v.captures.len() {
        return Err(format!(
            "launch captures {} values but body takes {} arguments",
            v.captures.len(),
            args.len()
        ));
    }
    for (i, (&c, &a)) in v.captures.iter().zip(args.iter()).enumerate() {
        if !m.value_type(c).matches(m.value_type(a)) {
            return Err(format!(
                "launch capture {i} type {} does not match body argument type {}",
                m.value_type(c),
                m.value_type(a)
            ));
        }
    }
    let body_ops: Vec<OpId> = m
        .block(v.body)
        .ops
        .iter()
        .copied()
        .filter(|&o| !m.op(o).erased)
        .collect();
    let last = body_ops
        .last()
        .ok_or("launch body must end with equeue.return")?;
    if m.op(*last).name != "equeue.return" {
        return Err("launch body must end with equeue.return".into());
    }
    let ret_operands = &m.op(*last).operands;
    if ret_operands.len() != v.results.len() {
        return Err(format!(
            "launch returns {} extra results but body yields {}",
            v.results.len(),
            ret_operands.len()
        ));
    }
    for (i, (&r, &y)) in v.results.iter().zip(ret_operands.iter()).enumerate() {
        if !m.value_type(r).matches(m.value_type(y)) {
            return Err(format!("launch extra result {i} type mismatch"));
        }
    }
    Ok(())
}

/// Verifies `equeue.await`: at least one signal operand.
pub fn verify_await(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.is_empty() {
        return Err("await needs at least one signal".into());
    }
    for &d in &data.operands {
        if *m.value_type(d) != Type::Signal {
            return Err("await operands must be signals".into());
        }
    }
    Ok(())
}

/// Verifies `equeue.op`: a `signature` attribute.
pub fn verify_ext_op(m: &Module, op: OpId) -> Result<(), String> {
    if m.op(op).attrs.str("signature").is_none() {
        return Err("equeue.op needs a 'signature' attribute".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(m: &Module, v: ValueId) -> OpId {
        match m.value(v).def {
            equeue_ir::ValueDef::OpResult { op, .. } => op,
            _ => panic!("not an op result"),
        }
    }

    #[test]
    fn structure_builders() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let p = b.create_proc(kinds::ARM_R5);
        let mem = b.create_mem(kinds::SRAM, &[4096], 32, 4);
        let dma = b.create_dma();
        let comp = b.create_comp(&["Kernel", "Memory", "DMA"], vec![p, mem, dma]);
        let looked = b.get_comp(comp, "DMA", Type::Dma);
        let conn = b.create_connection(ConnKind::Streaming, 32);

        assert!(verify_create_proc(&m, owner(&m, p)).is_ok());
        assert!(verify_create_mem(&m, owner(&m, mem)).is_ok());
        assert!(verify_comp(&m, owner(&m, comp)).is_ok());
        assert!(verify_get_comp(&m, owner(&m, looked)).is_ok());
        assert!(verify_create_connection(&m, owner(&m, conn)).is_ok());
        assert_eq!(*m.value_type(looked), Type::Dma);
    }

    #[test]
    fn data_movement_builders_and_views() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let mem = b.create_mem(kinds::SRAM, &[4096], 32, 4);
        let conn = b.create_connection(ConnKind::Streaming, 32);
        let buf0 = b.alloc(mem, &[64], Type::I32);
        let buf1 = b.alloc(mem, &[64], Type::I32);
        let data = b.read(buf0, Some(conn));
        b.write(data, buf1, Some(conn));
        b.dealloc(buf0);

        assert_eq!(*m.value_type(buf0), Type::buffer(vec![64], Type::I32));
        assert_eq!(*m.value_type(data), Type::tensor(vec![64], Type::I32));

        let read = m.find_first("equeue.read").unwrap();
        let rv = read_view(&m, read).unwrap();
        assert_eq!(rv.buffer, buf0);
        assert_eq!(rv.conn, Some(conn));
        assert!(rv.indices.is_empty());
        assert!(verify_read(&m, read).is_ok());

        let write = m.find_first("equeue.write").unwrap();
        let wv = write_view(&m, write).unwrap();
        assert_eq!(wv.value, data);
        assert_eq!(wv.buffer, buf1);
        assert!(verify_write(&m, write).is_ok());
    }

    #[test]
    fn indexed_reads_have_scalar_results() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 1);
        let buf = b.alloc(mem, &[8, 8], Type::I32);
        let zero = b
            .op("arith.constant")
            .attr("value", 0i64)
            .result(Type::Index)
            .finish_value();
        let v = b.read_indexed(buf, vec![zero, zero], None);
        assert_eq!(*m.value_type(v), Type::I32);
        let read = m.find_first("equeue.read").unwrap();
        assert_eq!(read_view(&m, read).unwrap().indices.len(), 2);
        assert!(verify_read(&m, read).is_ok());
    }

    #[test]
    fn single_element_buffer_reads_scalar() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let mem = b.create_mem(kinds::REGISTER, &[4], 32, 1);
        let buf = b.alloc(mem, &[1], Type::I32);
        let v = b.read(buf, None);
        assert_eq!(*m.value_type(v), Type::I32);
    }

    #[test]
    fn memcpy_builder_and_view() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let mem = b.create_mem(kinds::SRAM, &[4096], 32, 4);
        let buf0 = b.alloc(mem, &[64], Type::I32);
        let buf1 = b.alloc(mem, &[64], Type::I32);
        let dma = b.create_dma();
        let start = b.control_start();
        let done = b.memcpy(start, buf0, buf1, dma, None);
        assert_eq!(*m.value_type(done), Type::Signal);
        let mc = m.find_first("equeue.memcpy").unwrap();
        let v = memcpy_view(&m, mc).unwrap();
        assert_eq!(
            (v.dep, v.src, v.dst, v.dma, v.conn),
            (start, buf0, buf1, dma, None)
        );
        assert!(verify_memcpy(&m, mc).is_ok());
    }

    #[test]
    fn launch_with_captures_and_results() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let proc = b.create_proc(kinds::MAC);
        let mem = b.create_mem(kinds::REGISTER, &[4], 32, 1);
        let buf = b.alloc(mem, &[1], Type::I32);
        let start = b.control_start();
        let parts = b.launch(start, proc, &[buf], vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), parts.body);
            let v = ib.read(parts.body_args[0], None);
            ib.ret(vec![v]);
        }
        let lv = launch_view(&m, parts.op).unwrap();
        assert_eq!(lv.captures, vec![buf]);
        assert_eq!(lv.results.len(), 1);
        assert!(
            verify_launch(&m, parts.op).is_ok(),
            "{:?}",
            verify_launch(&m, parts.op)
        );
    }

    #[test]
    fn launch_verifier_catches_missing_return() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let proc = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let parts = b.launch(start, proc, &[], vec![]);
        assert!(verify_launch(&m, parts.op)
            .unwrap_err()
            .contains("equeue.return"));
    }

    #[test]
    fn launch_verifier_catches_result_mismatch() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let proc = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let parts = b.launch(start, proc, &[], vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), parts.body);
            ib.ret(vec![]);
        }
        assert!(verify_launch(&m, parts.op).unwrap_err().contains("yields"));
    }

    #[test]
    fn control_ops() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let s1 = b.control_start();
        let s2 = b.control_start();
        let both = b.control_and(vec![s1, s2]);
        let either = b.control_or(vec![s1, s2]);
        b.await_all(vec![both, either]);
        for name in [
            "equeue.control_start",
            "equeue.control_and",
            "equeue.control_or",
        ] {
            let op = m.find_first(name).unwrap();
            assert!(verify_control(&m, op).is_ok(), "{name}");
        }
        let aw = m.find_first("equeue.await").unwrap();
        assert!(verify_await(&m, aw).is_ok());
    }

    #[test]
    fn ext_op_signature() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let op = b.ext_op("mac4", vec![], vec![]);
        assert!(verify_ext_op(&m, op).is_ok());
        assert_eq!(m.op(op).attrs.str("signature"), Some("mac4"));
        let bad = m.create_op("equeue.op", vec![], vec![], Default::default(), vec![]);
        m.append_op(m.top_block(), bad);
        assert!(verify_ext_op(&m, bad).is_err());
    }

    #[test]
    fn conn_kind_round_trip() {
        assert_eq!(ConnKind::from_str("Streaming"), Some(ConnKind::Streaming));
        assert_eq!(ConnKind::from_str("Window"), Some(ConnKind::Window));
        assert_eq!(ConnKind::from_str("Bus"), None);
        assert_eq!(ConnKind::Window.as_str(), "Window");
    }
}
