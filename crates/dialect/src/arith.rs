//! The `arith` dialect: scalar integer/float arithmetic.
//!
//! These ops mirror MLIR's standard arithmetic dialect; the paper's EQueue
//! programs intermix them freely with hardware ops (e.g. the `addi` inside a
//! `launch` block in Fig. 2a).

use equeue_ir::{Module, OpBuilder, OpId, Type, ValueId};

/// Comparison predicates for [`ArithBuilder::cmpi`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpPred {
    /// The attribute spelling (`"eq"`, `"lt"`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Lt => "lt",
            CmpPred::Le => "le",
            CmpPred::Gt => "gt",
            CmpPred::Ge => "ge",
        }
    }

    /// Parses the attribute spelling back into a predicate.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "eq" => CmpPred::Eq,
            "ne" => CmpPred::Ne,
            "lt" => CmpPred::Lt,
            "le" => CmpPred::Le,
            "gt" => CmpPred::Gt,
            "ge" => CmpPred::Ge,
            _ => return None,
        })
    }
}

/// Fluent constructors for `arith` ops, as an extension of [`OpBuilder`].
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type};
/// use equeue_dialect::ArithBuilder;
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let x = b.const_int(2, Type::I32);
/// let y = b.const_int(3, Type::I32);
/// let s = b.addi(x, y);
/// assert_eq!(*b.module().value_type(s), Type::I32);
/// ```
pub trait ArithBuilder {
    /// `arith.constant` with an integer value of type `ty`.
    fn const_int(&mut self, value: i64, ty: Type) -> ValueId;
    /// `arith.constant` with an `index` value.
    fn const_index(&mut self, value: i64) -> ValueId;
    /// `arith.constant` with a float value of type `ty`.
    fn const_float(&mut self, value: f64, ty: Type) -> ValueId;
    /// Integer addition; result type follows `lhs`.
    fn addi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Integer subtraction.
    fn subi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Integer multiplication.
    fn muli(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Signed integer division.
    fn divi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Signed integer remainder.
    fn remi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Float addition.
    fn addf(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Float multiplication.
    fn mulf(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Integer comparison producing `i1`.
    fn cmpi(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId;
    /// Ternary select: `cond ? a : b`.
    fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId;
}

fn binary(b: &mut OpBuilder<'_>, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    // Element-wise broadcast: the result takes the shaped operand's type.
    let lt = b.module().value_type(lhs);
    let ty = if lt.is_shaped() || !b.module().value_type(rhs).is_shaped() {
        lt.clone()
    } else {
        b.module().value_type(rhs).clone()
    };
    b.op(name)
        .operand(lhs)
        .operand(rhs)
        .result(ty)
        .finish_value()
}

impl ArithBuilder for OpBuilder<'_> {
    fn const_int(&mut self, value: i64, ty: Type) -> ValueId {
        self.op("arith.constant")
            .attr("value", value)
            .result(ty)
            .finish_value()
    }

    fn const_index(&mut self, value: i64) -> ValueId {
        self.const_int(value, Type::Index)
    }

    fn const_float(&mut self, value: f64, ty: Type) -> ValueId {
        self.op("arith.constant")
            .attr("value", value)
            .result(ty)
            .finish_value()
    }

    fn addi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.addi", lhs, rhs)
    }

    fn subi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.subi", lhs, rhs)
    }

    fn muli(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.muli", lhs, rhs)
    }

    fn divi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.divi", lhs, rhs)
    }

    fn remi(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.remi", lhs, rhs)
    }

    fn addf(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.addf", lhs, rhs)
    }

    fn mulf(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        binary(self, "arith.mulf", lhs, rhs)
    }

    fn cmpi(&mut self, pred: CmpPred, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.op("arith.cmpi")
            .attr("predicate", pred.as_str())
            .operand(lhs)
            .operand(rhs)
            .result(Type::I1)
            .finish_value()
    }

    fn select(&mut self, cond: ValueId, a: ValueId, b: ValueId) -> ValueId {
        let ty = self.module().value_type(a).clone();
        self.op("arith.select")
            .operand(cond)
            .operand(a)
            .operand(b)
            .result(ty)
            .finish_value()
    }
}

// ---- verifiers -----------------------------------------------------------

/// Verifies `arith.constant`: needs a `value` attribute and one result.
pub fn verify_constant(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if !data.attrs.contains("value") {
        return Err("arith.constant needs a 'value' attribute".into());
    }
    if data.results.len() != 1 {
        return Err("arith.constant must have exactly one result".into());
    }
    Ok(())
}

/// Verifies binary arith ops: two operands of equal type — or a
/// shaped/scalar pair whose element type matches (element-wise broadcast,
/// as in the paper's `ofmap = addi(ifmap, 4)`) — and one result matching
/// the wider operand.
pub fn verify_binary(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.len() != 2 {
        return Err(format!("'{}' needs exactly two operands", data.name));
    }
    let lt = m.value_type(data.operands[0]);
    let rt = m.value_type(data.operands[1]);
    let wider = match (lt.is_shaped(), rt.is_shaped()) {
        (false, false) | (true, true) => {
            if !lt.matches(rt) {
                return Err(format!(
                    "'{}' operand types differ: {lt} vs {rt}",
                    data.name
                ));
            }
            lt
        }
        (true, false) => {
            if !lt.elem().is_some_and(|e| e.matches(rt)) {
                return Err(format!(
                    "'{}' cannot broadcast {rt} over {lt} (element mismatch)",
                    data.name
                ));
            }
            lt
        }
        (false, true) => {
            if !rt.elem().is_some_and(|e| e.matches(lt)) {
                return Err(format!(
                    "'{}' cannot broadcast {lt} over {rt} (element mismatch)",
                    data.name
                ));
            }
            rt
        }
    };
    if data.results.len() != 1 {
        return Err(format!("'{}' must have exactly one result", data.name));
    }
    let res = m.value_type(data.results[0]);
    if !res.matches(wider) {
        return Err(format!(
            "'{}' result type {res} does not match operands {wider}",
            data.name
        ));
    }
    Ok(())
}

/// Verifies `arith.cmpi`: valid predicate, two operands, one `i1` result.
pub fn verify_cmpi(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let pred = data
        .attrs
        .str("predicate")
        .ok_or("arith.cmpi needs a 'predicate' attribute")?;
    if CmpPred::from_str(pred).is_none() {
        return Err(format!("unknown cmpi predicate '{pred}'"));
    }
    if data.operands.len() != 2 {
        return Err("arith.cmpi needs exactly two operands".into());
    }
    if data.results.len() != 1 || *m.value_type(data.results[0]) != Type::I1 {
        return Err("arith.cmpi must return i1".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_ir::Module;

    #[test]
    fn builders_produce_expected_ops() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let x = b.const_int(1, Type::I32);
        let y = b.const_int(2, Type::I32);
        let s = b.addi(x, y);
        let p = b.muli(s, y);
        let c = b.cmpi(CmpPred::Lt, s, p);
        let _sel = b.select(c, s, p);
        assert_eq!(m.find_all("arith.constant").len(), 2);
        assert_eq!(m.find_all("arith.addi").len(), 1);
        assert_eq!(m.find_all("arith.muli").len(), 1);
        let cmpi = m.find_first("arith.cmpi").unwrap();
        assert_eq!(m.op(cmpi).attrs.str("predicate"), Some("lt"));
    }

    #[test]
    fn predicates_round_trip() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Lt,
            CmpPred::Le,
            CmpPred::Gt,
            CmpPred::Ge,
        ] {
            assert_eq!(CmpPred::from_str(p.as_str()), Some(p));
        }
        assert_eq!(CmpPred::from_str("bogus"), None);
    }

    #[test]
    fn verify_constant_rules() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let good = {
            let v = b.const_int(3, Type::I32);
            match m.value(v).def {
                equeue_ir::ValueDef::OpResult { op, .. } => op,
                _ => unreachable!(),
            }
        };
        assert!(verify_constant(&m, good).is_ok());
        let bad = m.create_op(
            "arith.constant",
            vec![],
            vec![Type::I32],
            Default::default(),
            vec![],
        );
        m.append_op(m.top_block(), bad);
        assert!(verify_constant(&m, bad).unwrap_err().contains("value"));
    }

    #[test]
    fn verify_binary_rules() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let x = b.const_int(1, Type::I32);
        let y = b.const_int(2, Type::I64);
        // Manually construct a mismatched addi.
        let bad = m.create_op(
            "arith.addi",
            vec![x, y],
            vec![Type::I32],
            Default::default(),
            vec![],
        );
        m.append_op(m.top_block(), bad);
        assert!(verify_binary(&m, bad).unwrap_err().contains("differ"));
    }

    #[test]
    fn verify_cmpi_rules() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let x = b.const_int(1, Type::I32);
        let bad = m.create_op(
            "arith.cmpi",
            vec![x, x],
            vec![Type::I32],
            Default::default(),
            vec![],
        );
        m.append_op(m.top_block(), bad);
        assert!(verify_cmpi(&m, bad).is_err());
    }
}
