//! The `affine` dialect subset: explicit loop nests over memrefs.
//!
//! The paper's lowering pipeline (§VI-D) lowers Linalg convolutions into
//! affine loop nests (`affine.for`, `affine.parallel`) with explicit
//! `affine.load`/`affine.store`, which the `--equeue-read-write` pass then
//! rewrites into EQueue data movement. A small `memref.alloc` op provides
//! buffers at this level.

use equeue_ir::{BlockId, Module, OpBuilder, OpId, Type, ValueId};

/// Fluent constructors for `affine` (and `memref`) ops.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type};
/// use equeue_dialect::{AffineBuilder, ArithBuilder};
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let buf = b.memref_alloc(Type::memref(vec![8], Type::I32));
/// let (for_op, body, iv) = b.affine_for(0, 8, 1);
/// let mut ib = OpBuilder::at_end(b.module_mut(), body);
/// let c = ib.const_int(7, Type::I32);
/// ib.affine_store(c, buf, vec![iv]);
/// ib.affine_yield();
/// assert_eq!(b.module().op(for_op).attrs.int("upper"), Some(8));
/// ```
pub trait AffineBuilder {
    /// `memref.alloc` producing a memref of type `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a `memref`.
    fn memref_alloc(&mut self, ty: Type) -> ValueId;

    /// `memref.dealloc` releasing `memref`.
    fn memref_dealloc(&mut self, memref: ValueId);

    /// `affine.for lower..upper step step`: returns the op, its body block,
    /// and the induction variable.
    fn affine_for(&mut self, lower: i64, upper: i64, step: i64) -> (OpId, BlockId, ValueId);

    /// `affine.parallel` over a multi-dimensional iteration space; returns
    /// the op, its body block, and the induction variables.
    fn affine_parallel(
        &mut self,
        lowers: Vec<i64>,
        uppers: Vec<i64>,
        steps: Vec<i64>,
    ) -> (OpId, BlockId, Vec<ValueId>);

    /// `affine.load memref[indices]`; result is the memref element type.
    fn affine_load(&mut self, memref: ValueId, indices: Vec<ValueId>) -> ValueId;

    /// `affine.store value, memref[indices]`.
    fn affine_store(&mut self, value: ValueId, memref: ValueId, indices: Vec<ValueId>);

    /// `affine.yield` terminating a loop body.
    fn affine_yield(&mut self);
}

impl AffineBuilder for OpBuilder<'_> {
    fn memref_alloc(&mut self, ty: Type) -> ValueId {
        assert!(
            matches!(ty, Type::MemRef { .. }),
            "memref.alloc needs a memref type"
        );
        self.op("memref.alloc").result(ty).finish_value()
    }

    fn memref_dealloc(&mut self, memref: ValueId) {
        self.op("memref.dealloc").operand(memref).finish();
    }

    fn affine_for(&mut self, lower: i64, upper: i64, step: i64) -> (OpId, BlockId, ValueId) {
        let (region, body) = self.region_with_block(vec![Type::Index]);
        let iv = self.module().block(body).args[0];
        let op = self
            .op("affine.for")
            .attr("lower", lower)
            .attr("upper", upper)
            .attr("step", step)
            .region(region)
            .finish();
        (op, body, iv)
    }

    fn affine_parallel(
        &mut self,
        lowers: Vec<i64>,
        uppers: Vec<i64>,
        steps: Vec<i64>,
    ) -> (OpId, BlockId, Vec<ValueId>) {
        assert_eq!(lowers.len(), uppers.len());
        assert_eq!(lowers.len(), steps.len());
        let (region, body) = self.region_with_block(vec![Type::Index; lowers.len()]);
        let ivs = self.module().block(body).args.clone();
        let op = self
            .op("affine.parallel")
            .attr("lowers", lowers)
            .attr("uppers", uppers)
            .attr("steps", steps)
            .region(region)
            .finish();
        (op, body, ivs)
    }

    fn affine_load(&mut self, memref: ValueId, indices: Vec<ValueId>) -> ValueId {
        let elem = match self.module().value_type(memref).elem() {
            Some(e) => e.clone(),
            None => panic!("affine.load needs a shaped operand"),
        };
        self.op("affine.load")
            .operand(memref)
            .operands(indices)
            .result(elem)
            .finish_value()
    }

    fn affine_store(&mut self, value: ValueId, memref: ValueId, indices: Vec<ValueId>) {
        self.op("affine.store")
            .operand(value)
            .operand(memref)
            .operands(indices)
            .finish();
    }

    fn affine_yield(&mut self) {
        self.op("affine.yield").finish();
    }
}

// ---- verifiers -----------------------------------------------------------

/// Verifies `affine.for`: bound attributes, a single region whose entry
/// block takes one `index` argument.
pub fn verify_for(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    for key in ["lower", "upper", "step"] {
        if data.attrs.int(key).is_none() {
            return Err(format!("affine.for needs integer attribute '{key}'"));
        }
    }
    if data.attrs.int("step") == Some(0) {
        return Err("affine.for step must be non-zero".into());
    }
    if data.regions.len() != 1 {
        return Err("affine.for needs exactly one region".into());
    }
    let entry = m.region(data.regions[0]).blocks[0];
    let args = &m.block(entry).args;
    if args.len() != 1 || *m.value_type(args[0]) != Type::Index {
        return Err("affine.for body must take a single index argument".into());
    }
    Ok(())
}

/// Verifies `affine.parallel`: equal-length bound arrays and matching
/// index block arguments.
pub fn verify_parallel(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    let lowers = data
        .attrs
        .int_array("lowers")
        .ok_or("affine.parallel needs 'lowers'")?;
    let uppers = data
        .attrs
        .int_array("uppers")
        .ok_or("affine.parallel needs 'uppers'")?;
    let steps = data
        .attrs
        .int_array("steps")
        .ok_or("affine.parallel needs 'steps'")?;
    if lowers.len() != uppers.len() || lowers.len() != steps.len() {
        return Err("affine.parallel bound arrays must have equal length".into());
    }
    if data.regions.len() != 1 {
        return Err("affine.parallel needs exactly one region".into());
    }
    let entry = m.region(data.regions[0]).blocks[0];
    let args = &m.block(entry).args;
    if args.len() != lowers.len() {
        return Err(format!(
            "affine.parallel body takes {} arguments but bounds describe {} dims",
            args.len(),
            lowers.len()
        ));
    }
    Ok(())
}

/// Verifies `affine.load`: a shaped first operand, index subscripts matching
/// its rank, and an element-typed result.
pub fn verify_load(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.is_empty() {
        return Err("affine.load needs a memref operand".into());
    }
    let mt = m.value_type(data.operands[0]);
    let shape = mt
        .shape()
        .ok_or_else(|| format!("affine.load operand is not shaped: {mt}"))?;
    let n_idx = data.operands.len() - 1;
    if n_idx != shape.len() {
        return Err(format!(
            "affine.load has {n_idx} subscripts for rank-{} memref",
            shape.len()
        ));
    }
    for &idx in &data.operands[1..] {
        if *m.value_type(idx) != Type::Index {
            return Err("affine.load subscripts must be index-typed".into());
        }
    }
    if data.results.len() != 1
        || !mt
            .elem()
            .is_some_and(|e| m.value_type(data.results[0]).matches(e))
    {
        return Err("affine.load result must match the element type".into());
    }
    Ok(())
}

/// Verifies `affine.store`: value, shaped target, and rank-matching
/// subscripts.
pub fn verify_store(m: &Module, op: OpId) -> Result<(), String> {
    let data = m.op(op);
    if data.operands.len() < 2 {
        return Err("affine.store needs a value and a memref operand".into());
    }
    let mt = m.value_type(data.operands[1]);
    let shape = mt
        .shape()
        .ok_or_else(|| format!("affine.store target is not shaped: {mt}"))?;
    let n_idx = data.operands.len() - 2;
    if n_idx != shape.len() {
        return Err(format!(
            "affine.store has {n_idx} subscripts for rank-{} memref",
            shape.len()
        ));
    }
    if !mt
        .elem()
        .is_some_and(|e| m.value_type(data.operands[0]).matches(e))
    {
        return Err("affine.store value must match the element type".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::ArithBuilder;

    #[test]
    fn loop_construction() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let buf = b.memref_alloc(Type::memref(vec![4, 4], Type::I32));
        let (f, body, iv) = b.affine_for(0, 4, 1);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), body);
            let v = ib.affine_load(buf, vec![iv, iv]);
            ib.affine_store(v, buf, vec![iv, iv]);
            ib.affine_yield();
        }
        assert!(verify_for(&m, f).is_ok());
        let load = m.find_first("affine.load").unwrap();
        assert!(verify_load(&m, load).is_ok());
        let store = m.find_first("affine.store").unwrap();
        assert!(verify_store(&m, store).is_ok());
    }

    #[test]
    fn parallel_construction() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let (p, body, ivs) = b.affine_parallel(vec![0, 0], vec![4, 8], vec![1, 1]);
        assert_eq!(ivs.len(), 2);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), body);
            ib.affine_yield();
        }
        assert!(verify_parallel(&m, p).is_ok());
    }

    #[test]
    fn for_verifier_rejects_zero_step() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let (f, _, _) = b.affine_for(0, 4, 1);
        m.op_mut(f).attrs.set("step", 0i64);
        assert!(verify_for(&m, f).unwrap_err().contains("non-zero"));
    }

    #[test]
    fn load_verifier_rejects_rank_mismatch() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let buf = b.memref_alloc(Type::memref(vec![4, 4], Type::I32));
        let i = b.const_index(0);
        let bad = m.create_op(
            "affine.load",
            vec![buf, i],
            vec![Type::I32],
            Default::default(),
            vec![],
        );
        m.append_op(m.top_block(), bad);
        assert!(verify_load(&m, bad).unwrap_err().contains("subscripts"));
    }

    #[test]
    fn store_verifier_rejects_type_mismatch() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let buf = b.memref_alloc(Type::memref(vec![2], Type::I32));
        let i = b.const_index(0);
        let v = b.const_float(1.0, Type::F32);
        let bad = m.create_op(
            "affine.store",
            vec![v, buf, i],
            vec![],
            Default::default(),
            vec![],
        );
        m.append_op(m.top_block(), bad);
        assert!(verify_store(&m, bad).unwrap_err().contains("element type"));
    }

    #[test]
    #[should_panic(expected = "memref.alloc needs a memref type")]
    fn alloc_rejects_non_memref() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.memref_alloc(Type::I32);
    }
}
