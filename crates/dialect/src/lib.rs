//! # equeue-dialect — dialect definitions for the EQueue stack
//!
//! Four dialects, mirroring the ones the paper's lowering pipeline uses
//! (Fig. 1):
//!
//! * [`arith`] — scalar arithmetic mixed into launch blocks;
//! * [`affine`] — explicit loop nests with loads/stores (plus a tiny
//!   `memref` allocation op);
//! * [`linalg`] — whole-tensor named ops, the highest abstraction level;
//! * [`equeue`] — the paper's contribution: hardware structure, explicit
//!   data movement, and distributed event-based control.
//!
//! Each dialect contributes fluent builder extension traits
//! ([`ArithBuilder`], [`AffineBuilder`], [`LinalgBuilder`],
//! [`EqueueBuilder`]) over [`equeue_ir::OpBuilder`], per-op verifiers, and
//! registration into an [`equeue_ir::DialectRegistry`] via
//! [`standard_registry`].
//!
//! ## Example
//!
//! ```
//! use equeue_ir::{Module, OpBuilder, Type, verify_module};
//! use equeue_dialect::{standard_registry, EqueueBuilder, kinds};
//!
//! let mut m = Module::new();
//! let blk = m.top_block();
//! let mut b = OpBuilder::at_end(&mut m, blk);
//! let pe = b.create_proc(kinds::MAC);
//! let start = b.control_start();
//! let launch = b.launch(start, pe, &[], vec![]);
//! let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
//! body.ret(vec![]);
//! verify_module(&m, &standard_registry())?;
//! # Ok::<(), equeue_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod affine;
pub mod arith;
pub mod equeue;
pub mod linalg;
mod registry;

pub use affine::AffineBuilder;
pub use arith::{ArithBuilder, CmpPred};
pub use equeue::{
    kinds, launch_view, memcpy_view, read_view, write_view, ConnKind, EqueueBuilder, LaunchParts,
    LaunchView, MemcpyView, ReadView, WriteView,
};
pub use linalg::{conv2d_dims, ConvDims, LinalgBuilder};
pub use registry::{register_into, standard_registry};
