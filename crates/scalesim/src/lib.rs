//! # scalesim — an analytical SCALE-Sim-style systolic-array baseline
//!
//! A Rust reimplementation of the first-order timing model of
//! SCALE-Sim (Samajdar et al., arXiv:1811.02883), the validated custom
//! simulator the paper compares against in §VI-C / Fig. 9. It models an
//! `Ah×Aw` systolic array running a convolution under the three classic
//! dataflows (§VI-A):
//!
//! * **WS** — weights stationary: rows host the `Fh·Fw·C` filter elements,
//!   columns host the `N` filters, and `Eh·Ew` ifmap pixels stream through;
//! * **IS** — inputs stationary: rows host filter elements, columns host
//!   `Eh·Ew` ifmap patches, and `N` weights stream through;
//! * **OS** — outputs stationary: rows host `Eh·Ew` ofmap pixels, columns
//!   host `N` filters, and `Fh·Fw·C` operand pairs stream through.
//!
//! When the mapped dimensions exceed the array, the work *folds*:
//! `Fr = ⌈D1/Ah⌉` by `Fc = ⌈D2/Aw⌉` passes. Each pass costs a stationary
//! load (`⌈ru·cu/Aw⌉` cycles) plus a pipelined stream
//! (`S + ru + cu − 1` cycles of fill, stream, and drain, with `S` doubled
//! for OS where both operands stream).
//!
//! The model also reports first-order SRAM traffic so average bandwidths
//! can be compared against the EQueue simulation (Fig. 9b/d).
//!
//! ## Example
//!
//! ```
//! use scalesim::{scale_sim, ArrayShape, ConvShape, Dataflow};
//! let r = scale_sim(
//!     ArrayShape { rows: 4, cols: 4 },
//!     ConvShape { h: 8, w: 8, fh: 2, fw: 2, c: 3, n: 1 },
//!     Dataflow::Ws,
//! );
//! assert!(r.cycles > 0);
//! assert_eq!(r.folds, (3, 1)); // ⌈12/4⌉ × ⌈1/4⌉
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

/// Systolic array dimensions (`Ah × Aw` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArrayShape {
    /// Rows (`Ah`).
    pub rows: usize,
    /// Columns (`Aw`).
    pub cols: usize,
}

/// Convolution problem shape (paper §VI-A notation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Filter height.
    pub fh: usize,
    /// Filter width.
    pub fw: usize,
    /// Channels.
    pub c: usize,
    /// Filter count.
    pub n: usize,
}

impl ConvShape {
    /// A square convolution.
    pub fn square(hw: usize, f: usize, c: usize, n: usize) -> Self {
        ConvShape {
            h: hw,
            w: hw,
            fh: f,
            fw: f,
            c,
            n,
        }
    }

    /// Output height `Eh`.
    pub fn eh(&self) -> usize {
        self.h - self.fh + 1
    }

    /// Output width `Ew`.
    pub fn ew(&self) -> usize {
        self.w - self.fw + 1
    }

    /// Output pixels `E = Eh·Ew`.
    pub fn e(&self) -> usize {
        self.eh() * self.ew()
    }

    /// Filter elements `K = Fh·Fw·C`.
    pub fn k(&self) -> usize {
        self.fh * self.fw * self.c
    }

    /// Whether the filter fits in the input.
    pub fn valid(&self) -> bool {
        self.fh <= self.h && self.fw <= self.w
    }
}

/// The three dataflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataflow {
    /// Weight stationary.
    Ws,
    /// Input stationary.
    Is,
    /// Output stationary.
    Os,
}

impl Dataflow {
    /// Paper spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Dataflow::Ws => "WS",
            Dataflow::Is => "IS",
            Dataflow::Os => "OS",
        }
    }

    /// All three.
    pub fn all() -> [Dataflow; 3] {
        [Dataflow::Ws, Dataflow::Is, Dataflow::Os]
    }
}

/// The mapping of a convolution onto the array for one dataflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mapping {
    /// Dimension mapped on rows (`D1`).
    pub d1: usize,
    /// Dimension mapped on columns (`D2`).
    pub d2: usize,
    /// Elements streamed through per pass.
    pub stream: usize,
    /// Whether two operands stream together (OS).
    pub double_stream: bool,
}

/// Computes the row/column/stream mapping for a dataflow (§VI-E's
/// `D1`, `D2` definitions).
pub fn mapping(conv: ConvShape, df: Dataflow) -> Mapping {
    match df {
        Dataflow::Ws => Mapping {
            d1: conv.k(),
            d2: conv.n,
            stream: conv.e(),
            double_stream: false,
        },
        Dataflow::Is => Mapping {
            d1: conv.k(),
            d2: conv.e(),
            stream: conv.n,
            double_stream: false,
        },
        Dataflow::Os => Mapping {
            d1: conv.n,
            d2: conv.k(),
            stream: conv.e(),
            double_stream: true,
        },
    }
}

/// Result of one analytical simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSimResult {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Fold counts `(Fr, Fc)`; their product is the paper's loop-iteration
    /// count `⌈D1/Ah⌉·⌈D2/Aw⌉` (Fig. 12c–e).
    pub folds: (usize, usize),
    /// Bytes of ifmap read from SRAM.
    pub ifmap_read_bytes: u64,
    /// Bytes of weights read from SRAM.
    pub weight_read_bytes: u64,
    /// Bytes of ofmap written to SRAM.
    pub ofmap_write_bytes: u64,
    /// Average SRAM ofmap write bandwidth, bytes/cycle (Fig. 9b/d).
    pub avg_ofmap_write_bw: f64,
    /// Average SRAM read bandwidth (ifmap + weights), bytes/cycle.
    pub avg_read_bw: f64,
    /// Array utilisation: MACs performed / (cycles × PEs).
    pub utilization: f64,
}

/// Bytes per data element (32-bit values throughout the evaluation).
pub const ELEM_BYTES: u64 = 4;

/// Runs the analytical model.
///
/// # Panics
///
/// Panics if the filter does not fit in the input or the array is empty.
pub fn scale_sim(array: ArrayShape, conv: ConvShape, df: Dataflow) -> ScaleSimResult {
    assert!(conv.valid(), "filter must fit in the input");
    assert!(array.rows > 0 && array.cols > 0, "array must be non-empty");
    let map = mapping(conv, df);
    let fr = map.d1.div_ceil(array.rows);
    let fc = map.d2.div_ceil(array.cols);

    let mut cycles = 0u64;
    let mut ifmap_read = 0u64;
    let mut weight_read = 0u64;
    let mut ofmap_write = 0u64;

    for fi in 0..fr {
        let ru = used(map.d1, array.rows, fi);
        for fj in 0..fc {
            let cu = used(map.d2, array.cols, fj);
            // Stationary load: ru×cu elements enter column-parallel.
            let load = (ru * cu).div_ceil(array.cols) as u64;
            // Stream with pipeline fill and drain. OS accumulates in
            // place and drains its ru outputs per column afterwards.
            let stream = if map.double_stream {
                2 * map.stream
            } else {
                map.stream
            } as u64;
            let drain = if map.double_stream { ru as u64 } else { 0 };
            let pass = stream + ru as u64 + cu as u64 - 1 + drain;
            cycles += load + pass;

            // First-order SRAM traffic per pass.
            match df {
                Dataflow::Ws => {
                    weight_read += (ru * cu) as u64 * ELEM_BYTES;
                    ifmap_read += (map.stream * ru) as u64 * ELEM_BYTES;
                    ofmap_write += (map.stream * cu) as u64 * ELEM_BYTES;
                }
                Dataflow::Is => {
                    ifmap_read += (ru * cu) as u64 * ELEM_BYTES;
                    weight_read += (map.stream * ru) as u64 * ELEM_BYTES;
                    ofmap_write += (map.stream * cu) as u64 * ELEM_BYTES;
                }
                Dataflow::Os => {
                    // Both ifmaps and weights stream in; outputs drain once.
                    ifmap_read += (map.stream * ru) as u64 * ELEM_BYTES;
                    weight_read += (map.stream * cu) as u64 * ELEM_BYTES;
                    ofmap_write += (ru * cu) as u64 * ELEM_BYTES;
                }
            }
        }
    }

    let total_macs = (conv.e() * conv.n * conv.k()) as f64;
    let pes = (array.rows * array.cols) as f64;
    ScaleSimResult {
        cycles,
        folds: (fr, fc),
        ifmap_read_bytes: ifmap_read,
        weight_read_bytes: weight_read,
        ofmap_write_bytes: ofmap_write,
        avg_ofmap_write_bw: ofmap_write as f64 / cycles.max(1) as f64,
        avg_read_bw: (ifmap_read + weight_read) as f64 / cycles.max(1) as f64,
        utilization: total_macs / (cycles.max(1) as f64 * pes),
    }
}

/// Rows/columns used in fold `index` of a dimension of size `dim` on an
/// array of `avail`.
fn used(dim: usize, avail: usize, index: usize) -> usize {
    let remaining = dim - index * avail;
    remaining.min(avail)
}

#[cfg(test)]
mod tests {
    use super::*;

    const A4: ArrayShape = ArrayShape { rows: 4, cols: 4 };

    #[test]
    fn mapping_dimensions_follow_the_paper() {
        let conv = ConvShape::square(8, 2, 3, 5);
        // K = 12, E = 49, N = 5.
        let ws = mapping(conv, Dataflow::Ws);
        assert_eq!((ws.d1, ws.d2, ws.stream), (12, 5, 49));
        let is = mapping(conv, Dataflow::Is);
        assert_eq!((is.d1, is.d2, is.stream), (12, 49, 5));
        let os = mapping(conv, Dataflow::Os);
        assert_eq!((os.d1, os.d2, os.stream), (5, 12, 49));
        assert!(os.double_stream);
    }

    #[test]
    fn fold_counts() {
        let conv = ConvShape::square(8, 2, 3, 5); // K=12, N=5
        let r = scale_sim(A4, conv, Dataflow::Ws);
        assert_eq!(r.folds, (3, 2));
        let r = scale_sim(ArrayShape { rows: 16, cols: 8 }, conv, Dataflow::Ws);
        assert_eq!(r.folds, (1, 1));
    }

    #[test]
    fn single_fold_cycle_formula() {
        // K=4 fits rows, N=4 fits cols: one fold.
        let conv = ConvShape {
            h: 5,
            w: 5,
            fh: 2,
            fw: 2,
            c: 1,
            n: 4,
        };
        let r = scale_sim(A4, conv, Dataflow::Ws);
        // load = ceil(4*4/4) = 4; stream = E = 16; pass = 16+4+4-1 = 23.
        assert_eq!(r.cycles, 4 + 23);
    }

    #[test]
    fn os_streams_twice_and_drains() {
        let conv = ConvShape {
            h: 5,
            w: 5,
            fh: 2,
            fw: 2,
            c: 1,
            n: 4,
        };
        // OS: d1 = N = 4, d2 = K = 4, stream = E = 16 doubled, plus a
        // 4-cycle output drain.
        let r = scale_sim(A4, conv, Dataflow::Os);
        assert_eq!(r.cycles, 4 + 2 * 16 + 4 + 4 - 1 + 4);
    }

    #[test]
    fn cycles_grow_with_ifmap() {
        let mut last = 0;
        for hw in [4, 8, 16, 32] {
            let r = scale_sim(A4, ConvShape::square(hw, 2, 3, 1), Dataflow::Ws);
            assert!(r.cycles > last, "hw={hw}");
            last = r.cycles;
        }
    }

    #[test]
    fn ws_has_lowest_read_bandwidth() {
        // The paper's Fig. 12b observation: OS has the highest read
        // bandwidth overhead, WS the least.
        let conv = ConvShape::square(16, 3, 3, 8);
        let ws = scale_sim(A4, conv, Dataflow::Ws);
        let os = scale_sim(A4, conv, Dataflow::Os);
        assert!(ws.avg_read_bw < os.avg_read_bw);
    }

    #[test]
    fn os_shortest_runtime_on_skinny_arrays() {
        // Fig. 12a observation: OS attains the shortest cycle counts in
        // part of the sweep. Under the paper's OS mapping (D1 = N,
        // D2 = Fh·Fw·C), that happens on tall-K, small-N problems mapped
        // to short-and-wide arrays, where WS folds K over the rows but OS
        // does not.
        let array = ArrayShape { rows: 2, cols: 32 };
        let conv = ConvShape {
            h: 7,
            w: 7,
            fh: 4,
            fw: 4,
            c: 3,
            n: 2,
        }; // K=48
        let ws = scale_sim(array, conv, Dataflow::Ws);
        let os = scale_sim(array, conv, Dataflow::Os);
        assert!(os.cycles < ws.cycles, "os={} ws={}", os.cycles, ws.cycles);
    }

    #[test]
    fn utilization_bounded() {
        for df in Dataflow::all() {
            let r = scale_sim(A4, ConvShape::square(8, 2, 3, 4), df);
            assert!(r.utilization > 0.0 && r.utilization <= 1.0, "{df:?}");
        }
    }

    #[test]
    fn traffic_accounting_ws() {
        // One fold: weights ru*cu once, ifmap E*ru, ofmap E*cu.
        let conv = ConvShape {
            h: 5,
            w: 5,
            fh: 2,
            fw: 2,
            c: 1,
            n: 4,
        };
        let r = scale_sim(A4, conv, Dataflow::Ws);
        assert_eq!(r.weight_read_bytes, 16 * ELEM_BYTES);
        assert_eq!(r.ifmap_read_bytes, (16 * 4) as u64 * ELEM_BYTES);
        assert_eq!(r.ofmap_write_bytes, (16 * 4) as u64 * ELEM_BYTES);
    }

    #[test]
    #[should_panic(expected = "filter must fit")]
    fn rejects_oversized_filter() {
        scale_sim(A4, ConvShape::square(2, 3, 1, 1), Dataflow::Ws);
    }

    #[test]
    fn loop_iteration_rule_matches_folds() {
        // Fig. 12c–e: iterations = ⌈D1/Ah⌉ × ⌈D2/Aw⌉.
        for df in Dataflow::all() {
            for ah in [2usize, 4, 8] {
                let array = ArrayShape {
                    rows: ah,
                    cols: 64 / ah,
                };
                let conv = ConvShape::square(8, 2, 4, 8);
                let m = mapping(conv, df);
                let r = scale_sim(array, conv, df);
                assert_eq!(
                    r.folds.0 * r.folds.1,
                    m.d1.div_ceil(array.rows) * m.d2.div_ceil(array.cols)
                );
            }
        }
    }
}
