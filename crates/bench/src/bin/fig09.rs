//! Regenerates Fig. 9: EQueue vs SCALE-Sim on a 4×4 WS systolic array —
//! cycles and average SRAM ofmap write bandwidth, for an ifmap sweep
//! (fixed 2×2×3 weights) and a filter sweep (fixed 32×32 ifmap).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue_bench::{fig09_ifmap_sweep, fig09_weight_sweep, Fig09Row};

fn print_table(title: &str, rows: &[Fig09Row]) {
    println!("\n== {title} ==");
    println!(
        "{:>8} | {:>12} {:>12} {:>7} | {:>10} {:>10} | {:>10}",
        "sweep", "SCALE-Sim", "EQueue", "err", "SS BW", "EQ BW", "EQ time"
    );
    println!("{}", "-".repeat(84));
    for r in rows {
        println!(
            "{:>8} | {:>12} {:>12} {:>6.2}% | {:>10.3} {:>10.3} | {:>8.1?}",
            r.label,
            r.scalesim_cycles,
            r.equeue_cycles,
            100.0 * r.cycle_error(),
            r.scalesim_ofmap_bw,
            r.equeue_ofmap_bw,
            r.equeue_time,
        );
    }
}

fn main() {
    println!("Fig. 9 — comparing EQueue simulation with SCALE-Sim (4x4 WS array)");
    let a = fig09_ifmap_sweep();
    print_table("Fig. 9a/9b: ifmap sweep, weights fixed 2x2x3", &a);
    let c = fig09_weight_sweep();
    print_table("Fig. 9c/9d: filter sweep, ifmap fixed 32x32", &c);

    let worst = a
        .iter()
        .chain(&c)
        .map(Fig09Row::cycle_error)
        .fold(0.0f64, f64::max);
    println!(
        "\nworst-case cycle disagreement: {:.2}% (paper reports a match)",
        worst * 100.0
    );
}
