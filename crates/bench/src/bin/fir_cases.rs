//! Regenerates the §VII AI Engine FIR case study: the four design
//! iterations with their cycle counts compared against the paper's EQueue
//! results and the published Xilinx AIE simulator numbers, plus the Chrome
//! trace JSON files behind Figs. 13 and 14.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue_bench::fir_rows;
use std::fs;

fn main() {
    println!("§VII — ACAP AI Engine FIR case study (32 taps, 512 samples)");
    println!(
        "{:>28} | {:>9} {:>9} {:>9} | {:>10}",
        "case", "EQueue", "paper-EQ", "Xilinx", "exec time"
    );
    println!("{}", "-".repeat(76));
    let rows = fir_rows();
    for r in &rows {
        println!(
            "{:>28} | {:>9} {:>9} {:>9} | {:>8.1?}",
            r.case.as_str(),
            r.cycles,
            r.paper_cycles,
            r.xilinx_cycles
                .map(|c| c.to_string())
                .unwrap_or_else(|| "-".into()),
            r.execution_time,
        );
    }

    // Emit the visualisable traces (open in chrome://tracing or Perfetto).
    let out_dir = std::path::Path::new("target/traces");
    if let Err(e) = fs::create_dir_all(out_dir) {
        panic!("create target/traces: {e}");
    }
    for r in &rows {
        let path = out_dir.join(format!("fir_{}.json", r.case.as_str()));
        if let Err(e) = fs::write(&path, &r.trace_json) {
            panic!("write {}: {e}", path.display());
        }
        println!("trace written: {}", path.display());
    }
    println!(
        "\nFig. 13's stall pattern (3 of 4 cycles idle) is visible in \
         fir_case3-16-cores-32bit.json;\nFig. 14's stall-free steady state in \
         fir_case4-4-cores-balanced.json."
    );
}
