//! Regenerates Fig. 11: execution time, simulated cycles, and SRAM/register
//! bandwidth along the four lowering stages (Linalg, Affine, Reassign,
//! Systolic) for H=W ∈ {4, 8, 16, 32}, Fh=Fw=3, C=3, N=4 on a 4×4 array.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue_bench::fig11_rows;

fn main() {
    println!("Fig. 11 — metrics along the lowering pipeline (4x4 array, F=3, C=3, N=4)");
    let sizes = [4usize, 8, 16, 32];
    let rows = fig11_rows(&sizes);
    println!(
        "{:>4} {:>9} {:>3} | {:>11} {:>10} | {:>9} {:>9} | {:>9} {:>9}",
        "H/W", "stage", "df", "exec time", "cycles", "SRAM rd", "SRAM wr", "Reg rd", "Reg wr"
    );
    println!("{}", "-".repeat(92));
    for r in &rows {
        println!(
            "{:>4} {:>9} {:>3} | {:>9.1?} {:>10} | {:>9.3} {:>9.3} | {:>9.3} {:>9.3}",
            r.hw,
            r.stage.as_str(),
            r.dataflow.as_str(),
            r.execution_time,
            r.cycles,
            r.sram_read_bw,
            r.sram_write_bw,
            r.reg_read_bw,
            r.reg_write_bw,
        );
    }

    // The headline shapes the paper calls out.
    println!("\nshape checks (paper §VI-D):");
    for &hw in &sizes {
        let of = |stage| {
            let found = rows
                .iter()
                .find(|r| r.hw == hw && r.stage.as_str() == stage && r.dataflow.as_str() == "WS");
            match found {
                Some(r) => r,
                None => unreachable!("the sweep above produced every (size, stage) row"),
            }
        };
        let (l, a, re, s) = (of("Linalg"), of("Affine"), of("Reassign"), of("Systolic"));
        println!(
            "  H/W={hw:>2}: cycles {} > {} > {} > {} (falling {}), \
             SRAM rd BW {:.2} -> {:.2} -> {:.2} (grow then fall {}), reg BW appears at Reassign: {}",
            l.cycles,
            a.cycles,
            re.cycles,
            s.cycles,
            l.cycles > a.cycles && a.cycles > re.cycles && re.cycles > s.cycles,
            l.sram_read_bw,
            a.sram_read_bw,
            re.sram_read_bw,
            a.sram_read_bw > l.sram_read_bw && re.sram_read_bw < a.sram_read_bw,
            re.reg_read_bw > 0.0 && a.reg_read_bw == 0.0,
        );
    }
}
