//! The engine performance baseline: runs the fig09/fig11/fig12 and FIR
//! scenarios plus engine-focused microworkloads, and writes
//! `BENCH_engine.json` so successive PRs have a perf trajectory.
//!
//! Usage: `cargo run --release --bin bench [-- [--jobs N] [--threads N] [--filter SUBSTR] [--backend fused|interp] [--iters N] [--fault-matrix] [--analyze] [<output-path>]]`
//! (default output: `BENCH_engine.json` in the current directory).
//!
//! * `--jobs N` — worker threads for the sweep scenarios (`fig12_small_sweep`);
//!   default is the machine's available parallelism, `--jobs 1` forces the
//!   sequential path. Cycles/events/ops are bit-identical at any job count —
//!   only wall-clock changes.
//! * `--threads N` — per-run engine threads (`SimOptions::threads`, the
//!   group-sharded intra-run parallelism); default 1 (the sequential
//!   engine), `0` = available parallelism. Counters are bit-identical at
//!   any value — the CI drift guard runs a `--threads 2` leg to prove it.
//! * `--backend fused|interp` — execution backend (default `fused`, the
//!   threaded-code loop-trace runner; `interp` forces the reference
//!   interpreter). Counters are bit-identical either way — the CI drift
//!   guard runs both and compares.
//! * `--iters N` — override every scenario's timed iteration count
//!   (quick smoke runs use `--iters 1`).
//! * `--analyze` — instead of timing anything, run the `equeue-analysis`
//!   static passes (conflict graph, deadlock proof, fusibility, dead
//!   values, resource bounds) over every golden scenario and print each
//!   summary. Combines with `--filter`; exits non-zero if any scenario
//!   produces an Error-severity diagnostic. A pre-flight for sweeps: a
//!   scenario that fails here will wedge or trip limits at runtime.
//! * `--filter SUBSTR` — run only scenarios whose name contains `SUBSTR`
//!   (perf-iteration mode). The emitted JSON then holds a *subset* of the
//!   scenarios and must not be committed: the CI drift guard compares the
//!   full set. Unless an explicit output path is given, filtered runs
//!   write to `BENCH_engine.filtered.json` so they cannot clobber the
//!   committed baseline.
//!
//! # `BENCH_engine.json` schema (version 1)
//!
//! ```json
//! {
//!   "schema": "equeue-bench-engine/v1",
//!   "scenarios": [
//!     {
//!       "name": "matmul64_affine",   // scenario id, stable across PRs
//!       "cycles": 1835008,           // simulated cycles (must not drift)
//!       "events": 12345,             // scheduler wakes per run
//!       "ops": 67890,                // ops interpreted per run
//!       "iters": 5,                  // timed iterations (warm-ups untimed)
//!       "best_ms": 12.3,             // fastest iteration, wall ms
//!       "median_ms": 12.9,           // median iteration, wall ms
//!       "mean_ms": 13.1              // mean iteration, wall ms
//!     }
//!   ]
//! }
//! ```
//!
//! `cycles`/`events`/`ops` are determinism guards: a perf PR must leave
//! them bit-identical while driving `best_ms` down. Sweep scenarios
//! (`fig12_small_sweep`) report the **sums** of per-point cycles, scheduler
//! wakes, and interpreted ops across the whole sweep — order-independent,
//! so the guard holds at any `--jobs` width. Single-module scenarios are
//! compiled once ([`equeue_core::CompiledModule`]) and the prepass runs
//! outside the timed region, like the generators. Timings are wall-clock
//! on whatever machine ran the bench — compare relative trends, not
//! absolute numbers, across machines.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue_bench::timing::{time, Sample};
use equeue_bench::{fig12_sweep_jobs_backend_threads, pool, run_quiet, scenarios};
use equeue_core::{Backend, CompiledModule, SimLibrary, SimOptions, SimReport};
use equeue_dialect::ConvDims;
use equeue_gen::{
    build_stage_program, generate_fir, generate_systolic, FirCase, FirSpec, Stage, SystolicSpec,
};
use equeue_ir::Module;
use equeue_passes::Dataflow;
use std::fmt::Write as _;

/// One scenario's measurement: the timing sample plus determinism guards.
struct Row {
    sample: Sample,
    cycles: u64,
    events: u64,
    ops: u64,
}

/// Times `iters` quiet simulations of `module` and records the report
/// counters of a reference run. The module is compiled once — the layout
/// prepass runs outside the timed region, so the row measures execution,
/// not recompilation.
fn sim_row(name: &str, iters: u32, module: Module, backend: Backend, threads: usize) -> Row {
    let compiled = match CompiledModule::compile(module, SimLibrary::standard()) {
        Ok(c) => c,
        Err(e) => panic!("compile failed: {e}"),
    };
    let opts = SimOptions {
        trace: false,
        backend,
        threads,
        ..Default::default()
    };
    let run = || match compiled.simulate(&opts) {
        Ok(r) => r,
        Err(e) => panic!("simulation failed: {e}"),
    };
    let report: SimReport = run();
    let sample = time(name, iters, || run().cycles);
    Row {
        sample,
        cycles: report.cycles,
        events: report.events_processed,
        ops: report.ops_interpreted,
    }
}

/// Parsed command line.
struct Args {
    jobs: usize,
    /// Per-run engine threads ([`SimOptions::threads`]); `0` = available
    /// parallelism via [`pool::resolve_jobs`], default 1 (sequential).
    threads: usize,
    filter: Option<String>,
    out_path: String,
    fault_matrix: bool,
    analyze: bool,
    backend: Backend,
    /// Overrides every scenario's timed iteration count when set.
    iters: Option<u32>,
}

fn parse_args() -> Args {
    let mut jobs = 0; // 0 = available parallelism (pool convention)
    let mut threads = 1; // sequential engine; 0 = available parallelism
    let mut filter = None;
    let mut out_path: Option<String> = None;
    let mut fault_matrix = false;
    let mut analyze = false;
    let mut backend = Backend::default();
    let mut iters = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--jobs" => jobs = pool::parse_jobs_arg("bench", argv.next()),
            "--threads" => threads = pool::parse_count_arg("bench", "--threads", argv.next()),
            "--filter" => {
                filter = Some(argv.next().unwrap_or_else(|| {
                    eprintln!("bench: --filter needs a substring");
                    std::process::exit(2);
                }));
            }
            "--fault-matrix" => fault_matrix = true,
            "--analyze" => analyze = true,
            "--backend" => {
                backend = match argv.next().as_deref() {
                    Some("fused") => Backend::Fused,
                    Some("interp") => Backend::Interp,
                    other => {
                        eprintln!(
                            "bench: --backend needs 'fused' or 'interp' (got {})",
                            other.unwrap_or("nothing")
                        );
                        std::process::exit(2);
                    }
                };
            }
            "--iters" => {
                iters = match argv.next().and_then(|v| v.parse::<u32>().ok()) {
                    Some(n) if n > 0 => Some(n),
                    _ => {
                        eprintln!("bench: --iters needs a positive integer");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with('-') => {
                eprintln!(
                    "bench: unknown flag '{flag}' (expected --jobs N / --threads N / --filter SUBSTR / --backend fused|interp / --iters N / --fault-matrix / --analyze / <output-path>)"
                );
                std::process::exit(2);
            }
            other => {
                if let Some(prev) = &out_path {
                    eprintln!("bench: two output paths given ('{prev}' and '{other}')");
                    std::process::exit(2);
                }
                out_path = Some(other.to_string());
            }
        }
    }
    // A filtered run emits a scenario *subset*: default it to a side file
    // so iterating on one scenario can never silently clobber the
    // committed full baseline the CI drift guard compares against.
    let out_path = out_path.unwrap_or_else(|| {
        if filter.is_some() {
            "BENCH_engine.filtered.json".to_string()
        } else {
            "BENCH_engine.json".to_string()
        }
    });
    Args {
        jobs,
        threads,
        filter,
        out_path,
        fault_matrix,
        analyze,
        backend,
        iters,
    }
}

/// The `--analyze` mode: run the static-analysis pipeline over the golden
/// scenario set and print per-scenario summaries. Exits non-zero when any
/// scenario carries an Error-severity diagnostic.
fn run_analyze(filter: Option<&str>) -> ! {
    use equeue_analysis::{analyze_module, Severity};
    use equeue_core::RunLimits;

    let library = equeue_bench::standard_library();
    let limits = RunLimits::default();
    let mut errors = 0usize;
    let mut ran = 0usize;
    for scenario in scenarios::golden_scenarios() {
        if let Some(f) = filter {
            if !scenario.name.contains(f) {
                continue;
            }
        }
        ran += 1;
        let report = analyze_module(&scenario.module, library, &limits);
        for d in report
            .diagnostics
            .iter()
            .filter(|d| d.severity > Severity::Info)
        {
            println!("analyze: {}: {d}", scenario.name);
        }
        println!(
            "analyze: {}: {} errors, {} warnings, deadlock_free={}, fusible {}/{}, events <= {}",
            scenario.name,
            report.error_count(),
            report.warning_count(),
            report.deadlock_free,
            report.fusibility.fusible_count(),
            report.fusibility.loops.len(),
            report
                .resources
                .events_bound
                .map_or("unknown".to_string(), |b| b.to_string()),
        );
        errors += report.error_count();
    }
    if ran == 0 {
        eprintln!(
            "analyze: filter '{}' matched no scenario",
            filter.unwrap_or("")
        );
        std::process::exit(2);
    }
    if errors > 0 {
        eprintln!("analyze: {errors} error diagnostic(s) across {ran} scenario(s)");
        std::process::exit(1);
    }
    println!("analyze: {ran} scenario(s) clean");
    std::process::exit(0);
}

/// The fault-injection harness (`--fault-matrix`): perturbs a scenario
/// module with each [`equeue_core::fault::Fault`] kind, runs it under tight
/// [`equeue_core::RunLimits`], and requires every outcome to be a normal
/// report or a typed `SimError` — a panic anywhere fails the process. Also
/// checks the differential contract: a zero-fault injected run stays
/// bit-identical to the golden run.
fn run_fault_matrix() -> ! {
    use equeue_core::fault::{apply_faults, Fault};
    use equeue_core::{simulate_with, RunLimits};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::time::Duration;

    let golden = run_quiet(&scenarios::matmul_linalg(8));

    // Differential check: zero faults applied → bit-identical counters —
    // under both execution backends.
    for backend in [Backend::Fused, Backend::Interp] {
        let mut unfaulted = scenarios::matmul_linalg(8);
        assert_eq!(apply_faults(&mut unfaulted, &[]), 0);
        let again = equeue_bench::run_quiet_backend(&unfaulted, backend);
        assert_eq!(
            (
                golden.cycles,
                golden.events_processed,
                golden.ops_interpreted
            ),
            (again.cycles, again.events_processed, again.ops_interpreted),
            "zero-fault injected run diverged from golden ({backend:?} backend)"
        );
    }
    println!(
        "fault-matrix: zero-fault run bit-identical on both backends (cycles {}, events {}, ops {})",
        golden.cycles, golden.events_processed, golden.ops_interpreted
    );

    let matrix: Vec<(&str, Vec<Fault>)> = vec![
        (
            "rename-op-unknown",
            vec![Fault::RenameOp {
                nth: 6,
                to: "bogus.op".into(),
            }],
        ),
        ("drop-operand", vec![Fault::DropOperand { nth: 2 }]),
        (
            "ext-op-huge-latency",
            vec![Fault::ExtOpCycles {
                nth: 0,
                cycles: i64::MAX,
            }],
        ),
        (
            "corrupt-shape-overflow",
            vec![Fault::CorruptShape {
                nth: 0,
                dims: vec![i64::MAX, i64::MAX],
            }],
        ),
        (
            "corrupt-shape-negative",
            vec![Fault::CorruptShape {
                nth: 0,
                dims: vec![-4],
            }],
        ),
        ("drop-regions", vec![Fault::DropRegions { nth: 0 }]),
        ("zero-loop-step", vec![Fault::ZeroLoopStep { nth: 0 }]),
    ];
    let limits = RunLimits {
        max_cycles: 100_000_000,
        max_events: 10_000_000,
        wall_deadline: Some(Duration::from_secs(5)),
        ..Default::default()
    };
    let mut failures = 0;
    for (name, faults) in &matrix {
        // Perturb a Linalg-level, an affine-loop, and an ext-op-heavy
        // scenario so each fault kind meets ops it can land on.
        for (scenario, module) in [
            ("matmul8_linalg", scenarios::matmul_linalg(8)),
            ("matmul4_affine", scenarios::matmul_affine(4)),
            (
                "fir_single_core",
                generate_fir(FirSpec::default(), FirCase::SingleCore).module,
            ),
        ] {
            let mut module = module;
            let applied = apply_faults(&mut module, faults);
            // Run the perturbed module under both backends: neither may
            // panic, and both must reach the same outcome (identical
            // counters on success, the same error kind on failure).
            let mut outcomes = vec![];
            for backend in [Backend::Fused, Backend::Interp] {
                let opts = equeue_core::SimOptions {
                    trace: false,
                    limits,
                    backend,
                    ..Default::default()
                };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    simulate_with(&module, equeue_bench::standard_library(), &opts)
                }));
                match &outcome {
                    Ok(Ok(r)) => println!(
                        "fault-matrix[{backend:?}]: {name} on {scenario} (applied {applied}): ran to cycle {}",
                        r.cycles
                    ),
                    Ok(Err(e)) => println!(
                        "fault-matrix[{backend:?}]: {name} on {scenario} (applied {applied}): SimError: {e}"
                    ),
                    Err(_) => {
                        eprintln!("fault-matrix[{backend:?}]: {name} on {scenario}: PANICKED");
                        failures += 1;
                    }
                }
                outcomes.push(outcome);
            }
            if let [Ok(a), Ok(b)] = &outcomes[..] {
                let agree = match (a, b) {
                    (Ok(ra), Ok(rb)) => {
                        (ra.cycles, ra.events_processed, ra.ops_interpreted)
                            == (rb.cycles, rb.events_processed, rb.ops_interpreted)
                    }
                    (Err(ea), Err(eb)) => std::mem::discriminant(ea) == std::mem::discriminant(eb),
                    _ => false,
                };
                if !agree {
                    eprintln!(
                        "fault-matrix: {name} on {scenario}: backends diverged (fused {a:?} vs interp {b:?})"
                    );
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("fault-matrix: {failures} perturbation(s) panicked or diverged");
        std::process::exit(1);
    }
    println!(
        "fault-matrix: all perturbations surfaced as reports or typed SimErrors on both backends"
    );
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    if args.fault_matrix {
        run_fault_matrix();
    }
    if args.analyze {
        run_analyze(args.filter.as_deref());
    }
    let enabled = |name: &str| -> bool { args.filter.as_deref().is_none_or(|f| name.contains(f)) };
    let threads = pool::resolve_jobs(args.threads);
    println!(
        "bench: jobs = {} ({} requested), threads = {}, backend = {:?}{}",
        pool::resolve_jobs(args.jobs),
        if args.jobs == 0 {
            "auto".to_string()
        } else {
            args.jobs.to_string()
        },
        threads,
        args.backend,
        args.filter
            .as_deref()
            .map(|f| format!(", filter = '{f}'"))
            .unwrap_or_default(),
    );
    let iters = |default: u32| args.iters.unwrap_or(default);
    let mut rows: Vec<Row> = vec![];

    // Figure scenarios: one representative point each (generation and the
    // compile prepass outside the timed loop — this benchmarks the engine's
    // execution, not the generators or the prepass).
    if enabled("fig09_16x16_ws") {
        let fig09 = generate_systolic(
            &SystolicSpec {
                rows: 4,
                cols: 4,
                dataflow: Dataflow::Ws,
            },
            ConvDims::square(16, 2, 3, 1),
        );
        rows.push(sim_row(
            "fig09_16x16_ws",
            iters(10),
            fig09.module,
            args.backend,
            threads,
        ));
    }

    if enabled("fig11_last_stage_6x6") {
        let fig11 = build_stage_program(
            Stage::all()[Stage::all().len() - 1],
            ConvDims::square(6, 3, 3, 4),
            (4, 4),
            Dataflow::Ws,
        );
        rows.push(sim_row(
            "fig11_last_stage_6x6",
            iters(10),
            fig11.module,
            args.backend,
            threads,
        ));
    }

    if enabled("fir_balanced4") {
        let fir = generate_fir(FirSpec::default(), FirCase::Balanced4);
        rows.push(sim_row(
            "fir_balanced4",
            iters(10),
            fir.module,
            args.backend,
            threads,
        ));
    }

    // The fig12 subsampled sweep end-to-end (generation + simulation for
    // every config), sharded across the worker pool. The guards sum
    // per-point cycles, scheduler wakes, and interpreted ops — the sums are
    // order-independent, so the committed values hold at any --jobs width.
    if enabled("fig12_small_sweep") {
        let mut guard = (0u64, 0u64, 0u64);
        let sample = time("fig12_small_sweep", iters(3), || {
            let rows =
                fig12_sweep_jobs_backend_threads(false, args.jobs, args.backend, args.threads);
            guard = rows.iter().fold((0, 0, 0), |acc, r| {
                (
                    acc.0 + r.cycles,
                    acc.1 + r.events_processed,
                    acc.2 + r.ops_interpreted,
                )
            });
            rows.len()
        });
        rows.push(Row {
            sample,
            cycles: guard.0,
            events: guard.1,
            ops: guard.2,
        });
    }

    // Engine microworkloads.
    if enabled("matmul64_linalg") {
        rows.push(sim_row(
            "matmul64_linalg",
            iters(10),
            scenarios::matmul_linalg(64),
            args.backend,
            threads,
        ));
    }
    if enabled("matmul64_affine") {
        rows.push(sim_row(
            "matmul64_affine",
            iters(5),
            scenarios::matmul_affine(64),
            args.backend,
            threads,
        ));
    }
    if enabled("tensor_stream_256x128") {
        rows.push(sim_row(
            "tensor_stream_256x128",
            iters(10),
            scenarios::tensor_stream(256, 128),
            args.backend,
            threads,
        ));
    }
    // Scenario-diversity sweep additions (same shapes as the golden list,
    // so the drift guard pins the exact modules the replay harness replays).
    if enabled("conv2d_systolic_8x3") {
        rows.push(sim_row(
            "conv2d_systolic_8x3",
            iters(10),
            scenarios::conv2d_systolic(8, 3, 2, 4),
            args.backend,
            threads,
        ));
    }
    if enabled("multi_tenant_4x16x6") {
        rows.push(sim_row(
            "multi_tenant_4x16x6",
            iters(10),
            scenarios::multi_tenant_trace(4, 16, 6),
            args.backend,
            threads,
        ));
    }
    if enabled("mega_grid_8x8") {
        rows.push(sim_row(
            "mega_grid_8x8",
            iters(10),
            scenarios::mega_grid(8, 8, 4),
            args.backend,
            threads,
        ));
    }
    // Intra-run parallelism baseline: `shard_grid` is the genuinely
    // multi-group scenario (every PE+memory pair is its own conflict
    // group, all 16 launches shard-pure — `mega_grid` shares one memory,
    // so it is a single group the sharded engine can never split). The
    // threads-2 row must match the threads-1 row bit for bit on
    // cycles/events/ops; wall-clock scaling needs the multi-core-hardware
    // run the ROADMAP flags (this container is 1-core).
    if enabled("shard_grid_4x4") {
        rows.push(sim_row(
            "shard_grid_4x4",
            iters(10),
            scenarios::shard_grid(4, 4, 4),
            args.backend,
            threads,
        ));
    }
    if enabled("shard_grid_4x4_threads2") {
        rows.push(sim_row(
            "shard_grid_4x4_threads2",
            iters(10),
            scenarios::shard_grid(4, 4, 4),
            args.backend,
            2,
        ));
    }

    if rows.is_empty() {
        eprintln!(
            "bench: filter '{}' matched no scenario",
            args.filter.as_deref().unwrap_or("")
        );
        std::process::exit(2);
    }

    // Emit JSON (hand-rolled: the workspace has no serde).
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"equeue-bench-engine/v1\",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"events\": {}, \"ops\": {}, \
             \"iters\": {}, \"best_ms\": {:.3}, \"median_ms\": {:.3}, \"mean_ms\": {:.3}}}{}",
            r.sample.name,
            r.cycles,
            r.events,
            r.ops,
            r.sample.iters,
            r.sample.best_ms,
            r.sample.median_ms,
            r.sample.mean_ms,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&args.out_path, &json) {
        eprintln!("bench: cannot write {}: {e}", args.out_path);
        std::process::exit(1);
    }
    println!("\nwrote {}", args.out_path);
    if args.filter.is_some() {
        println!("note: --filter output is a scenario subset; do not commit it");
    }

    // Quiet-run sanity: every scenario simulated deterministically.
    let check = run_quiet(&scenarios::matmul_linalg(8));
    assert!(check.cycles > 0);
}
