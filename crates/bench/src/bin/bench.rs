//! The engine performance baseline: runs the fig09/fig11/fig12 and FIR
//! scenarios plus engine-focused microworkloads, and writes
//! `BENCH_engine.json` so successive PRs have a perf trajectory.
//!
//! Usage: `cargo run --release --bin bench [-- <output-path>]`
//! (default output: `BENCH_engine.json` in the current directory).
//!
//! # `BENCH_engine.json` schema (version 1)
//!
//! ```json
//! {
//!   "schema": "equeue-bench-engine/v1",
//!   "scenarios": [
//!     {
//!       "name": "matmul64_affine",   // scenario id, stable across PRs
//!       "cycles": 1835008,           // simulated cycles (must not drift)
//!       "events": 12345,             // scheduler wakes per run
//!       "ops": 67890,                // ops interpreted per run
//!       "iters": 5,                  // timed iterations (1 warm-up untimed)
//!       "best_ms": 12.3,             // fastest iteration, wall ms
//!       "mean_ms": 13.1              // mean iteration, wall ms
//!     }
//!   ]
//! }
//! ```
//!
//! `cycles`/`events`/`ops` are determinism guards: a perf PR must leave
//! them bit-identical while driving `best_ms` down. Timings are wall-clock
//! on whatever machine ran the bench — compare relative trends, not
//! absolute numbers, across machines.

use equeue_bench::timing::{time, Sample};
use equeue_bench::{fig12_sweep, run_quiet, scenarios};
use equeue_core::{simulate_with, SimLibrary, SimOptions, SimReport};
use equeue_dialect::ConvDims;
use equeue_gen::{
    build_stage_program, generate_fir, generate_systolic, FirCase, FirSpec, Stage, SystolicSpec,
};
use equeue_ir::Module;
use equeue_passes::Dataflow;
use std::fmt::Write as _;

/// One scenario's measurement: the timing sample plus determinism guards.
struct Row {
    sample: Sample,
    cycles: u64,
    events: u64,
    ops: u64,
}

/// Times `iters` quiet simulations of `module` and records the report
/// counters of the last run.
fn sim_row(name: &str, iters: u32, module: &Module) -> Row {
    let lib = SimLibrary::standard();
    let opts = SimOptions {
        trace: false,
        ..Default::default()
    };
    let run = || simulate_with(module, &lib, &opts).expect("simulation");
    let report: SimReport = run();
    let sample = time(name, iters, || run().cycles);
    Row {
        sample,
        cycles: report.cycles,
        events: report.events_processed,
        ops: report.ops_interpreted,
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".to_string());
    let mut rows: Vec<Row> = vec![];

    // Figure scenarios: one representative point each (generation outside
    // the timed loop — this benchmarks the engine, not the generators).
    let fig09 = generate_systolic(
        &SystolicSpec {
            rows: 4,
            cols: 4,
            dataflow: Dataflow::Ws,
        },
        ConvDims::square(16, 2, 3, 1),
    );
    rows.push(sim_row("fig09_16x16_ws", 10, &fig09.module));

    let fig11 = build_stage_program(
        Stage::all()[Stage::all().len() - 1],
        ConvDims::square(6, 3, 3, 4),
        (4, 4),
        Dataflow::Ws,
    );
    rows.push(sim_row("fig11_last_stage_6x6", 10, &fig11.module));

    let fir = generate_fir(FirSpec::default(), FirCase::Balanced4);
    rows.push(sim_row("fir_balanced4", 10, &fir.module));

    // The fig12 subsampled sweep end-to-end (generation + simulation for
    // every config) — the scenario later scaling PRs (sharding, batching)
    // will parallelise.
    {
        let mut guard = (0u64, 0u64, 0u64);
        let sample = time("fig12_small_sweep", 3, || {
            let rows = fig12_sweep(false);
            guard = rows
                .iter()
                .fold((0, 0, 0), |acc, r| (acc.0 + r.cycles, acc.1, acc.2));
            rows.len()
        });
        rows.push(Row {
            sample,
            cycles: guard.0,
            events: 0,
            ops: 0,
        });
    }

    // Engine microworkloads.
    rows.push(sim_row(
        "matmul64_linalg",
        10,
        &scenarios::matmul_linalg(64),
    ));
    rows.push(sim_row("matmul64_affine", 5, &scenarios::matmul_affine(64)));
    rows.push(sim_row(
        "tensor_stream_256x128",
        10,
        &scenarios::tensor_stream(256, 128),
    ));

    // Emit JSON (hand-rolled: the workspace has no serde).
    let mut json = String::new();
    json.push_str("{\n  \"schema\": \"equeue-bench-engine/v1\",\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"name\": \"{}\", \"cycles\": {}, \"events\": {}, \"ops\": {}, \
             \"iters\": {}, \"best_ms\": {:.3}, \"mean_ms\": {:.3}}}{}",
            r.sample.name,
            r.cycles,
            r.events,
            r.ops,
            r.sample.iters,
            r.sample.best_ms,
            r.sample.mean_ms,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("bench: cannot write {out_path}: {e}");
        std::process::exit(1);
    }
    println!("\nwrote {out_path}");

    // Quiet-run sanity: every scenario simulated deterministically.
    let check = run_quiet(&scenarios::matmul_linalg(8));
    assert!(check.cycles > 0);
}
