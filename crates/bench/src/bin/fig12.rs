//! Regenerates Fig. 12: the scalability sweep. Prints one row per
//! configuration (execution time vs cycles, peak write bandwidth ×
//! portion, and loop iterations) plus the per-dataflow summaries the paper
//! reads off the scatter plots.
//!
//! Run with `--full` for the complete 4,050-candidate grid (Ah ∈
//! {2,4,8,16,32} × H/W ∈ {2,4,8,16,32} × F ∈ {1,2,4} × C ∈ {1,2,4} × N ∈
//! {1,2,4,8,16,32} × 3 dataflows, minus invalid filter sizes); the default
//! is a representative subsample. `--jobs N` shards the independent
//! simulations across N worker threads (default: all cores; results and
//! row order are bit-identical at any width).

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue_bench::{fig12_configs, fig12_sweep_jobs_backend_threads, pool, Fig12Row};
use equeue_core::Backend;
use equeue_passes::Dataflow;

fn main() {
    let mut full = false;
    let mut jobs = 0; // 0 = available parallelism
    let mut threads = 1; // per-run engine threads; 0 = available parallelism
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--jobs" => jobs = pool::parse_jobs_arg("fig12", argv.next()),
            "--threads" => threads = pool::parse_count_arg("fig12", "--threads", argv.next()),
            other => {
                eprintln!(
                    "fig12: unknown argument '{other}' (expected --full / --jobs N / --threads N)"
                );
                std::process::exit(2);
            }
        }
    }
    let configs = fig12_configs(full);
    println!(
        "Fig. 12 — scalability sweep over {} configurations ({}; {} worker threads, {} engine threads/run)",
        configs.len(),
        if full {
            "full grid"
        } else {
            "subsample; pass --full for the paper's grid"
        },
        pool::resolve_jobs(jobs),
        pool::resolve_jobs(threads),
    );
    println!(
        "{:>3}x{:<3} {:>4} {:>2} {:>2} {:>3} {:>3} | {:>10} {:>10} {:>7} | {:>11} | {:>9} | {:>6}",
        "Ah",
        "Aw",
        "H/W",
        "F",
        "C",
        "N",
        "df",
        "EQ cycles",
        "SS cycles",
        "err",
        "exec time",
        "pkBWxP",
        "iters"
    );
    println!("{}", "-".repeat(108));

    // Simulate the whole grid on the pool, then print in sweep order.
    let rows: Vec<Fig12Row> =
        fig12_sweep_jobs_backend_threads(full, jobs, Backend::default(), threads);
    for r in &rows {
        println!(
            "{:>3}x{:<3} {:>4} {:>2} {:>2} {:>3} {:>3} | {:>10} {:>10} {:>6.2}% | {:>9.1?} | {:>9.3} | {:>6}",
            r.ah,
            64 / r.ah,
            r.hw,
            r.f,
            r.c,
            r.n,
            r.dataflow.as_str(),
            r.cycles,
            r.scalesim_cycles,
            100.0 * (r.cycles as f64 - r.scalesim_cycles as f64).abs()
                / r.scalesim_cycles.max(1) as f64,
            r.execution_time,
            r.peak_write_bw_x_portion,
            r.loop_iterations,
        );
    }

    println!("\nper-dataflow summary (paper's Fig. 12 observations):");
    for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
        let sel: Vec<&Fig12Row> = rows.iter().filter(|r| r.dataflow == df).collect();
        let min_cycles = sel.iter().map(|r| r.cycles).min().unwrap_or(0);
        let mean_peak: f64 =
            sel.iter().map(|r| r.peak_write_bw_x_portion).sum::<f64>() / sel.len().max(1) as f64;
        // Fig. 12c–e: cycles per loop iteration should be roughly constant
        // for a fixed stream length; report the correlation via the ratio
        // spread instead of a full regression.
        let ratios: Vec<f64> = sel
            .iter()
            .map(|r| r.cycles as f64 / r.loop_iterations.max(1) as f64)
            .collect();
        let mean_ratio = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        println!(
            "  {}: {:>4} points, min cycles {:>7}, mean peak-write-BWxportion {:>7.3}, \
             mean cycles/iteration {:>8.1}",
            df.as_str(),
            sel.len(),
            min_cycles,
            mean_peak,
            mean_ratio,
        );
    }
    let total_time: std::time::Duration = rows.iter().map(|r| r.execution_time).sum();
    println!("\ntotal simulation wall-clock: {total_time:.1?}");
}
