//! Regenerates the §VI-C iteration-cost comparison: lines of code needed
//! to implement one dataflow and to switch to another, for SCALE-Sim
//! (paper: 569 LOC for WS, 410 changed for IS) versus the EQueue generator
//! (paper: 281 LOC, 11 changed) — here measured on this repository's own
//! sources — plus simulation wall-clock on the Fig. 9 workloads.

#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use equeue_bench::{fig09_ifmap_sweep, fig09_weight_sweep, to_conv_shape, to_scalesim};
use equeue_dialect::ConvDims;
use equeue_passes::Dataflow;
use std::fs;
use std::time::Instant;

/// Counts non-blank, non-comment lines.
fn loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("//!"))
        .count()
}

/// Counts the dataflow-conditional lines: those inside per-dataflow match
/// arms or mentioning a specific dataflow variant. This approximates "LOC
/// to switch dataflows" — everything else is shared.
fn dataflow_specific_loc(source: &str) -> usize {
    source
        .lines()
        .map(str::trim)
        .filter(|l| l.contains("Dataflow::"))
        .count()
}

fn main() {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let read = |rel: &str| match fs::read_to_string(manifest.join(rel)) {
        Ok(src) => src,
        Err(e) => panic!("reading {rel}: {e}"),
    };
    let systolic_src = read("../gen/src/systolic.rs");
    let scalesim_src = read("../scalesim/src/lib.rs");

    println!("§VI-C — iteration cost: code size and simulation speed\n");
    println!("code size (this repository, non-blank non-comment lines):");
    println!(
        "  {:<34} {:>6} total LOC, {:>4} dataflow-specific",
        "EQueue systolic generator",
        loc(&systolic_src),
        dataflow_specific_loc(&systolic_src)
    );
    println!(
        "  {:<34} {:>6} total LOC, {:>4} dataflow-specific",
        "SCALE-Sim-style baseline",
        loc(&scalesim_src),
        dataflow_specific_loc(&scalesim_src)
    );
    println!(
        "  (paper: SCALE-Sim 569 LOC for WS, 410 changed for IS; \
         EQueue 281 LOC, 11 changed)\n"
    );

    // Simulation speed on the Fig. 9 workloads (paper: SCALE-Sim ≤1.1 s,
    // EQueue ≤7.2 s — the one-off simulator is faster, the EQueue model is
    // cheaper to *change*).
    let t0 = Instant::now();
    let rows_a = fig09_ifmap_sweep();
    let rows_c = fig09_weight_sweep();
    let equeue_time = t0.elapsed();
    let t1 = Instant::now();
    for hw in [2usize, 4, 8, 16, 32] {
        let dims = ConvDims::square(hw, 2.min(hw), 3, 1);
        scalesim::scale_sim(
            scalesim::ArrayShape { rows: 4, cols: 4 },
            to_conv_shape(dims),
            to_scalesim(Dataflow::Ws),
        );
    }
    for f in [2usize, 4, 8, 16, 32] {
        let dims = ConvDims {
            h: 32,
            w: 32,
            fh: f,
            fw: f,
            c: 3,
            n: 1,
        };
        scalesim::scale_sim(
            scalesim::ArrayShape { rows: 4, cols: 4 },
            to_conv_shape(dims),
            to_scalesim(Dataflow::Ws),
        );
    }
    let scalesim_time = t1.elapsed();
    println!(
        "simulation wall-clock on the Fig. 9 workloads ({} points):",
        rows_a.len() + rows_c.len()
    );
    println!("  EQueue discrete-event simulation : {equeue_time:.2?}");
    println!("  SCALE-Sim-style analytical model : {scalesim_time:.2?}");
}
