//! # equeue-bench — the experiment harness
//!
//! One driver per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index). Binaries under `src/bin/` print the same rows/series
//! the paper reports; Criterion benches under `benches/` measure the
//! simulator itself. The drivers live here so binaries, benches, and
//! integration tests share one implementation.
//!
//! Sweeps over independent configurations ([`fig12_sweep`], [`fir_rows`])
//! shard their points across the std-thread worker pool in [`pool`]; the
//! `*_jobs` variants take an explicit thread count (`0` = all cores) and
//! produce bit-identical rows at any job count.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod pool;

use equeue_core::{
    simulate_with, Backend, CancelToken, RunLimits, SimError, SimLibrary, SimOptions, SimReport,
};
use equeue_dialect::ConvDims;
use equeue_gen::{
    build_stage_program, generate_fir, generate_systolic, FirCase, FirSpec, Stage, SystolicSpec,
};
use equeue_passes::Dataflow;
use pool::PointStatus;
use std::sync::OnceLock;
use std::time::Duration;

/// The shared standard simulator library: built once per process and handed
/// to every quiet run, so sweeps do not rebuild the profile/factory tables
/// per point. `SimLibrary` is `Send + Sync`, so worker threads borrow it
/// freely.
pub fn standard_library() -> &'static SimLibrary {
    static LIB: OnceLock<SimLibrary> = OnceLock::new();
    LIB.get_or_init(SimLibrary::standard)
}

/// Converts the pass-level dataflow enum into the baseline's.
pub fn to_scalesim(df: Dataflow) -> scalesim::Dataflow {
    match df {
        Dataflow::Ws => scalesim::Dataflow::Ws,
        Dataflow::Is => scalesim::Dataflow::Is,
        Dataflow::Os => scalesim::Dataflow::Os,
    }
}

/// Converts a [`ConvDims`] into the baseline's shape type.
pub fn to_conv_shape(d: ConvDims) -> scalesim::ConvShape {
    scalesim::ConvShape {
        h: d.h,
        w: d.w,
        fh: d.fh,
        fw: d.fw,
        c: d.c,
        n: d.n,
    }
}

/// Simulates a module without tracing (sweep mode).
pub fn run_quiet(module: &equeue_ir::Module) -> SimReport {
    run_quiet_backend(module, Backend::default())
}

/// [`run_quiet`] under an explicit execution backend — the harness for
/// fused-vs-interpreter differential checks.
///
/// # Panics
///
/// Panics if the simulation fails (benchmark scenarios are known-good).
pub fn run_quiet_backend(module: &equeue_ir::Module, backend: Backend) -> SimReport {
    match simulate_with(
        module,
        standard_library(),
        &SimOptions {
            trace: false,
            backend,
            ..Default::default()
        },
    ) {
        Ok(report) => report,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

// ---------------------------------------------------------------------------
// Fig. 9 — EQueue vs SCALE-Sim on a 4×4 WS array
// ---------------------------------------------------------------------------

/// One comparison point of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig09Row {
    /// Sweep label (`"8x8"`).
    pub label: String,
    /// EQueue simulated cycles.
    pub equeue_cycles: u64,
    /// SCALE-Sim cycles.
    pub scalesim_cycles: u64,
    /// EQueue average SRAM ofmap write bandwidth (B/cycle).
    pub equeue_ofmap_bw: f64,
    /// SCALE-Sim average ofmap write bandwidth (B/cycle).
    pub scalesim_ofmap_bw: f64,
    /// EQueue wall-clock simulation time.
    pub equeue_time: Duration,
}

impl Fig09Row {
    /// Relative cycle error |EQ − SS| / SS.
    pub fn cycle_error(&self) -> f64 {
        (self.equeue_cycles as f64 - self.scalesim_cycles as f64).abs()
            / self.scalesim_cycles.max(1) as f64
    }
}

fn fig09_point(dims: ConvDims) -> Fig09Row {
    let spec = SystolicSpec {
        rows: 4,
        cols: 4,
        dataflow: Dataflow::Ws,
    };
    let prog = generate_systolic(&spec, dims);
    let report = run_quiet(&prog.module);
    let ss = scalesim::scale_sim(
        scalesim::ArrayShape { rows: 4, cols: 4 },
        to_conv_shape(dims),
        scalesim::Dataflow::Ws,
    );
    Fig09Row {
        label: format!("{}x{}", dims.h, dims.w),
        equeue_cycles: report.cycles,
        scalesim_cycles: ss.cycles,
        equeue_ofmap_bw: report
            .memory_named("OfmapSRAM")
            .map(|m| m.avg_write_bw)
            .unwrap_or(0.0),
        scalesim_ofmap_bw: ss.avg_ofmap_write_bw,
        equeue_time: report.execution_time,
    }
}

/// Fig. 9a/b: ifmap sweep 2²…32² with fixed 2×2×3 weights.
pub fn fig09_ifmap_sweep() -> Vec<Fig09Row> {
    [2usize, 4, 8, 16, 32]
        .into_iter()
        .map(|hw| fig09_point(ConvDims::square(hw, 2.min(hw), 3, 1)))
        .collect()
}

/// Fig. 9c/d: filter sweep 2²…32² with a fixed 32×32 ifmap.
pub fn fig09_weight_sweep() -> Vec<Fig09Row> {
    [2usize, 4, 8, 16, 32]
        .into_iter()
        .map(|f| {
            let dims = ConvDims {
                h: 32,
                w: 32,
                fh: f,
                fw: f,
                c: 3,
                n: 1,
            };
            let mut row = fig09_point(dims);
            row.label = format!("{f}x{f}");
            row
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11 — metrics along the lowering pipeline
// ---------------------------------------------------------------------------

/// One (stage, dataflow, size) measurement of Fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Lowering stage.
    pub stage: Stage,
    /// Dataflow (stages before Systolic are dataflow-independent; the
    /// value records which pipeline produced the row).
    pub dataflow: Dataflow,
    /// Ifmap height/width.
    pub hw: usize,
    /// Wall-clock simulation time.
    pub execution_time: Duration,
    /// Simulated cycles.
    pub cycles: u64,
    /// Average SRAM read bandwidth.
    pub sram_read_bw: f64,
    /// Average SRAM write bandwidth.
    pub sram_write_bw: f64,
    /// Average register read bandwidth.
    pub reg_read_bw: f64,
    /// Average register write bandwidth.
    pub reg_write_bw: f64,
}

/// Runs the Fig. 11 grid: stages × dataflows for the given sizes, on a
/// 4×4 array with `Fh=Fw=3, C=3, N=4`.
pub fn fig11_rows(sizes: &[usize]) -> Vec<Fig11Row> {
    let mut rows = vec![];
    for &hw in sizes {
        let dims = ConvDims::square(hw, 3, 3, 4);
        for stage in Stage::all() {
            for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
                let prog = build_stage_program(stage, dims, (4, 4), df);
                let report = run_quiet(&prog.module);
                rows.push(Fig11Row {
                    stage,
                    dataflow: df,
                    hw,
                    execution_time: report.execution_time,
                    cycles: report.cycles,
                    sram_read_bw: report.read_bw_of_kind("SRAM"),
                    sram_write_bw: report.write_bw_of_kind("SRAM"),
                    reg_read_bw: report.read_bw_of_kind("Register"),
                    reg_write_bw: report.write_bw_of_kind("Register"),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 12 — scalability sweep
// ---------------------------------------------------------------------------

/// One point of the Fig. 12 scatter plots.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Array rows (`Ah`; `Aw = 64/Ah`).
    pub ah: usize,
    /// Problem size (`H = W`).
    pub hw: usize,
    /// Filter size (`Fh = Fw`).
    pub f: usize,
    /// Channels.
    pub c: usize,
    /// Filters.
    pub n: usize,
    /// Dataflow.
    pub dataflow: Dataflow,
    /// EQueue simulated cycles.
    pub cycles: u64,
    /// SCALE-Sim cycles (cross-check).
    pub scalesim_cycles: u64,
    /// Wall-clock simulation time.
    pub execution_time: Duration,
    /// SRAM peak write bandwidth × portion (Fig. 12b's y-axis).
    pub peak_write_bw_x_portion: f64,
    /// The paper's loop-iteration count `⌈D1/Ah⌉·⌈D2/Aw⌉`.
    pub loop_iterations: usize,
    /// Scheduler wakes of the EQueue simulation (determinism guard: the
    /// bench aggregates these across the sweep).
    pub events_processed: u64,
    /// Ops interpreted by the EQueue simulation (determinism guard).
    pub ops_interpreted: u64,
}

/// One sweep coordinate: `(ah, hw, f, c, n, dataflow)`.
pub type Fig12Config = (usize, usize, usize, usize, usize, Dataflow);

/// Enumerates the sweep. `full` gives the paper's complete grid
/// (5×5×3×3×6×3 = 4,050 candidate combinations before validity
/// filtering); otherwise a subsample.
pub fn fig12_configs(full: bool) -> Vec<Fig12Config> {
    type Axes = (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>);
    let (ahs, hws, fs, cs, ns): Axes = if full {
        (
            vec![2, 4, 8, 16, 32],
            vec![2, 4, 8, 16, 32],
            vec![1, 2, 4],
            vec![1, 2, 4],
            vec![1, 2, 4, 8, 16, 32],
        )
    } else {
        (
            vec![2, 8, 32],
            vec![4, 16],
            vec![1, 4],
            vec![1, 4],
            vec![1, 8, 32],
        )
    };
    let mut out = vec![];
    for &ah in &ahs {
        for &hw in &hws {
            for &f in &fs {
                if f > hw {
                    continue; // filter must fit
                }
                for &c in &cs {
                    for &n in &ns {
                        for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
                            out.push((ah, hw, f, c, n, df));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs one sweep point.
pub fn fig12_point(ah: usize, hw: usize, f: usize, c: usize, n: usize, df: Dataflow) -> Fig12Row {
    let opts = SimOptions {
        trace: false,
        ..Default::default()
    };
    match try_fig12_point(ah, hw, f, c, n, df, &opts) {
        Ok(row) => row,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Runs one sweep point under explicit [`SimOptions`] (limits, cancel
/// token), surfacing failures as typed [`SimError`]s instead of panicking.
///
/// # Errors
///
/// Whatever the underlying simulation returns — including
/// [`SimError::Limit`] and [`SimError::Cancelled`].
pub fn try_fig12_point(
    ah: usize,
    hw: usize,
    f: usize,
    c: usize,
    n: usize,
    df: Dataflow,
    options: &SimOptions,
) -> Result<Fig12Row, SimError> {
    let aw = 64 / ah;
    let dims = ConvDims {
        h: hw,
        w: hw,
        fh: f,
        fw: f,
        c,
        n,
    };
    let spec = SystolicSpec {
        rows: ah,
        cols: aw,
        dataflow: df,
    };
    let prog = generate_systolic(&spec, dims);
    let report = simulate_with(&prog.module, standard_library(), options)?;
    let ss = scalesim::scale_sim(
        scalesim::ArrayShape { rows: ah, cols: aw },
        to_conv_shape(dims),
        to_scalesim(df),
    );
    // The ofmap drain connection is the second one created.
    let peak = report
        .connections
        .get(1)
        .map(|cr| cr.write.max_bw * cr.write.max_bw_portion)
        .unwrap_or(0.0);
    Ok(Fig12Row {
        ah,
        hw,
        f,
        c,
        n,
        dataflow: df,
        cycles: report.cycles,
        scalesim_cycles: ss.cycles,
        execution_time: report.execution_time,
        peak_write_bw_x_portion: peak,
        loop_iterations: prog.loop_iterations(),
        events_processed: report.events_processed,
        ops_interpreted: report.ops_interpreted,
    })
}

/// Runs the whole sweep on the default worker-pool width (all cores).
pub fn fig12_sweep(full: bool) -> Vec<Fig12Row> {
    fig12_sweep_jobs(full, 0)
}

/// Runs the whole sweep sharded across `jobs` worker threads (`0` = all
/// cores). Every point is an independent simulation; rows come back in
/// configuration order with bit-identical cycles/events/ops at any job
/// count.
pub fn fig12_sweep_jobs(full: bool, jobs: usize) -> Vec<Fig12Row> {
    fig12_sweep_jobs_backend(full, jobs, Backend::default())
}

/// [`fig12_sweep_jobs`] under an explicit execution backend. Cycles, wakes,
/// and interpreted-op counts are bit-identical across backends (the fused
/// trace runner's contract); only wall-clock differs.
pub fn fig12_sweep_jobs_backend(full: bool, jobs: usize, backend: Backend) -> Vec<Fig12Row> {
    fig12_sweep_jobs_backend_threads(full, jobs, backend, 1)
}

/// [`fig12_sweep_jobs_backend`] with an explicit per-run engine thread
/// count ([`SimOptions::threads`]; `0` = the machine's available
/// parallelism, resolved through [`pool::resolve_jobs`]). Counters stay
/// bit-identical at any `threads` value — the engine's intra-run
/// parallelism contract.
pub fn fig12_sweep_jobs_backend_threads(
    full: bool,
    jobs: usize,
    backend: Backend,
    threads: usize,
) -> Vec<Fig12Row> {
    let threads = pool::resolve_jobs(threads);
    let configs = fig12_configs(full);
    pool::run_batch(jobs, &configs, move |&(ah, hw, f, c, n, df)| {
        let opts = SimOptions {
            trace: false,
            backend,
            threads,
            ..Default::default()
        };
        match try_fig12_point(ah, hw, f, c, n, df, &opts) {
            Ok(row) => row,
            Err(e) => panic!("simulation failed: {e}"),
        }
    })
}

/// Runs the sweep under per-point [`RunLimits`] and a shared
/// [`CancelToken`]: the token is threaded both into the pool (workers stop
/// claiming points once cancelled) and into every engine run (an in-flight
/// point stops within one scheduler epoch). Returns one well-formed
/// [`PointStatus`] per configuration, in configuration order — completed
/// points keep their rows, cancelled points report
/// [`PointStatus::Cancelled`], and any other failure (limit hit, malformed
/// module, worker panic) becomes [`PointStatus::Failed`] with the typed
/// error's message.
pub fn fig12_sweep_cancellable(
    full: bool,
    jobs: usize,
    limits: RunLimits,
    cancel: &CancelToken,
) -> Vec<PointStatus<Fig12Row>> {
    let configs = fig12_configs(full);
    pool::run_batch_status(jobs, &configs, Some(cancel), |&(ah, hw, f, c, n, df)| {
        let opts = SimOptions {
            trace: false,
            limits,
            cancel: Some(cancel.clone()),
            ..Default::default()
        };
        match try_fig12_point(ah, hw, f, c, n, df, &opts) {
            Ok(row) => PointStatus::Done(row),
            Err(SimError::Cancelled(_)) => PointStatus::Cancelled,
            Err(e) => PointStatus::Failed(e.to_string()),
        }
    })
}

// ---------------------------------------------------------------------------
// §VII — FIR cases
// ---------------------------------------------------------------------------

/// One FIR case measurement.
#[derive(Debug, Clone)]
pub struct FirRow {
    /// Which case.
    pub case: FirCase,
    /// EQueue simulated cycles.
    pub cycles: u64,
    /// The paper's EQueue result for the case.
    pub paper_cycles: u64,
    /// The Xilinx AIE simulator reference, where published.
    pub xilinx_cycles: Option<u64>,
    /// Wall-clock simulation time (paper: 0.07 s for case 4 vs the AIE
    /// simulator's 8 minutes).
    pub execution_time: Duration,
    /// Chrome trace JSON (Figs. 13/14 artifacts).
    pub trace_json: String,
}

/// Runs all four FIR cases on the default worker-pool width.
pub fn fir_rows() -> Vec<FirRow> {
    fir_rows_jobs(0)
}

/// Runs all four FIR cases, one worker per case up to `jobs` threads
/// (`0` = all cores). Traces are recorded per case as before; rows come
/// back in case order.
pub fn fir_rows_jobs(jobs: usize) -> Vec<FirRow> {
    use equeue_gen::fir_reference as r;
    pool::run_batch(jobs, &FirCase::all(), |&case| {
        let prog = generate_fir(FirSpec::default(), case);
        let report = match equeue_core::simulate(&prog.module) {
            Ok(r) => r,
            Err(e) => panic!("simulation failed: {e}"),
        };
        let (paper, xilinx) = match case {
            FirCase::SingleCore => (r::PAPER_CASE1, Some(r::XILINX_CASE1)),
            FirCase::Pipelined16 => (r::PAPER_CASE2, None),
            FirCase::Bandwidth16 => (r::PAPER_CASE3, None),
            FirCase::Balanced4 => (r::PAPER_CASE4, Some(r::XILINX_CASE4)),
        };
        FirRow {
            case,
            cycles: report.cycles,
            paper_cycles: paper,
            xilinx_cycles: xilinx,
            execution_time: report.execution_time,
            trace_json: report.trace.to_chrome_json(),
        }
    })
}

// ---------------------------------------------------------------------------
// Engine benchmark scenarios (`src/bin/bench.rs`, BENCH_engine.json)
// ---------------------------------------------------------------------------

/// Module builders for the engine benchmark binary.
///
/// Moved to `equeue_gen::scenarios` so the static-analysis crate can reach
/// them without depending on the bench harness; re-exported here to keep
/// `equeue_bench::scenarios::` paths working.
pub use equeue_gen::scenarios;

// ---------------------------------------------------------------------------
// Self-contained timing harness
// ---------------------------------------------------------------------------

/// A minimal wall-clock timing harness shared by the `benches/` targets and
/// the `bench` binary.
///
/// The workspace intentionally carries zero external dependencies (the build
/// environment is offline), so instead of Criterion each bench target is a
/// plain `main` that calls [`timing::time`]: warm up once, run a fixed
/// iteration budget, report best/mean wall time. Deterministic enough for
/// trend tracking in `BENCH_engine.json`; not a statistical framework.
pub mod timing {
    use std::time::Instant;

    /// Untimed warm-up iterations before measurement begins. The first few
    /// runs of a scenario pay one-off costs (allocator growth, page faults,
    /// branch-predictor training) that made short benches like
    /// `fir_balanced4` report means several times their steady-state best;
    /// a fixed warm-up burst drains those before the clock starts.
    pub const WARMUP_ITERS: u32 = 3;

    /// One measured benchmark case.
    #[derive(Debug, Clone)]
    pub struct Sample {
        /// Case name (`"fig09/equeue_16x16_ws"`).
        pub name: String,
        /// Iterations measured (after the warm-up burst).
        pub iters: u32,
        /// Fastest single-iteration wall time, milliseconds.
        pub best_ms: f64,
        /// Mean single-iteration wall time, milliseconds.
        pub mean_ms: f64,
        /// Median single-iteration wall time, milliseconds. Robust to the
        /// occasional scheduling hiccup that skews the mean.
        pub median_ms: f64,
    }

    impl Sample {
        /// One formatted report row.
        pub fn row(&self) -> String {
            format!(
                "{:<40} {:>5} iters   best {:>10.3} ms   median {:>10.3} ms   mean {:>10.3} ms",
                self.name, self.iters, self.best_ms, self.median_ms, self.mean_ms
            )
        }
    }

    /// Median of a sample list (mean of the middle pair for even lengths).
    fn median(samples: &mut [f64]) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        samples.sort_by(f64::total_cmp);
        let mid = samples.len() / 2;
        if samples.len() % 2 == 1 {
            samples[mid]
        } else {
            (samples[mid - 1] + samples[mid]) / 2.0
        }
    }

    /// Times `f` over `iters` iterations (after [`WARMUP_ITERS`] untimed
    /// warm-ups) and prints the report row.
    pub fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) -> Sample {
        let iters = iters.max(1);
        for _ in 0..WARMUP_ITERS {
            std::hint::black_box(f());
        }
        let mut best = f64::INFINITY;
        let mut total = 0.0;
        let mut all = Vec::with_capacity(iters as usize);
        for _ in 0..iters {
            let t0 = Instant::now();
            std::hint::black_box(f());
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            best = best.min(ms);
            total += ms;
            all.push(ms);
        }
        let sample = Sample {
            name: name.to_string(),
            iters,
            best_ms: best,
            mean_ms: total / f64::from(iters),
            median_ms: median(&mut all),
        };
        println!("{}", sample.row());
        sample
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_reports_positive_times() {
        let s = timing::time("noop", 3, || 1 + 1);
        assert_eq!(s.iters, 3);
        assert!(s.best_ms >= 0.0 && s.mean_ms >= s.best_ms);
        assert!(s.median_ms >= s.best_ms && s.median_ms <= s.mean_ms * 3.0 + f64::EPSILON);
    }

    #[test]
    fn fig09_equeue_tracks_scalesim() {
        for row in fig09_ifmap_sweep() {
            assert!(
                row.cycle_error() < 0.02,
                "{}: equeue {} vs scalesim {}",
                row.label,
                row.equeue_cycles,
                row.scalesim_cycles
            );
        }
    }

    #[test]
    fn fig12_small_sweep_consistent() {
        let rows = fig12_sweep(false);
        assert!(rows.len() > 100, "sweep too small: {}", rows.len());
        for r in &rows {
            let err = (r.cycles as f64 - r.scalesim_cycles as f64).abs()
                / r.scalesim_cycles.max(1) as f64;
            assert!(
                err < 0.05,
                "ah={} hw={} f={} c={} n={} {:?}: {} vs {}",
                r.ah,
                r.hw,
                r.f,
                r.c,
                r.n,
                r.dataflow,
                r.cycles,
                r.scalesim_cycles
            );
            // Cycles are proportional to loop iterations (Fig. 12c–e).
            assert!(r.cycles as usize >= r.loop_iterations);
        }
    }

    #[test]
    fn sweep_points_identical_at_any_job_count() {
        // A slice of the sweep, sequential vs pooled: same rows, same order,
        // same determinism counters.
        let configs: Vec<Fig12Config> = fig12_configs(false).into_iter().take(12).collect();
        let point = |&(ah, hw, f, c, n, df): &Fig12Config| fig12_point(ah, hw, f, c, n, df);
        let seq: Vec<Fig12Row> = configs.iter().map(point).collect();
        let par = pool::run_batch(4, &configs, point);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(
                (s.ah, s.hw, s.f, s.c, s.n, s.dataflow),
                (p.ah, p.hw, p.f, p.c, p.n, p.dataflow)
            );
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.events_processed, p.events_processed);
            assert_eq!(s.ops_interpreted, p.ops_interpreted);
        }
    }

    #[test]
    fn cancelled_sweep_returns_per_point_statuses() {
        // Pre-cancelled: the pool never claims a point; every status is
        // well-formed Cancelled and nothing simulates.
        let token = CancelToken::new();
        token.cancel();
        let st = fig12_sweep_cancellable(false, 2, RunLimits::default(), &token);
        assert_eq!(st.len(), fig12_configs(false).len());
        assert!(st.iter().all(|s| matches!(s, PointStatus::Cancelled)));
    }

    #[test]
    fn starved_sweep_fails_per_point_without_panicking() {
        // An absurd event budget: every point stops with a typed limit
        // error, surfaced per point — the batch itself never dies.
        let token = CancelToken::new();
        let limits = RunLimits {
            max_events: 1,
            ..Default::default()
        };
        let st = fig12_sweep_cancellable(false, 2, limits, &token);
        assert_eq!(st.len(), fig12_configs(false).len());
        assert!(st
            .iter()
            .all(|s| matches!(s, PointStatus::Failed(m) if m.contains("event limit"))));
    }

    #[test]
    fn fir_rows_match_paper() {
        let rows = fir_rows();
        assert_eq!(rows[0].cycles, rows[0].paper_cycles);
        assert_eq!(rows[1].cycles, rows[1].paper_cycles);
        assert_eq!(rows[2].cycles, rows[2].paper_cycles);
        let last = &rows[3];
        let err = (last.cycles as f64 - last.paper_cycles as f64).abs() / last.paper_cycles as f64;
        assert!(err < 0.01);
    }
}
