//! # equeue-bench — the experiment harness
//!
//! One driver per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index). Binaries under `src/bin/` print the same rows/series
//! the paper reports; Criterion benches under `benches/` measure the
//! simulator itself. The drivers live here so binaries, benches, and
//! integration tests share one implementation.

#![warn(missing_docs)]

use equeue_core::{simulate_with, SimLibrary, SimOptions, SimReport};
use equeue_dialect::ConvDims;
use equeue_gen::{
    build_stage_program, generate_fir, generate_systolic, FirCase, FirSpec, Stage, SystolicSpec,
};
use equeue_passes::Dataflow;
use std::time::Duration;

/// Converts the pass-level dataflow enum into the baseline's.
pub fn to_scalesim(df: Dataflow) -> scalesim::Dataflow {
    match df {
        Dataflow::Ws => scalesim::Dataflow::Ws,
        Dataflow::Is => scalesim::Dataflow::Is,
        Dataflow::Os => scalesim::Dataflow::Os,
    }
}

/// Converts a [`ConvDims`] into the baseline's shape type.
pub fn to_conv_shape(d: ConvDims) -> scalesim::ConvShape {
    scalesim::ConvShape { h: d.h, w: d.w, fh: d.fh, fw: d.fw, c: d.c, n: d.n }
}

/// Simulates a module without tracing (sweep mode).
pub fn run_quiet(module: &equeue_ir::Module) -> SimReport {
    let lib = SimLibrary::standard();
    simulate_with(module, &lib, &SimOptions { trace: false, ..Default::default() })
        .expect("simulation")
}

// ---------------------------------------------------------------------------
// Fig. 9 — EQueue vs SCALE-Sim on a 4×4 WS array
// ---------------------------------------------------------------------------

/// One comparison point of Fig. 9.
#[derive(Debug, Clone)]
pub struct Fig09Row {
    /// Sweep label (`"8x8"`).
    pub label: String,
    /// EQueue simulated cycles.
    pub equeue_cycles: u64,
    /// SCALE-Sim cycles.
    pub scalesim_cycles: u64,
    /// EQueue average SRAM ofmap write bandwidth (B/cycle).
    pub equeue_ofmap_bw: f64,
    /// SCALE-Sim average ofmap write bandwidth (B/cycle).
    pub scalesim_ofmap_bw: f64,
    /// EQueue wall-clock simulation time.
    pub equeue_time: Duration,
}

impl Fig09Row {
    /// Relative cycle error |EQ − SS| / SS.
    pub fn cycle_error(&self) -> f64 {
        (self.equeue_cycles as f64 - self.scalesim_cycles as f64).abs()
            / self.scalesim_cycles.max(1) as f64
    }
}

fn fig09_point(dims: ConvDims) -> Fig09Row {
    let spec = SystolicSpec { rows: 4, cols: 4, dataflow: Dataflow::Ws };
    let prog = generate_systolic(&spec, dims);
    let report = run_quiet(&prog.module);
    let ss = scalesim::scale_sim(
        scalesim::ArrayShape { rows: 4, cols: 4 },
        to_conv_shape(dims),
        scalesim::Dataflow::Ws,
    );
    Fig09Row {
        label: format!("{}x{}", dims.h, dims.w),
        equeue_cycles: report.cycles,
        scalesim_cycles: ss.cycles,
        equeue_ofmap_bw: report
            .memory_named("OfmapSRAM")
            .map(|m| m.avg_write_bw)
            .unwrap_or(0.0),
        scalesim_ofmap_bw: ss.avg_ofmap_write_bw,
        equeue_time: report.execution_time,
    }
}

/// Fig. 9a/b: ifmap sweep 2²…32² with fixed 2×2×3 weights.
pub fn fig09_ifmap_sweep() -> Vec<Fig09Row> {
    [2usize, 4, 8, 16, 32]
        .into_iter()
        .map(|hw| fig09_point(ConvDims::square(hw, 2.min(hw), 3, 1)))
        .collect()
}

/// Fig. 9c/d: filter sweep 2²…32² with a fixed 32×32 ifmap.
pub fn fig09_weight_sweep() -> Vec<Fig09Row> {
    [2usize, 4, 8, 16, 32]
        .into_iter()
        .map(|f| {
            let dims = ConvDims { h: 32, w: 32, fh: f, fw: f, c: 3, n: 1 };
            let mut row = fig09_point(dims);
            row.label = format!("{f}x{f}");
            row
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Fig. 11 — metrics along the lowering pipeline
// ---------------------------------------------------------------------------

/// One (stage, dataflow, size) measurement of Fig. 11.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Lowering stage.
    pub stage: Stage,
    /// Dataflow (stages before Systolic are dataflow-independent; the
    /// value records which pipeline produced the row).
    pub dataflow: Dataflow,
    /// Ifmap height/width.
    pub hw: usize,
    /// Wall-clock simulation time.
    pub execution_time: Duration,
    /// Simulated cycles.
    pub cycles: u64,
    /// Average SRAM read bandwidth.
    pub sram_read_bw: f64,
    /// Average SRAM write bandwidth.
    pub sram_write_bw: f64,
    /// Average register read bandwidth.
    pub reg_read_bw: f64,
    /// Average register write bandwidth.
    pub reg_write_bw: f64,
}

/// Runs the Fig. 11 grid: stages × dataflows for the given sizes, on a
/// 4×4 array with `Fh=Fw=3, C=3, N=4`.
pub fn fig11_rows(sizes: &[usize]) -> Vec<Fig11Row> {
    let mut rows = vec![];
    for &hw in sizes {
        let dims = ConvDims::square(hw, 3, 3, 4);
        for stage in Stage::all() {
            for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
                let prog = build_stage_program(stage, dims, (4, 4), df);
                let report = run_quiet(&prog.module);
                rows.push(Fig11Row {
                    stage,
                    dataflow: df,
                    hw,
                    execution_time: report.execution_time,
                    cycles: report.cycles,
                    sram_read_bw: report.read_bw_of_kind("SRAM"),
                    sram_write_bw: report.write_bw_of_kind("SRAM"),
                    reg_read_bw: report.read_bw_of_kind("Register"),
                    reg_write_bw: report.write_bw_of_kind("Register"),
                });
            }
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Fig. 12 — scalability sweep
// ---------------------------------------------------------------------------

/// One point of the Fig. 12 scatter plots.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Array rows (`Ah`; `Aw = 64/Ah`).
    pub ah: usize,
    /// Problem size (`H = W`).
    pub hw: usize,
    /// Filter size (`Fh = Fw`).
    pub f: usize,
    /// Channels.
    pub c: usize,
    /// Filters.
    pub n: usize,
    /// Dataflow.
    pub dataflow: Dataflow,
    /// EQueue simulated cycles.
    pub cycles: u64,
    /// SCALE-Sim cycles (cross-check).
    pub scalesim_cycles: u64,
    /// Wall-clock simulation time.
    pub execution_time: Duration,
    /// SRAM peak write bandwidth × portion (Fig. 12b's y-axis).
    pub peak_write_bw_x_portion: f64,
    /// The paper's loop-iteration count `⌈D1/Ah⌉·⌈D2/Aw⌉`.
    pub loop_iterations: usize,
}

/// Enumerates the sweep. `full` gives the paper's complete grid
/// (5×5×3×3×6×3 = 4,050 candidate combinations before validity
/// filtering); otherwise a subsample.
pub fn fig12_configs(full: bool) -> Vec<(usize, usize, usize, usize, usize, Dataflow)> {
    let (ahs, hws, fs, cs, ns): (Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>, Vec<usize>) =
        if full {
            (
                vec![2, 4, 8, 16, 32],
                vec![2, 4, 8, 16, 32],
                vec![1, 2, 4],
                vec![1, 2, 4],
                vec![1, 2, 4, 8, 16, 32],
            )
        } else {
            (vec![2, 8, 32], vec![4, 16], vec![1, 4], vec![1, 4], vec![1, 8, 32])
        };
    let mut out = vec![];
    for &ah in &ahs {
        for &hw in &hws {
            for &f in &fs {
                if f > hw {
                    continue; // filter must fit
                }
                for &c in &cs {
                    for &n in &ns {
                        for df in [Dataflow::Ws, Dataflow::Is, Dataflow::Os] {
                            out.push((ah, hw, f, c, n, df));
                        }
                    }
                }
            }
        }
    }
    out
}

/// Runs one sweep point.
pub fn fig12_point(ah: usize, hw: usize, f: usize, c: usize, n: usize, df: Dataflow) -> Fig12Row {
    let aw = 64 / ah;
    let dims = ConvDims { h: hw, w: hw, fh: f, fw: f, c, n };
    let spec = SystolicSpec { rows: ah, cols: aw, dataflow: df };
    let prog = generate_systolic(&spec, dims);
    let report = run_quiet(&prog.module);
    let ss = scalesim::scale_sim(
        scalesim::ArrayShape { rows: ah, cols: aw },
        to_conv_shape(dims),
        to_scalesim(df),
    );
    // The ofmap drain connection is the second one created.
    let peak = report
        .connections
        .get(1)
        .map(|cr| cr.write.max_bw * cr.write.max_bw_portion)
        .unwrap_or(0.0);
    Fig12Row {
        ah,
        hw,
        f,
        c,
        n,
        dataflow: df,
        cycles: report.cycles,
        scalesim_cycles: ss.cycles,
        execution_time: report.execution_time,
        peak_write_bw_x_portion: peak,
        loop_iterations: prog.loop_iterations(),
    }
}

/// Runs the whole sweep.
pub fn fig12_sweep(full: bool) -> Vec<Fig12Row> {
    fig12_configs(full)
        .into_iter()
        .map(|(ah, hw, f, c, n, df)| fig12_point(ah, hw, f, c, n, df))
        .collect()
}

// ---------------------------------------------------------------------------
// §VII — FIR cases
// ---------------------------------------------------------------------------

/// One FIR case measurement.
#[derive(Debug, Clone)]
pub struct FirRow {
    /// Which case.
    pub case: FirCase,
    /// EQueue simulated cycles.
    pub cycles: u64,
    /// The paper's EQueue result for the case.
    pub paper_cycles: u64,
    /// The Xilinx AIE simulator reference, where published.
    pub xilinx_cycles: Option<u64>,
    /// Wall-clock simulation time (paper: 0.07 s for case 4 vs the AIE
    /// simulator's 8 minutes).
    pub execution_time: Duration,
    /// Chrome trace JSON (Figs. 13/14 artifacts).
    pub trace_json: String,
}

/// Runs all four FIR cases.
pub fn fir_rows() -> Vec<FirRow> {
    use equeue_gen::fir_reference as r;
    FirCase::all()
        .into_iter()
        .map(|case| {
            let prog = generate_fir(FirSpec::default(), case);
            let report = equeue_core::simulate(&prog.module).expect("simulation");
            let (paper, xilinx) = match case {
                FirCase::SingleCore => (r::PAPER_CASE1, Some(r::XILINX_CASE1)),
                FirCase::Pipelined16 => (r::PAPER_CASE2, None),
                FirCase::Bandwidth16 => (r::PAPER_CASE3, None),
                FirCase::Balanced4 => (r::PAPER_CASE4, Some(r::XILINX_CASE4)),
            };
            FirRow {
                case,
                cycles: report.cycles,
                paper_cycles: paper,
                xilinx_cycles: xilinx,
                execution_time: report.execution_time,
                trace_json: report.trace.to_chrome_json(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig09_equeue_tracks_scalesim() {
        for row in fig09_ifmap_sweep() {
            assert!(
                row.cycle_error() < 0.02,
                "{}: equeue {} vs scalesim {}",
                row.label,
                row.equeue_cycles,
                row.scalesim_cycles
            );
        }
    }

    #[test]
    fn fig12_small_sweep_consistent() {
        let rows = fig12_sweep(false);
        assert!(rows.len() > 100, "sweep too small: {}", rows.len());
        for r in &rows {
            let err = (r.cycles as f64 - r.scalesim_cycles as f64).abs()
                / r.scalesim_cycles.max(1) as f64;
            assert!(
                err < 0.05,
                "ah={} hw={} f={} c={} n={} {:?}: {} vs {}",
                r.ah,
                r.hw,
                r.f,
                r.c,
                r.n,
                r.dataflow,
                r.cycles,
                r.scalesim_cycles
            );
            // Cycles are proportional to loop iterations (Fig. 12c–e).
            assert!(r.cycles as usize >= r.loop_iterations);
        }
    }

    #[test]
    fn fir_rows_match_paper() {
        let rows = fir_rows();
        assert_eq!(rows[0].cycles, rows[0].paper_cycles);
        assert_eq!(rows[1].cycles, rows[1].paper_cycles);
        assert_eq!(rows[2].cycles, rows[2].paper_cycles);
        let last = &rows[3];
        let err = (last.cycles as f64 - last.paper_cycles as f64).abs()
            / last.paper_cycles as f64;
        assert!(err < 0.01);
    }
}
