//! A dependency-free std-thread worker pool for embarrassingly parallel
//! batches.
//!
//! The Fig. 12 design-space sweep runs hundreds of *independent*
//! simulations; with [`crate::run_quiet`] dominating wall-clock, sharding
//! them across cores is the standard bulk-synchronous route to sweep
//! throughput (cf. Manticore, GSIM). The workspace carries zero external
//! dependencies, so instead of rayon this module provides one primitive:
//! [`run_batch`], a scoped thread pool pulling work items off a shared
//! atomic index.
//!
//! Determinism: results are stored by input index, so the output order — and
//! therefore every aggregate computed from it — is identical at any job
//! count, including `jobs == 1` (which short-circuits to a plain sequential
//! loop on the caller's thread). Only wall-clock changes with `jobs`.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (the `--jobs` default); 1 when the
/// runtime cannot tell.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested job count: `0` means "use [`default_jobs`]" — the
/// convention the `--jobs` flags use for "not specified".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Parses the value token following a `--jobs` flag for the bench binaries
/// (`program` names the binary in the diagnostic). **Exits the process with
/// status 2** on a missing or malformed value — CLI-argument handling, not
/// for library use.
pub fn parse_jobs_arg(program: &str, value: Option<String>) -> usize {
    let v = value.unwrap_or_default();
    v.parse().unwrap_or_else(|_| {
        eprintln!("{program}: --jobs needs a number, got '{v}'");
        std::process::exit(2);
    })
}

/// Applies `f` to every item on a pool of `jobs` worker threads
/// (`jobs == 0` → [`default_jobs`]), returning the results **in input
/// order**.
///
/// Work is distributed dynamically: each worker claims the next unclaimed
/// index from a shared atomic counter, so long-running items (large sweep
/// points) do not stall a statically assigned shard. `f` must be freely
/// callable from several threads at once — which [`equeue_core`] guarantees
/// for simulation, since a [`equeue_core::CompiledModule`] and everything
/// else a run reads are `Send + Sync` and all mutable state is per-run.
///
/// A panic in `f` propagates to the caller once the remaining workers have
/// drained (std scoped-thread semantics).
///
/// # Examples
///
/// ```
/// let squares = equeue_bench::pool::run_batch(4, &[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn run_batch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    // One slot per item: workers write results home by index, so no
    // cross-thread contention beyond the claim counter and the final
    // collection preserves input order.
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker pool left a slot unfilled")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_at_any_job_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(
                run_batch(jobs, &items, |&x| x * 3 + 1),
                expect,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(resolve_jobs(0), default_jobs());
        assert_eq!(resolve_jobs(3), 3);
        assert!(default_jobs() >= 1);
        assert_eq!(run_batch(0, &[1, 2, 3], |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_tiny_batches() {
        let empty: Vec<u32> = vec![];
        assert_eq!(run_batch(8, &empty, |&x| x), Vec::<u32>::new());
        assert_eq!(run_batch(8, &[42], |&x| x), vec![42]);
    }

    #[test]
    fn more_jobs_than_items_processes_each_once() {
        let calls = AtomicUsize::new(0);
        let out = run_batch(16, &[10, 20, 30], |&x| {
            calls.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn workers_cover_all_indices_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let n = 200;
        let items: Vec<usize> = (0..n).collect();
        run_batch(4, &items, |&i| {
            assert!(seen.lock().unwrap().insert(i), "index {i} claimed twice");
        });
        assert_eq!(seen.lock().unwrap().len(), n);
    }
}
