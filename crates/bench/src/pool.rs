//! A dependency-free std-thread worker pool for embarrassingly parallel
//! batches.
//!
//! The Fig. 12 design-space sweep runs hundreds of *independent*
//! simulations; with [`crate::run_quiet`] dominating wall-clock, sharding
//! them across cores is the standard bulk-synchronous route to sweep
//! throughput (cf. Manticore, GSIM). The workspace carries zero external
//! dependencies, so instead of rayon this module provides one primitive
//! family: [`run_batch_status`], a scoped thread pool pulling work items
//! off a shared atomic index, plus the infallible wrapper [`run_batch`].
//!
//! Robustness: every work item runs under `catch_unwind`, so one panicking
//! point surfaces as [`PointStatus::Failed`] for that item — it cannot
//! poison slots, drop results, or stall the rest of the batch. A
//! [`CancelToken`] is checked before each claim, so a cancelled sweep stops
//! promptly and reports the unrun points as [`PointStatus::Cancelled`].
//!
//! Determinism: results are stored by input index, so the output order — and
//! therefore every aggregate computed from it — is identical at any job
//! count, including `jobs == 1` (which short-circuits to a plain sequential
//! loop on the caller's thread). Only wall-clock changes with `jobs`.

use equeue_core::CancelToken;
use std::any::Any;
use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The machine's available parallelism (the `--jobs` default); 1 when the
/// runtime cannot tell.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Resolves a requested job count: `0` means "use [`default_jobs`]" — the
/// convention the `--jobs` flags use for "not specified".
pub fn resolve_jobs(requested: usize) -> usize {
    if requested == 0 {
        default_jobs()
    } else {
        requested
    }
}

/// Parses the value token following a thread-count flag (`--jobs`,
/// `--threads`, …) for the bench binaries (`program` names the binary and
/// `flag` the option in the diagnostic). The parsed count follows the
/// [`resolve_jobs`] convention: `0` means "use the machine's available
/// parallelism". **Exits the process with status 2** on a missing or
/// malformed value — CLI-argument handling, not for library use.
pub fn parse_count_arg(program: &str, flag: &str, value: Option<String>) -> usize {
    let v = value.unwrap_or_default();
    v.parse().unwrap_or_else(|_| {
        eprintln!("{program}: {flag} needs a number, got '{v}'");
        std::process::exit(2);
    })
}

/// Parses the value token following a `--jobs` flag — see
/// [`parse_count_arg`].
pub fn parse_jobs_arg(program: &str, value: Option<String>) -> usize {
    parse_count_arg(program, "--jobs", value)
}

/// The per-item outcome of a batched run: every input index gets exactly
/// one status, in input order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointStatus<R> {
    /// The item completed and produced a result.
    Done(R),
    /// The item failed (its closure reported an error or panicked); the
    /// message describes why.
    Failed(String),
    /// The item never ran because the batch was cancelled first.
    Cancelled,
}

impl<R> PointStatus<R> {
    /// The result, if this point completed.
    pub fn done(&self) -> Option<&R> {
        match self {
            PointStatus::Done(r) => Some(r),
            _ => None,
        }
    }

    /// Whether this point completed.
    pub fn is_done(&self) -> bool {
        matches!(self, PointStatus::Done(_))
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Applies `f` to every item on a pool of `jobs` worker threads
/// (`jobs == 0` → [`default_jobs`]), returning one [`PointStatus`] per item
/// **in input order**.
///
/// Work is distributed dynamically: each worker claims the next unclaimed
/// index from a shared atomic counter, so long-running items (large sweep
/// points) do not stall a statically assigned shard. `f` must be freely
/// callable from several threads at once — which [`equeue_core`] guarantees
/// for simulation, since a [`equeue_core::CompiledModule`] and everything
/// else a run reads are `Send + Sync` and all mutable state is per-run.
///
/// Each call to `f` runs under `catch_unwind`: a panic becomes
/// [`PointStatus::Failed`] carrying the panic message, and the rest of the
/// batch is unaffected. When `cancel` is set, workers check it before each
/// claim; items never claimed end as [`PointStatus::Cancelled`].
///
/// # Examples
///
/// ```
/// use equeue_bench::pool::{run_batch_status, PointStatus};
/// let st = run_batch_status(2, &[1u64, 2, 3], None, |&x| PointStatus::Done(x * x));
/// assert_eq!(st[2], PointStatus::Done(9));
/// ```
pub fn run_batch_status<T, R, F>(
    jobs: usize,
    items: &[T],
    cancel: Option<&CancelToken>,
    f: F,
) -> Vec<PointStatus<R>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> PointStatus<R> + Sync,
{
    let jobs = resolve_jobs(jobs).min(items.len());
    let cancelled = || cancel.is_some_and(CancelToken::is_cancelled);
    let run_one = |item: &T| -> PointStatus<R> {
        match catch_unwind(AssertUnwindSafe(|| f(item))) {
            Ok(st) => st,
            Err(payload) => PointStatus::Failed(panic_message(payload.as_ref())),
        }
    };
    if jobs <= 1 {
        return items
            .iter()
            .map(|item| {
                if cancelled() {
                    PointStatus::Cancelled
                } else {
                    run_one(item)
                }
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    // One slot per item: workers write results home by index, so no
    // cross-thread contention beyond the claim counter and the final
    // collection preserves input order. Slots left `None` (possible only
    // after cancellation) collect as `Cancelled`.
    let slots: Vec<Mutex<Option<PointStatus<R>>>> =
        items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                if cancelled() {
                    break;
                }
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    break;
                };
                let st = run_one(item);
                if let Ok(mut slot) = slots[i].lock() {
                    *slot = Some(st);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .ok()
                .flatten()
                .unwrap_or(PointStatus::Cancelled)
        })
        .collect()
}

/// Applies `f` to every item on a pool of `jobs` worker threads, returning
/// the results **in input order**. Infallible wrapper over
/// [`run_batch_status`] for closures that cannot fail.
///
/// A panic in `f` no longer kills the batch mid-flight: the remaining items
/// all complete, then the first panic message is re-raised on the caller's
/// thread — no result slot is ever silently dropped.
///
/// # Panics
///
/// Re-raises (with its message) the first panic any work item produced.
///
/// # Examples
///
/// ```
/// let squares = equeue_bench::pool::run_batch(4, &[1u64, 2, 3, 4, 5], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn run_batch<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let statuses = run_batch_status(jobs, items, None, |item| PointStatus::Done(f(item)));
    let mut out = Vec::with_capacity(statuses.len());
    for (i, st) in statuses.into_iter().enumerate() {
        match st {
            PointStatus::Done(r) => out.push(r),
            PointStatus::Failed(msg) => panic!("batch item {i} panicked: {msg}"),
            // Unreachable without a cancel token, but keep the message
            // honest if that ever changes.
            PointStatus::Cancelled => panic!("batch item {i} never ran"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_input_order_at_any_job_count() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 8, 64] {
            assert_eq!(
                run_batch(jobs, &items, |&x| x * 3 + 1),
                expect,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn zero_jobs_means_available_parallelism() {
        assert_eq!(resolve_jobs(0), default_jobs());
        assert_eq!(resolve_jobs(3), 3);
        assert!(default_jobs() >= 1);
        assert_eq!(run_batch(0, &[1, 2, 3], |&x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_tiny_batches() {
        let empty: Vec<u32> = vec![];
        assert_eq!(run_batch(8, &empty, |&x| x), Vec::<u32>::new());
        assert_eq!(run_batch(8, &[42], |&x| x), vec![42]);
    }

    #[test]
    fn more_jobs_than_items_processes_each_once() {
        let calls = AtomicUsize::new(0);
        let out = run_batch(16, &[10, 20, 30], |&x| {
            calls.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(calls.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn workers_cover_all_indices_exactly_once() {
        let seen = Mutex::new(HashSet::new());
        let n = 200;
        let items: Vec<usize> = (0..n).collect();
        run_batch(4, &items, |&i| {
            assert!(seen.lock().unwrap().insert(i), "index {i} claimed twice");
        });
        assert_eq!(seen.lock().unwrap().len(), n);
    }

    #[test]
    fn panicking_item_becomes_failed_status_and_batch_completes() {
        let items: Vec<u32> = (0..16).collect();
        for jobs in [1, 4] {
            let st = run_batch_status(jobs, &items, None, |&x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                PointStatus::Done(x * 2)
            });
            assert_eq!(st.len(), 16, "jobs={jobs}");
            for (i, s) in st.iter().enumerate() {
                if i == 7 {
                    assert!(
                        matches!(s, PointStatus::Failed(m) if m.contains("boom at 7")),
                        "jobs={jobs}, got {s:?}"
                    );
                } else {
                    assert_eq!(*s, PointStatus::Done(i as u32 * 2), "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn run_batch_propagates_panic_after_draining() {
        let done = AtomicUsize::new(0);
        let items: Vec<u32> = (0..8).collect();
        let res = catch_unwind(AssertUnwindSafe(|| {
            run_batch(2, &items, |&x| {
                if x == 3 {
                    panic!("lost point");
                }
                done.fetch_add(1, Ordering::SeqCst);
                x
            })
        }));
        assert!(res.is_err());
        // Every non-panicking item still ran to completion.
        assert_eq!(done.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn pre_cancelled_batch_runs_nothing() {
        let token = CancelToken::new();
        token.cancel();
        let calls = AtomicUsize::new(0);
        for jobs in [1, 4] {
            let st = run_batch_status(jobs, &[1u8, 2, 3], Some(&token), |_| {
                calls.fetch_add(1, Ordering::SeqCst);
                PointStatus::Done(())
            });
            assert!(
                st.iter().all(|s| *s == PointStatus::Cancelled),
                "jobs={jobs}"
            );
        }
        assert_eq!(calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn mid_run_cancel_reports_per_point_statuses() {
        let token = CancelToken::new();
        let items: Vec<u32> = (0..64).collect();
        let fired = AtomicUsize::new(0);
        let st = run_batch_status(2, &items, Some(&token), |&x| {
            // Cancel after a few points have gone through.
            if fired.fetch_add(1, Ordering::SeqCst) == 4 {
                token.cancel();
            }
            PointStatus::Done(x)
        });
        assert_eq!(st.len(), 64);
        let done = st.iter().filter(|s| s.is_done()).count();
        let cancelled = st.iter().filter(|s| **s == PointStatus::Cancelled).count();
        assert_eq!(done + cancelled, 64);
        assert!(done >= 5, "the in-flight points completed");
        assert!(cancelled > 0, "the tail was cancelled");
    }
}
