//! Criterion bench for the Fig. 9 comparison: one EQueue systolic
//! simulation and the SCALE-Sim analytical baseline on the same workload.

use criterion::{criterion_group, criterion_main, Criterion};
use equeue_bench::{run_quiet, to_conv_shape, to_scalesim};
use equeue_dialect::ConvDims;
use equeue_gen::{generate_systolic, SystolicSpec};
use equeue_passes::Dataflow;
use std::hint::black_box;

fn bench_fig09(c: &mut Criterion) {
    let dims = ConvDims::square(16, 2, 3, 1);
    let spec = SystolicSpec { rows: 4, cols: 4, dataflow: Dataflow::Ws };
    let mut g = c.benchmark_group("fig09");
    g.sample_size(20);
    g.bench_function("equeue_16x16_ws", |b| {
        b.iter(|| {
            let prog = generate_systolic(black_box(&spec), black_box(dims));
            run_quiet(&prog.module).cycles
        })
    });
    g.bench_function("scalesim_16x16_ws", |b| {
        b.iter(|| {
            scalesim::scale_sim(
                scalesim::ArrayShape { rows: 4, cols: 4 },
                black_box(to_conv_shape(dims)),
                to_scalesim(Dataflow::Ws),
            )
            .cycles
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fig09);
criterion_main!(benches);
