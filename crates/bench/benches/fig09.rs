//! Bench for the Fig. 9 comparison: one EQueue systolic simulation and the
//! SCALE-Sim analytical baseline on the same workload. Self-timed — see
//! crates/bench/Cargo.toml.

#![forbid(unsafe_code)]

use equeue_bench::timing::time;
use equeue_bench::{run_quiet, to_conv_shape, to_scalesim};
use equeue_dialect::ConvDims;
use equeue_gen::{generate_systolic, SystolicSpec};
use equeue_passes::Dataflow;
use std::hint::black_box;

fn main() {
    let dims = ConvDims::square(16, 2, 3, 1);
    let spec = SystolicSpec {
        rows: 4,
        cols: 4,
        dataflow: Dataflow::Ws,
    };
    time("fig09/equeue_16x16_ws", 20, || {
        let prog = generate_systolic(black_box(&spec), black_box(dims));
        run_quiet(&prog.module).cycles
    });
    time("fig09/scalesim_16x16_ws", 20, || {
        scalesim::scale_sim(
            scalesim::ArrayShape { rows: 4, cols: 4 },
            black_box(to_conv_shape(dims)),
            to_scalesim(Dataflow::Ws),
        )
        .cycles
    });
}
