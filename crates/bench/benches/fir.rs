//! Bench for the §VII FIR cases (generation + simulation). The paper
//! reports 0.07 s for the 4-core case vs 8 minutes for the Xilinx AIE
//! simulator; this tracks our end-to-end time per case. Self-timed — see
//! crates/bench/Cargo.toml.

#![forbid(unsafe_code)]

use equeue_bench::run_quiet;
use equeue_bench::timing::time;
use equeue_gen::{generate_fir, FirCase, FirSpec};
use std::hint::black_box;

fn main() {
    for case in FirCase::all() {
        time(&format!("fir/{}", case.as_str()), 20, || {
            let prog = generate_fir(black_box(FirSpec::default()), case);
            run_quiet(&prog.module).cycles
        });
    }
}
