//! Criterion bench for the §VII FIR cases (generation + simulation). The
//! paper reports 0.07 s for the 4-core case vs 8 minutes for the Xilinx
//! AIE simulator; this tracks our end-to-end time per case.

use criterion::{criterion_group, criterion_main, Criterion};
use equeue_bench::run_quiet;
use equeue_gen::{generate_fir, FirCase, FirSpec};
use std::hint::black_box;

fn bench_fir(c: &mut Criterion) {
    let mut g = c.benchmark_group("fir");
    g.sample_size(20);
    for case in FirCase::all() {
        g.bench_function(case.as_str(), |b| {
            b.iter(|| {
                let prog = generate_fir(black_box(FirSpec::default()), case);
                run_quiet(&prog.module).cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fir);
criterion_main!(benches);
