//! Criterion bench for the Fig. 11 pipeline: simulation cost per lowering
//! stage (the paper's "execution time grows as models get more detailed").

use criterion::{criterion_group, criterion_main, Criterion};
use equeue_bench::run_quiet;
use equeue_dialect::ConvDims;
use equeue_gen::{build_stage_program, Stage};
use equeue_passes::Dataflow;
use std::hint::black_box;

fn bench_fig11(c: &mut Criterion) {
    let dims = ConvDims::square(6, 3, 3, 4);
    let mut g = c.benchmark_group("fig11");
    g.sample_size(15);
    for stage in Stage::all() {
        g.bench_function(stage.as_str(), |b| {
            b.iter(|| {
                let prog =
                    build_stage_program(black_box(stage), black_box(dims), (4, 4), Dataflow::Ws);
                run_quiet(&prog.module).cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
