//! Bench for the Fig. 11 pipeline: simulation cost per lowering stage (the
//! paper's "execution time grows as models get more detailed"). Self-timed —
//! see crates/bench/Cargo.toml.

#![forbid(unsafe_code)]

use equeue_bench::run_quiet;
use equeue_bench::timing::time;
use equeue_dialect::ConvDims;
use equeue_gen::{build_stage_program, Stage};
use equeue_passes::Dataflow;
use std::hint::black_box;

fn main() {
    let dims = ConvDims::square(6, 3, 3, 4);
    for stage in Stage::all() {
        time(&format!("fig11/{}", stage.as_str()), 15, || {
            let prog = build_stage_program(black_box(stage), black_box(dims), (4, 4), Dataflow::Ws);
            run_quiet(&prog.module).cycles
        });
    }
}
