//! Criterion bench for the Fig. 12 sweep machinery: one small and one
//! large configuration point.

use criterion::{criterion_group, criterion_main, Criterion};
use equeue_bench::{fig12_point, run_quiet};
use equeue_dialect::ConvDims;
use equeue_gen::{generate_systolic, generate_systolic_detailed, SystolicSpec};
use equeue_passes::Dataflow;
use std::hint::black_box;

fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(15);
    g.bench_function("small_point", |b| {
        b.iter(|| fig12_point(black_box(4), 8, 2, 2, 4, Dataflow::Ws).cycles)
    });
    g.bench_function("large_point", |b| {
        b.iter(|| fig12_point(black_box(2), 32, 4, 4, 32, Dataflow::Os).cycles)
    });
    // The fidelity ablation: the same configuration at wave vs per-element
    // granularity — identical cycles, very different simulation cost.
    let spec = SystolicSpec { rows: 4, cols: 4, dataflow: Dataflow::Ws };
    let dims = ConvDims::square(8, 2, 3, 2);
    g.bench_function("fidelity_wave", |b| {
        b.iter(|| run_quiet(&generate_systolic(black_box(&spec), dims).module).cycles)
    });
    g.bench_function("fidelity_per_element", |b| {
        b.iter(|| run_quiet(&generate_systolic_detailed(black_box(&spec), dims).module).cycles)
    });
    g.finish();
}

criterion_group!(benches, bench_fig12);
criterion_main!(benches);
