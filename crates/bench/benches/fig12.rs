//! Bench for the Fig. 12 sweep machinery: one small and one large
//! configuration point, plus the wave-vs-per-element fidelity ablation.
//! Self-timed — see crates/bench/Cargo.toml.

#![forbid(unsafe_code)]

use equeue_bench::timing::time;
use equeue_bench::{fig12_point, run_quiet};
use equeue_dialect::ConvDims;
use equeue_gen::{generate_systolic, generate_systolic_detailed, SystolicSpec};
use equeue_passes::Dataflow;
use std::hint::black_box;

fn main() {
    time("fig12/small_point", 15, || {
        fig12_point(black_box(4), 8, 2, 2, 4, Dataflow::Ws).cycles
    });
    time("fig12/large_point", 15, || {
        fig12_point(black_box(2), 32, 4, 4, 32, Dataflow::Os).cycles
    });
    // The fidelity ablation: the same configuration at wave vs per-element
    // granularity — identical cycles, very different simulation cost.
    let spec = SystolicSpec {
        rows: 4,
        cols: 4,
        dataflow: Dataflow::Ws,
    };
    let dims = ConvDims::square(8, 2, 3, 2);
    time("fig12/fidelity_wave", 15, || {
        run_quiet(&generate_systolic(black_box(&spec), dims).module).cycles
    });
    time("fig12/fidelity_per_element", 15, || {
        run_quiet(&generate_systolic_detailed(black_box(&spec), dims).module).cycles
    });
}
