//! Micro-benchmarks of the simulation substrate: signal cascades, event
//! queue throughput, printer/parser round-trips.
//!
//! Self-timed (`equeue_bench::timing`) — see crates/bench/Cargo.toml for why
//! these are not Criterion benches.

#![forbid(unsafe_code)]

use equeue_bench::timing::time;
use equeue_core::{simulate, SignalTable};
use equeue_dialect::{kinds, EqueueBuilder};
use equeue_ir::{parse_module, print_module, Module, OpBuilder};
use std::hint::black_box;

fn chain_module(n: usize) -> Module {
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mut dep = b.control_start();
    for _ in 0..n {
        let l = b.launch(dep, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ext_op("mac", vec![], vec![]);
            ib.ret(vec![]);
        }
        dep = l.done;
        b = OpBuilder::at_end(&mut m, blk);
    }
    b.await_all(vec![dep]);
    m
}

fn main() {
    let m = chain_module(1000);
    time("engine/event_chain_1000", 20, || {
        simulate(black_box(&m)).unwrap().cycles
    });

    time("engine/signal_cascade_10000", 20, || {
        let mut t = SignalTable::new();
        let leaves: Vec<_> = (0..10_000).map(|_| t.fresh()).collect();
        let _and = t.new_and(&leaves);
        for (i, &l) in leaves.iter().enumerate() {
            t.resolve(l, i as u64, vec![]);
        }
        t.len()
    });

    let m = chain_module(100);
    let text = print_module(&m);
    time("engine/print_parse_roundtrip", 20, || {
        let parsed = parse_module(black_box(&text)).unwrap();
        print_module(&parsed).len()
    });
}
