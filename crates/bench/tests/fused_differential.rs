//! Fused-vs-interpreter differential suite.
//!
//! The fused backend's contract is *bit identity*: for any program, running
//! under [`Backend::Fused`] must produce exactly the same simulated state as
//! [`Backend::Interp`] — cycles, scheduler wakes, interpreted-op counts,
//! final buffer contents, memory traffic, connection bandwidth — and fail
//! with the same [`SimError`] kind when the program is broken. This suite
//! enforces the contract over three surfaces:
//!
//! 1. every golden benchmark scenario (`BENCH_engine.json` rows);
//! 2. the fault-injection matrix (perturbed-but-structured programs);
//! 3. a malformed-IR fuzzer corpus (hostile text through the full
//!    parse → compile → simulate pipeline).

use std::panic::{catch_unwind, AssertUnwindSafe};

use equeue_bench::scenarios;
use equeue_core::fault::{apply_faults, Fault};
use equeue_core::{
    simulate_with, Backend, CompiledModule, RunLimits, SimError, SimLibrary, SimOptions, SimReport,
};
use equeue_dialect::ConvDims;
use equeue_gen::{
    build_stage_program, generate_fir, generate_systolic, generate_systolic_detailed, FirCase,
    FirSpec, Stage, SystolicSpec,
};
use equeue_ir::Module;
use equeue_passes::Dataflow;

fn options(backend: Backend) -> SimOptions {
    SimOptions {
        trace: false,
        backend,
        ..Default::default()
    }
}

/// Deterministic bounded options for programs that may diverge or explode:
/// event/cycle budgets only — no wall deadline, which could make the two
/// backends' outcomes differ by machine noise.
fn bounded(backend: Backend) -> SimOptions {
    SimOptions {
        trace: false,
        limits: RunLimits {
            max_cycles: 10_000_000,
            max_events: 1_000_000,
            max_live_tensor_bytes: 64 << 20,
            wall_deadline: None,
        },
        cancel: None,
        backend,
        ..Default::default()
    }
}

/// Asserts every deterministic field of the two reports matches. Skips
/// `execution_time` (wall clock) and `trace` (empty under `trace: false`).
fn assert_reports_identical(name: &str, fused: &SimReport, interp: &SimReport) {
    assert_eq!(fused.cycles, interp.cycles, "{name}: cycles");
    assert_eq!(
        fused.events_processed, interp.events_processed,
        "{name}: events"
    );
    assert_eq!(fused.ops_interpreted, interp.ops_interpreted, "{name}: ops");
    assert_eq!(fused.buffers, interp.buffers, "{name}: buffer contents");
    assert_eq!(fused.memories, interp.memories, "{name}: memory traffic");
    assert_eq!(
        fused.connections, interp.connections,
        "{name}: connection bandwidth"
    );
}

fn differential(name: &str, module: &Module) {
    let lib = SimLibrary::standard();
    let fused = simulate_with(module, &lib, &options(Backend::Fused))
        .unwrap_or_else(|e| panic!("{name} (fused): {e}"));
    let interp = simulate_with(module, &lib, &options(Backend::Interp))
        .unwrap_or_else(|e| panic!("{name} (interp): {e}"));
    assert_reports_identical(name, &fused, &interp);
}

/// The golden scenarios: the same module builders the benchmark binary
/// feeds into `BENCH_engine.json`, at sizes small enough for debug-mode CI.
fn golden_scenarios() -> Vec<(&'static str, Module)> {
    vec![
        ("matmul8_linalg", scenarios::matmul_linalg(8)),
        ("matmul4_affine", scenarios::matmul_affine(4)),
        ("matmul16_affine", scenarios::matmul_affine(16)),
        ("tensor_stream", scenarios::tensor_stream(64, 32)),
        (
            "fir_single_core",
            generate_fir(FirSpec::default(), FirCase::SingleCore).module,
        ),
        (
            "fir_balanced4",
            generate_fir(FirSpec::default(), FirCase::Balanced4).module,
        ),
        (
            "fig09_4x4_ws",
            generate_systolic(
                &SystolicSpec {
                    rows: 4,
                    cols: 4,
                    dataflow: Dataflow::Ws,
                },
                ConvDims::square(8, 2, 3, 1),
            )
            .module,
        ),
        (
            "fig11_last_stage",
            build_stage_program(
                Stage::all()[Stage::all().len() - 1],
                ConvDims::square(6, 3, 3, 2),
                (4, 4),
                Dataflow::Ws,
            )
            .module,
        ),
        (
            "systolic_detailed",
            generate_systolic_detailed(
                &SystolicSpec {
                    rows: 2,
                    cols: 2,
                    dataflow: Dataflow::Ws,
                },
                ConvDims::square(6, 2, 3, 1),
            )
            .module,
        ),
    ]
}

#[test]
fn golden_scenarios_are_bit_identical_across_backends() {
    for (name, module) in golden_scenarios() {
        differential(name, &module);
    }
}

#[test]
fn trace_enabled_runs_agree_with_fused_counters() {
    // `trace: true` forces the interpreter (traces are emitted per op), but
    // the simulated state must still match a quiet fused run exactly.
    let module = scenarios::matmul_affine(8);
    let lib = SimLibrary::standard();
    let traced = simulate_with(
        &module,
        &lib,
        &SimOptions {
            trace: true,
            backend: Backend::Fused,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(!traced.trace.is_empty(), "tracing must stay functional");
    let quiet = simulate_with(&module, &lib, &options(Backend::Fused)).unwrap();
    assert_eq!(traced.cycles, quiet.cycles);
    assert_eq!(traced.events_processed, quiet.events_processed);
    assert_eq!(traced.ops_interpreted, quiet.ops_interpreted);
    assert_eq!(traced.buffers, quiet.buffers);
}

/// A program touching every surface the faults target (mirrors the core
/// crate's fault-injection fixture): memory, launch, `affine.for`, ext op.
fn fault_target() -> Module {
    use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
    use equeue_ir::{OpBuilder, Type};
    let mut m = Module::new();
    let blk = m.top_block();
    let mut b = OpBuilder::at_end(&mut m, blk);
    let pe = b.create_proc(kinds::MAC);
    let mem = b.create_mem(kinds::SRAM, &[64], 32, 2);
    let buf = b.alloc(mem, &[16], Type::I32);
    let start = b.control_start();
    let l = b.launch(start, pe, &[buf], vec![]);
    {
        let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
        let c = ib.const_int(2, Type::I32);
        let (_, body, _iv) = ib.affine_for(0, 8, 1);
        {
            let mut lb = OpBuilder::at_end(ib.module_mut(), body);
            lb.muli(c, c);
            lb.affine_yield();
        }
        ib.read(l.body_args[0], None);
        ib.ext_op("mac", vec![], vec![]);
        ib.ret(vec![]);
    }
    let done = l.done;
    let mut b = OpBuilder::at_end(&mut m, blk);
    b.await_all(vec![done]);
    m
}

/// Runs one module under both backends and asserts outcome agreement:
/// identical reports on success, identical [`SimError`] kinds on failure.
/// Panics in either backend fail the test.
fn assert_outcomes_agree(name: &str, module: &Module) {
    let lib = SimLibrary::standard();
    let run = |backend| {
        catch_unwind(AssertUnwindSafe(|| {
            simulate_with(module, &lib, &bounded(backend))
        }))
        .unwrap_or_else(|_| panic!("{name}: panicked under {backend:?}"))
    };
    match (run(Backend::Fused), run(Backend::Interp)) {
        (Ok(f), Ok(i)) => assert_reports_identical(name, &f, &i),
        (Err(f), Err(i)) => assert_eq!(
            std::mem::discriminant(&f),
            std::mem::discriminant(&i),
            "{name}: error kinds diverge (fused: {f}, interp: {i})"
        ),
        (f, i) => panic!(
            "{name}: outcomes diverge (fused: {}, interp: {})",
            summarize(&f),
            summarize(&i)
        ),
    }
}

fn summarize(r: &Result<SimReport, SimError>) -> String {
    match r {
        Ok(rep) => format!("ok, {} cycles", rep.cycles),
        Err(e) => format!("err: {e}"),
    }
}

#[test]
fn fault_matrix_outcomes_agree_across_backends() {
    let matrix: Vec<(&str, Vec<Fault>)> = vec![
        ("zero-faults", vec![]),
        (
            "rename-to-unknown-op",
            vec![Fault::RenameOp {
                nth: 6,
                to: "bogus.op".into(),
            }],
        ),
        (
            "rename-breaks-arity",
            vec![Fault::RenameOp {
                nth: 2,
                to: "equeue.launch".into(),
            }],
        ),
        ("drop-operand", vec![Fault::DropOperand { nth: 0 }]),
        ("zero-loop-step", vec![Fault::ZeroLoopStep { nth: 0 }]),
        (
            "ext-op-small-latency",
            vec![Fault::ExtOpCycles { nth: 0, cycles: 17 }],
        ),
        (
            "ext-op-huge-latency",
            vec![Fault::ExtOpCycles {
                nth: 0,
                cycles: i64::MAX,
            }],
        ),
        (
            "corrupt-shape-negative",
            vec![Fault::CorruptShape {
                nth: 0,
                dims: vec![-4],
            }],
        ),
        (
            "corrupt-shape-overflow",
            vec![Fault::CorruptShape {
                nth: 0,
                dims: vec![i64::MAX, i64::MAX],
            }],
        ),
        ("drop-regions", vec![Fault::DropRegions { nth: 0 }]),
        (
            "stacked-faults",
            vec![
                Fault::DropOperand { nth: 2 },
                Fault::ZeroLoopStep { nth: 0 },
                Fault::CorruptShape {
                    nth: 0,
                    dims: vec![-1],
                },
            ],
        ),
    ];
    for (name, faults) in matrix {
        let mut m = fault_target();
        apply_faults(&mut m, &faults);
        assert_outcomes_agree(name, &m);
    }
}

// ---------------------------------------------------------------------------
// Malformed-IR fuzzer corpus (mirrors `fuzz_malformed_ir`, but differential)
// ---------------------------------------------------------------------------

const CORPUS: &[&str] = &[
    r#"
%kernel = "equeue.create_proc"() {kind = "MAC"} : () -> !equeue.proc
%mem = "equeue.create_mem"() {banks = 1, data_bits = 32, kind = "SRAM", shape = [8]} : () -> !equeue.mem
%buf = "equeue.alloc"(%mem) : (!equeue.mem) -> !equeue.buffer<4xi32>
%start = "equeue.control_start"() : () -> !equeue.signal
%done = "equeue.launch"(%start, %kernel, %buf) ({
^bb0(%b: !equeue.buffer<4xi32>):
  %data = "equeue.read"(%b) {segments = [1, 0, 0]} : (!equeue.buffer<4xi32>) -> tensor<4xi32>
  "equeue.return"() : () -> ()
}) : (!equeue.signal, !equeue.proc, !equeue.buffer<4xi32>) -> !equeue.signal
"equeue.await"(%done) : (!equeue.signal) -> ()
"#,
    r#"
%c0 = "arith.constant"() {value = 0} : () -> i32
%c1 = "arith.constant"() {value = 1} : () -> i32
%sum = "arith.addi"(%c0, %c1) : (i32, i32) -> i32
"affine.for"() ({
^bb0(%i: index):
  %sq = "arith.muli"(%sum, %sum) : (i32, i32) -> i32
  "affine.yield"() : () -> ()
}) {lower = 0, step = 1, upper = 4} : () -> ()
"#,
];

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// One random byte-level mutation of `text` (flip / overwrite / truncate /
/// line deletion) — enough to knock programs into every error path while
/// keeping some mutants parseable so the execution differential is live.
fn mutate(rng: &mut Rng, text: &str) -> String {
    let mut bytes = text.as_bytes().to_vec();
    match rng.below(4) {
        0 => {
            let at = rng.below(bytes.len() + 1);
            bytes.truncate(at);
        }
        1 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] ^= 1 << rng.below(8);
            }
        }
        2 => {
            if !bytes.is_empty() {
                let at = rng.below(bytes.len());
                bytes[at] = b' ' + (rng.below(95) as u8);
            }
        }
        _ => {
            let mut lines: Vec<&str> = text.lines().collect();
            if !lines.is_empty() {
                lines.remove(rng.below(lines.len()));
            }
            bytes = lines.join("\n").into_bytes();
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[test]
fn fuzzer_corpus_outcomes_agree_across_backends() {
    let mut rng = Rng(0x5EED_CAFE_F00D_D1FF);
    let mut executed = 0u32;
    for round in 0..300u32 {
        let base = CORPUS[rng.below(CORPUS.len())];
        let text = mutate(&mut rng, base);
        // Parse + compile once: failures there are backend-independent by
        // construction, so the differential only matters for modules that
        // reach execution.
        let Ok(compiled) = CompiledModule::compile_text(&text, SimLibrary::standard()) else {
            continue;
        };
        executed += 1;
        let run = |backend| {
            catch_unwind(AssertUnwindSafe(|| compiled.simulate(&bounded(backend))))
                .unwrap_or_else(|_| panic!("round {round}: panicked under {backend:?}\n{text}"))
        };
        match (run(Backend::Fused), run(Backend::Interp)) {
            (Ok(f), Ok(i)) => assert_reports_identical("fuzz", &f, &i),
            (Err(f), Err(i)) => assert_eq!(
                std::mem::discriminant(&f),
                std::mem::discriminant(&i),
                "round {round}: error kinds diverge (fused: {f}, interp: {i})\n{text}"
            ),
            (f, i) => panic!(
                "round {round}: outcomes diverge (fused: {}, interp: {})\n{text}",
                summarize(&f),
                summarize(&i)
            ),
        }
    }
    // The corpus must actually exercise the execution differential, not
    // just the parser.
    assert!(executed >= 20, "only {executed} mutants reached execution");
}
