//! Differential replay suite: checkpoint/resume must be invisible.
//!
//! The snapshot contract is *bit identity*: for any program, running to
//! completion in one shot must produce exactly the same simulated state as
//! running to cycle `N`, capturing a [`Snapshot`], and resuming it —
//! cycles, scheduler wakes, interpreted-op counts, final buffer contents,
//! memory traffic, connection bandwidth. The suite enforces the contract
//! over every golden scenario:
//!
//! 1. cut points swept early / mid / late in each scenario's run;
//! 2. all four snapshot×resume backend combinations (the fused runner may
//!    land the cut at a trace exit, but the *resumed total* must still be
//!    bit-identical to the uninterrupted run under either backend);
//! 3. a serialisation round trip on every captured snapshot —
//!    `encode → decode → resume` must equal resuming the original, and
//!    `encode(decode(bytes))` must reproduce `bytes` exactly (the
//!    canonical-encoding property, probed at xorshift-random cuts too).

use equeue_core::{Backend, CompiledModule, SimLibrary, SimOptions, SimReport, Snapshot};
use equeue_gen::scenarios::golden_scenarios;

fn options(backend: Backend) -> SimOptions {
    SimOptions {
        trace: false,
        backend,
        ..Default::default()
    }
}

/// Asserts every deterministic field of the two reports matches. Skips
/// `execution_time` (wall clock; a resumed run reports only its own
/// window) and `trace` (empty under `trace: false`).
fn assert_reports_identical(name: &str, full: &SimReport, resumed: &SimReport) {
    assert_eq!(full.cycles, resumed.cycles, "{name}: cycles");
    assert_eq!(
        full.events_processed, resumed.events_processed,
        "{name}: events"
    );
    assert_eq!(full.ops_interpreted, resumed.ops_interpreted, "{name}: ops");
    assert_eq!(full.buffers, resumed.buffers, "{name}: buffer contents");
    assert_eq!(full.memories, resumed.memories, "{name}: memory traffic");
    assert_eq!(
        full.connections, resumed.connections,
        "{name}: connection bandwidth"
    );
}

/// Early / mid / late cut points for a run of `cycles` total, deduped
/// (tiny scenarios may collapse some of them).
fn cut_points(cycles: u64) -> Vec<u64> {
    let mut cuts = vec![1, cycles / 2, cycles.saturating_sub(1).max(1)];
    cuts.dedup();
    cuts
}

#[test]
fn replay_is_bit_identical_across_cuts_and_backends() {
    for scenario in golden_scenarios() {
        let name = scenario.name;
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let full = compiled
            .simulate(&options(Backend::Fused))
            .unwrap_or_else(|e| panic!("{name}: full run: {e}"));
        for cut in cut_points(full.cycles) {
            for snap_backend in [Backend::Fused, Backend::Interp] {
                let snap = compiled
                    .snapshot(&SimOptions {
                        snapshot_at: Some(cut),
                        ..options(snap_backend)
                    })
                    .unwrap_or_else(|e| panic!("{name}: snapshot at {cut}: {e}"));
                assert_eq!(snap.requested_cut(), cut, "{name}: requested cut");
                assert!(
                    snap.actual_cut() >= cut || snap.completed(),
                    "{name}: cut {cut} landed at {} without completing",
                    snap.actual_cut()
                );
                for resume_backend in [Backend::Fused, Backend::Interp] {
                    let tag = format!("{name} cut={cut} {snap_backend:?}->{resume_backend:?}");
                    let resumed = compiled
                        .resume(&snap, &options(resume_backend))
                        .unwrap_or_else(|e| panic!("{tag}: resume: {e}"));
                    assert_reports_identical(&tag, &full, &resumed);
                    // The wire format is transparent: resuming a
                    // decode(encode(snapshot)) copy is the same as
                    // resuming the original.
                    let decoded = Snapshot::decode(&snap.encode())
                        .unwrap_or_else(|e| panic!("{tag}: decode: {e}"));
                    let replayed = compiled
                        .resume(&decoded, &options(resume_backend))
                        .unwrap_or_else(|e| panic!("{tag}: resume decoded: {e}"));
                    assert_reports_identical(&format!("{tag} (decoded)"), &full, &replayed);
                }
            }
        }
    }
}

/// A snapshot taken past the end of the run records completion and
/// resumes to the identical final report without re-executing anything.
#[test]
fn snapshot_past_completion_resumes_to_same_report() {
    for scenario in golden_scenarios() {
        let name = scenario.name;
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let full = compiled
            .simulate(&options(Backend::Fused))
            .unwrap_or_else(|e| panic!("{name}: full run: {e}"));
        let snap = compiled
            .snapshot(&SimOptions {
                snapshot_at: Some(full.cycles + 1),
                ..options(Backend::Fused)
            })
            .unwrap_or_else(|e| panic!("{name}: snapshot: {e}"));
        assert!(snap.completed(), "{name}: run should have completed");
        let resumed = compiled
            .resume(&snap, &options(Backend::Interp))
            .unwrap_or_else(|e| panic!("{name}: resume: {e}"));
        assert_reports_identical(&format!("{name} (completed)"), &full, &resumed);
    }
}

/// Windowed waveforms: resuming with `trace: true` yields exactly the
/// slice of the full-run waveform from the cut cycle onward — BEE-style
/// "checkpoint far, then capture the window you care about".
#[test]
fn resumed_trace_is_the_waveform_slice_from_the_cut() {
    let traced = |backend| SimOptions {
        trace: true,
        backend,
        ..Default::default()
    };
    for scenario in golden_scenarios() {
        let name = scenario.name;
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let full = compiled
            .simulate(&traced(Backend::Fused))
            .unwrap_or_else(|e| panic!("{name}: full run: {e}"));
        let cut = full.cycles / 2;
        // Snapshot leg untraced — the point of windowing is skipping the
        // waveform cost of the fast-forward.
        let snap = compiled
            .snapshot(&SimOptions {
                snapshot_at: Some(cut),
                ..options(Backend::Fused)
            })
            .unwrap_or_else(|e| panic!("{name}: snapshot: {e}"));
        let resumed = compiled
            .resume(&snap, &traced(Backend::Fused))
            .unwrap_or_else(|e| panic!("{name}: resume: {e}"));
        // Nothing before the cut is re-recorded…
        for e in resumed.trace.events() {
            assert!(
                e.ts >= snap.actual_cut(),
                "{name}: resumed event {}@{} precedes the cut {}",
                e.name,
                e.ts,
                snap.actual_cut()
            );
        }
        // …and per trace row (a processor or connection `tid`), the cut
        // splits the full run's event sequence at exactly one point: work
        // already executed or issued at capture time belongs to the
        // pre-cut leg, everything after replays in the resumed window. So
        // each row's resumed sequence must be a *suffix* of that row's
        // full-run sequence. (A row can be legitimately all-prefix — e.g.
        // a single analytic op issued before the cut.)
        let by_tid = |events: &[equeue_core::TraceEvent]| {
            let mut rows: std::collections::BTreeMap<String, Vec<equeue_core::TraceEvent>> =
                std::collections::BTreeMap::new();
            for e in events {
                rows.entry(e.tid.clone()).or_default().push(e.clone());
            }
            rows
        };
        let full_rows = by_tid(full.trace.events());
        for (tid, row) in by_tid(resumed.trace.events()) {
            let whole = full_rows
                .get(&tid)
                .unwrap_or_else(|| panic!("{name}: row {tid} absent from the full waveform"));
            assert!(
                row.len() <= whole.len() && row == whole[whole.len() - row.len()..],
                "{name}: row {tid}: resumed window is not a suffix of the full waveform \
                 ({} resumed vs {} full events)",
                row.len(),
                whole.len()
            );
        }
    }
}

/// Snapshots compose with the parallel engine: `threads` is a wall-clock
/// knob, so a snapshot captured under `threads: 4` and resumed under
/// `threads: 1` (and vice versa) must land on exactly the report of the
/// uninterrupted run — which itself is thread-count independent. The
/// snapshot and resume legs force the sequential path internally (the cut
/// boundary and a shard speculation window cannot overlap, and a resumed
/// engine has no create-op → group bindings), so this guards the contract
/// that the forcing stays invisible.
#[test]
fn snapshots_compose_with_thread_counts() {
    let threaded = |backend, threads| SimOptions {
        trace: false,
        backend,
        threads,
        ..Default::default()
    };
    // The multi-group scenario actually offloads at threads > 1, so the
    // uninterrupted baseline exercises real speculation.
    let module = equeue_gen::scenarios::shard_grid(4, 4, 4);
    let compiled = CompiledModule::compile(module, SimLibrary::standard())
        .unwrap_or_else(|e| panic!("shard_grid: compile: {e}"));
    let full = compiled
        .simulate(&threaded(Backend::Fused, 2))
        .unwrap_or_else(|e| panic!("shard_grid: full threads-2 run: {e}"));
    for cut in cut_points(full.cycles) {
        for (snap_threads, resume_threads) in [(4, 1), (1, 4)] {
            let tag = format!("shard_grid cut={cut} threads {snap_threads}->{resume_threads}");
            let snap = compiled
                .snapshot(&SimOptions {
                    snapshot_at: Some(cut),
                    ..threaded(Backend::Fused, snap_threads)
                })
                .unwrap_or_else(|e| panic!("{tag}: snapshot: {e}"));
            let resumed = compiled
                .resume(&snap, &threaded(Backend::Fused, resume_threads))
                .unwrap_or_else(|e| panic!("{tag}: resume: {e}"));
            assert_reports_identical(&tag, &full, &resumed);
        }
    }
    // Every golden scenario at a mid-run cut, both compositions.
    for scenario in golden_scenarios() {
        let name = scenario.name;
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let full = compiled
            .simulate(&threaded(Backend::Fused, 4))
            .unwrap_or_else(|e| panic!("{name}: full threads-4 run: {e}"));
        let cut = (full.cycles / 2).max(1);
        for (snap_threads, resume_threads) in [(4, 1), (1, 4)] {
            let tag = format!("{name} cut={cut} threads {snap_threads}->{resume_threads}");
            let snap = compiled
                .snapshot(&SimOptions {
                    snapshot_at: Some(cut),
                    ..threaded(Backend::Fused, snap_threads)
                })
                .unwrap_or_else(|e| panic!("{tag}: snapshot: {e}"));
            let resumed = compiled
                .resume(&snap, &threaded(Backend::Fused, resume_threads))
                .unwrap_or_else(|e| panic!("{tag}: resume: {e}"));
            assert_reports_identical(&tag, &full, &resumed);
        }
    }
}

/// xorshift64* — the workspace's std-only PRNG for property probes.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// Property: for every golden scenario and random cut cycles, the
/// canonical encoding is a fixed point — `encode(decode(encode(s)))`
/// equals `encode(s)` byte for byte.
#[test]
fn snapshot_roundtrip_is_byte_identical_at_random_cuts() {
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    for scenario in golden_scenarios() {
        let name = scenario.name;
        let compiled = CompiledModule::compile(scenario.module, SimLibrary::standard())
            .unwrap_or_else(|e| panic!("{name}: compile: {e}"));
        let full = compiled
            .simulate(&options(Backend::Fused))
            .unwrap_or_else(|e| panic!("{name}: full run: {e}"));
        for _ in 0..5 {
            let cut = rng.next() % full.cycles.max(1) + 1;
            let snap = compiled
                .snapshot(&SimOptions {
                    snapshot_at: Some(cut),
                    ..options(Backend::Fused)
                })
                .unwrap_or_else(|e| panic!("{name}: snapshot at {cut}: {e}"));
            let bytes = snap.encode();
            let decoded =
                Snapshot::decode(&bytes).unwrap_or_else(|e| panic!("{name}: decode at {cut}: {e}"));
            assert_eq!(
                decoded.encode(),
                bytes,
                "{name}: encoding not canonical at cut {cut}"
            );
        }
    }
}
