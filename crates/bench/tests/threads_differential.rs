//! Thread-count determinism suite for the group-sharded parallel engine.
//!
//! The engine's contract is *bit identity across thread counts*: for any
//! program, a run with [`SimOptions::threads`] = N must report exactly the
//! same simulated state as the sequential run — cycles, scheduler wakes,
//! interpreted-op counts, spawned events, final buffer contents, memory
//! traffic, connection bandwidth — for every N and under both backends.
//! Threads only change wall-clock time (and the `shard_offloads`
//! observability counter). The suite enforces the contract over:
//!
//! 1. every golden benchmark scenario × threads ∈ {1, 2, 4, 8} × both
//!    backends;
//! 2. runs under custom [`RunLimits`] (which force the sequential path):
//!    the limit-error payloads must compare equal at any thread count;
//! 3. pre-cancelled runs via [`CancelToken`] (same forcing);
//! 4. the multi-group `shard_grid` scenario, which must *actually
//!    offload* at `threads: 2` (guarding against the gates silently
//!    rejecting everything, which would make 1–3 vacuous).

use equeue_bench::scenarios;
use equeue_core::{
    simulate_with, Backend, CancelToken, CompiledModule, RunLimits, SimError, SimLibrary,
    SimOptions, SimReport,
};
use equeue_ir::Module;

const THREAD_COUNTS: &[usize] = &[2, 4, 8];

fn options(backend: Backend, threads: usize) -> SimOptions {
    SimOptions {
        trace: false,
        backend,
        threads,
        ..Default::default()
    }
}

/// Asserts every deterministic field of the two reports matches.
/// `shard_offloads` is deliberately excluded: it is observability (how
/// often speculation started), not simulated state, and may vary with
/// wall-clock timing.
fn assert_reports_identical(name: &str, seq: &SimReport, par: &SimReport) {
    assert_eq!(seq.cycles, par.cycles, "{name}: cycles");
    assert_eq!(seq.events_processed, par.events_processed, "{name}: events");
    assert_eq!(seq.events_spawned, par.events_spawned, "{name}: spawned");
    assert_eq!(seq.ops_interpreted, par.ops_interpreted, "{name}: ops");
    assert_eq!(
        seq.peak_live_tensor_bytes, par.peak_live_tensor_bytes,
        "{name}: peak live bytes"
    );
    assert_eq!(seq.buffers, par.buffers, "{name}: buffer contents");
    assert_eq!(seq.memories, par.memories, "{name}: memory traffic");
    assert_eq!(
        seq.connections, par.connections,
        "{name}: connection bandwidth"
    );
}

fn differential(name: &str, module: &Module, backend: Backend) {
    let lib = SimLibrary::standard();
    let seq = simulate_with(module, &lib, &options(backend, 1))
        .unwrap_or_else(|e| panic!("{name} (threads 1, {backend:?}): {e}"));
    for &threads in THREAD_COUNTS {
        let par = simulate_with(module, &lib, &options(backend, threads))
            .unwrap_or_else(|e| panic!("{name} (threads {threads}, {backend:?}): {e}"));
        assert_reports_identical(&format!("{name} @{threads} {backend:?}"), &seq, &par);
    }
}

#[test]
fn golden_scenarios_are_bit_identical_across_thread_counts_interp() {
    for s in scenarios::golden_scenarios() {
        differential(s.name, &s.module, Backend::Interp);
    }
}

#[test]
fn golden_scenarios_are_bit_identical_across_thread_counts_fused() {
    // `fused_trace_entries` is intentionally not compared: a shard starts
    // with a fresh fused skip-set, so the *attempt* count may differ while
    // every simulated counter stays identical (see docs/parallel-engine.md).
    for s in scenarios::golden_scenarios() {
        differential(s.name, &s.module, Backend::Fused);
    }
}

/// The multi-group scenario must actually exercise the offload path —
/// otherwise every identity above is vacuously "sequential == sequential".
#[test]
fn shard_grid_actually_offloads_at_threads_2() {
    let module = scenarios::shard_grid(4, 4, 4);
    let compiled = CompiledModule::compile(module, SimLibrary::standard()).expect("compile");
    // Static precondition: every PE+memory pair is its own group and every
    // launch is shard-pure.
    let part = compiled.partition();
    assert!(!part.degraded(), "partition degraded");
    assert!(
        part.groups().len() > 16,
        "expected >16 groups, got {}",
        part.groups().len()
    );
    assert_eq!(part.pure_launch_count(), 16, "pure launches");
    // Runtime: the first eligible launch offloads before any timing noise
    // can influence the gates, so at least one offload is deterministic.
    let report = compiled
        .simulate(&options(Backend::Fused, 2))
        .expect("threads-2 run");
    assert!(
        report.shard_offloads > 0,
        "threads-2 run never offloaded a shard"
    );
    let seq = compiled
        .simulate(&options(Backend::Fused, 1))
        .expect("threads-1 run");
    assert_eq!(seq.shard_offloads, 0, "sequential run must not offload");
    assert_reports_identical("shard_grid", &seq, &report);
}

/// Custom limits force the sequential path (`par_eligible`), so a limit
/// error must carry an identical progress payload at any thread count.
#[test]
fn limit_errors_are_identical_across_thread_counts() {
    let module = scenarios::shard_grid(4, 4, 64);
    let lib = SimLibrary::standard();
    let limited = |threads: usize| SimOptions {
        trace: false,
        limits: RunLimits {
            max_events: 8,
            ..Default::default()
        },
        backend: Backend::Fused,
        threads,
        ..Default::default()
    };
    let baseline = simulate_with(&module, &lib, &limited(1));
    let Err(SimError::Limit(base)) = baseline else {
        panic!("expected a limit error, got {baseline:?}");
    };
    for &threads in THREAD_COUNTS {
        let r = simulate_with(&module, &lib, &limited(threads));
        let Err(SimError::Limit(l)) = r else {
            panic!("threads {threads}: expected a limit error, got {r:?}");
        };
        assert_eq!(base.kind, l.kind, "threads {threads}: limit kind");
        assert_eq!(base.limit, l.limit, "threads {threads}: limit value");
        assert_eq!(
            base.progress, l.progress,
            "threads {threads}: progress payload"
        );
    }
}

/// A pre-cancelled token also forces the sequential path; the cancellation
/// error's progress payload must be thread-count independent.
#[test]
fn cancelled_runs_are_identical_across_thread_counts() {
    let module = scenarios::shard_grid(2, 2, 4);
    let lib = SimLibrary::standard();
    let cancelled = |threads: usize| {
        let token = CancelToken::new();
        token.cancel();
        SimOptions {
            trace: false,
            cancel: Some(token),
            backend: Backend::Fused,
            threads,
            ..Default::default()
        }
    };
    let base = simulate_with(&module, &lib, &cancelled(1));
    let Err(SimError::Cancelled(base)) = base else {
        panic!("expected cancellation, got {base:?}");
    };
    for &threads in THREAD_COUNTS {
        let r = simulate_with(&module, &lib, &cancelled(threads));
        let Err(SimError::Cancelled(p)) = r else {
            panic!("threads {threads}: expected cancellation, got {r:?}");
        };
        assert_eq!(base, p, "threads {threads}: progress payload");
    }
}
