//! The type system of the IR.
//!
//! Types follow MLIR's builtin type vocabulary (integers, floats, `index`,
//! `memref`, `tensor`) plus the EQueue dialect types that describe hardware
//! entities: processors, memories, DMA engines, component hierarchies,
//! connections, buffers, and event signals.
//!
//! Types are small, cheaply clonable values. Recursive positions (`memref`,
//! `tensor`, `buffer` element types) are boxed.

use std::fmt;

/// A type attached to every SSA [`Value`](crate::module::Module).
///
/// # Examples
///
/// ```
/// use equeue_ir::Type;
/// let t = Type::memref(vec![4, 4], Type::F32);
/// assert_eq!(t.to_string(), "memref<4x4xf32>");
/// assert!(t.is_shaped());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 1-bit integer (boolean).
    I1,
    /// 8-bit signless integer.
    I8,
    /// 16-bit signless integer.
    I16,
    /// 32-bit signless integer.
    I32,
    /// 64-bit signless integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
    /// Platform-width index type used by loop bounds and subscripts.
    Index,
    /// The unit type for ops with no meaningful result.
    None,
    /// A ranked memory buffer at the Affine level: `memref<4x4xf32>`.
    MemRef {
        /// Dimension sizes, outermost first.
        shape: Vec<usize>,
        /// Element type.
        elem: Box<Type>,
    },
    /// A ranked immutable tensor at the Linalg level: `tensor<8x8xi32>`.
    Tensor {
        /// Dimension sizes, outermost first.
        shape: Vec<usize>,
        /// Element type.
        elem: Box<Type>,
    },
    /// An EQueue event dependency: `!equeue.signal`.
    ///
    /// Signals are produced by event operations (`launch`, `memcpy`,
    /// `control_*`) and consumed as dependencies.
    Signal,
    /// A processor component: `!equeue.proc`.
    Proc,
    /// A memory component: `!equeue.mem`.
    Mem,
    /// A DMA component (a processor specialised for data movement):
    /// `!equeue.dma`.
    Dma,
    /// A composite component grouping sub-components: `!equeue.comp`.
    Comp,
    /// A bandwidth-constrained connection: `!equeue.conn`.
    Conn,
    /// A buffer allocated inside a memory component:
    /// `!equeue.buffer<64xi32>`.
    Buffer {
        /// Number of elements per dimension.
        shape: Vec<usize>,
        /// Element type.
        elem: Box<Type>,
    },
    /// Wildcard used by generic ops such as `equeue.op`; matches anything.
    Any,
}

impl Type {
    /// Builds a `memref` type with the given shape and element type.
    ///
    /// # Examples
    ///
    /// ```
    /// # use equeue_ir::Type;
    /// assert_eq!(Type::memref(vec![2], Type::I32).to_string(), "memref<2xi32>");
    /// ```
    pub fn memref(shape: Vec<usize>, elem: Type) -> Type {
        Type::MemRef {
            shape,
            elem: Box::new(elem),
        }
    }

    /// Builds a `tensor` type with the given shape and element type.
    pub fn tensor(shape: Vec<usize>, elem: Type) -> Type {
        Type::Tensor {
            shape,
            elem: Box::new(elem),
        }
    }

    /// Builds an `!equeue.buffer` type with the given shape and element type.
    pub fn buffer(shape: Vec<usize>, elem: Type) -> Type {
        Type::Buffer {
            shape,
            elem: Box::new(elem),
        }
    }

    /// Returns `true` for integer types (including `i1` and `index`).
    pub fn is_integer(&self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::Index
        )
    }

    /// Returns `true` for floating-point types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::F32 | Type::F64)
    }

    /// Returns `true` for shaped types (`memref`, `tensor`, `buffer`).
    pub fn is_shaped(&self) -> bool {
        matches!(
            self,
            Type::MemRef { .. } | Type::Tensor { .. } | Type::Buffer { .. }
        )
    }

    /// Returns `true` for EQueue hardware-entity types.
    pub fn is_component(&self) -> bool {
        matches!(self, Type::Proc | Type::Mem | Type::Dma | Type::Comp)
    }

    /// The shape of a shaped type, or `None` otherwise.
    pub fn shape(&self) -> Option<&[usize]> {
        match self {
            Type::MemRef { shape, .. }
            | Type::Tensor { shape, .. }
            | Type::Buffer { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// The element type of a shaped type, or `None` otherwise.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::MemRef { elem, .. } | Type::Tensor { elem, .. } | Type::Buffer { elem, .. } => {
                Some(elem)
            }
            _ => None,
        }
    }

    /// Total number of elements of a shaped type (product of dims), or
    /// `None` for unshaped types. A zero-dimensional shaped type has one
    /// element.
    pub fn num_elements(&self) -> Option<usize> {
        self.shape().map(|s| s.iter().product())
    }

    /// Bit width of scalar types; `None` for aggregates and markers.
    ///
    /// `index` is modelled as 64 bits wide.
    pub fn bit_width(&self) -> Option<usize> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I16 => Some(16),
            Type::I32 | Type::F32 => Some(32),
            Type::I64 | Type::F64 | Type::Index => Some(64),
            _ => None,
        }
    }

    /// Size in bytes of one element of this type (scalars) or of the element
    /// type (shaped types), rounded up to whole bytes.
    pub fn elem_byte_width(&self) -> Option<usize> {
        let scalar = match self {
            t if t.is_shaped() => t.elem()?,
            t => t,
        };
        scalar.bit_width().map(|b| b.div_ceil(8))
    }

    /// Whether `self` is compatible with `other` for operand/result checking:
    /// equal, or either side is [`Type::Any`].
    pub fn matches(&self, other: &Type) -> bool {
        self == other || matches!(self, Type::Any) || matches!(other, Type::Any)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn shape_str(shape: &[usize], elem: &Type) -> String {
            let mut s = String::new();
            for d in shape {
                s.push_str(&d.to_string());
                s.push('x');
            }
            s.push_str(&elem.to_string());
            s
        }
        match self {
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I16 => write!(f, "i16"),
            Type::I32 => write!(f, "i32"),
            Type::I64 => write!(f, "i64"),
            Type::F32 => write!(f, "f32"),
            Type::F64 => write!(f, "f64"),
            Type::Index => write!(f, "index"),
            Type::None => write!(f, "none"),
            Type::MemRef { shape, elem } => write!(f, "memref<{}>", shape_str(shape, elem)),
            Type::Tensor { shape, elem } => write!(f, "tensor<{}>", shape_str(shape, elem)),
            Type::Signal => write!(f, "!equeue.signal"),
            Type::Proc => write!(f, "!equeue.proc"),
            Type::Mem => write!(f, "!equeue.mem"),
            Type::Dma => write!(f, "!equeue.dma"),
            Type::Comp => write!(f, "!equeue.comp"),
            Type::Conn => write!(f, "!equeue.conn"),
            Type::Buffer { shape, elem } => write!(f, "!equeue.buffer<{}>", shape_str(shape, elem)),
            Type::Any => write!(f, "!equeue.any"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_display() {
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::F64.to_string(), "f64");
        assert_eq!(Type::Index.to_string(), "index");
        assert_eq!(Type::Signal.to_string(), "!equeue.signal");
    }

    #[test]
    fn shaped_display() {
        assert_eq!(
            Type::memref(vec![4, 4], Type::F32).to_string(),
            "memref<4x4xf32>"
        );
        assert_eq!(Type::tensor(vec![], Type::I64).to_string(), "tensor<i64>");
        assert_eq!(
            Type::buffer(vec![64], Type::I32).to_string(),
            "!equeue.buffer<64xi32>"
        );
    }

    #[test]
    fn shape_accessors() {
        let t = Type::buffer(vec![8, 2], Type::I16);
        assert_eq!(t.shape(), Some(&[8usize, 2][..]));
        assert_eq!(t.elem(), Some(&Type::I16));
        assert_eq!(t.num_elements(), Some(16));
        assert_eq!(t.elem_byte_width(), Some(2));
        assert!(t.is_shaped());
        assert!(!t.is_component());
    }

    #[test]
    fn bit_widths() {
        assert_eq!(Type::I1.bit_width(), Some(1));
        assert_eq!(Type::I1.elem_byte_width(), Some(1));
        assert_eq!(Type::I64.bit_width(), Some(64));
        assert_eq!(Type::Proc.bit_width(), None);
    }

    #[test]
    fn any_matches_everything() {
        assert!(Type::Any.matches(&Type::I32));
        assert!(Type::I32.matches(&Type::Any));
        assert!(Type::I32.matches(&Type::I32));
        assert!(!Type::I32.matches(&Type::I64));
    }

    #[test]
    fn component_predicate() {
        for t in [Type::Proc, Type::Mem, Type::Dma, Type::Comp] {
            assert!(t.is_component());
        }
        assert!(!Type::Conn.is_component());
        assert!(!Type::Signal.is_component());
    }
}
