//! Fluent construction of operations at an insertion point.
//!
//! [`OpBuilder`] is the Rust analogue of MLIR's `OpBuilder`: it tracks a
//! block and position, and dialect crates layer convenience constructors on
//! top of it (e.g. `create_proc`, `launch`) via extension traits. The paper's
//! generators (§VI-B) are written against this API.

use crate::attr::{Attr, AttrMap};
use crate::module::{BlockId, Module, OpId, RegionId, ValueId};
use crate::types::Type;

/// A builder that inserts operations sequentially into a block.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type};
/// let mut m = Module::new();
/// let block = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, block);
/// let c = b.op("arith.constant").attr("value", 4i64).result(Type::I32).finish();
/// let v = b.module().result(c, 0);
/// b.op("test.use").operand(v).finish();
/// assert_eq!(b.module().block(block).ops.len(), 2);
/// ```
#[derive(Debug)]
pub struct OpBuilder<'m> {
    module: &'m mut Module,
    block: BlockId,
    /// Next insertion index within the block.
    index: usize,
}

impl<'m> OpBuilder<'m> {
    /// Creates a builder inserting at the end of `block`.
    pub fn at_end(module: &'m mut Module, block: BlockId) -> Self {
        let index = module.block(block).ops.len();
        OpBuilder {
            module,
            block,
            index,
        }
    }

    /// Creates a builder inserting at position `index` of `block`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is larger than the number of ops in the block.
    pub fn at(module: &'m mut Module, block: BlockId, index: usize) -> Self {
        assert!(
            index <= module.block(block).ops.len(),
            "insertion index out of range"
        );
        OpBuilder {
            module,
            block,
            index,
        }
    }

    /// Creates a builder inserting immediately before `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is detached.
    pub fn before(module: &'m mut Module, op: OpId) -> Self {
        let block = match module.op(op).parent_block {
            Some(b) => b,
            None => panic!("op must be attached"),
        };
        let index = match module.op_index_in_block(op) {
            Some(i) => i,
            None => panic!("op must be attached"),
        };
        OpBuilder {
            module,
            block,
            index,
        }
    }

    /// Creates a builder inserting immediately after `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` is detached.
    pub fn after(module: &'m mut Module, op: OpId) -> Self {
        let block = match module.op(op).parent_block {
            Some(b) => b,
            None => panic!("op must be attached"),
        };
        let index = match module.op_index_in_block(op) {
            Some(i) => i + 1,
            None => panic!("op must be attached"),
        };
        OpBuilder {
            module,
            block,
            index,
        }
    }

    /// The block currently being inserted into.
    pub fn block(&self) -> BlockId {
        self.block
    }

    /// The next insertion index.
    pub fn insertion_index(&self) -> usize {
        self.index
    }

    /// Moves the insertion point to the end of `block`.
    pub fn set_insertion_point_to_end(&mut self, block: BlockId) {
        self.index = self.module.block(block).ops.len();
        self.block = block;
    }

    /// Borrows the underlying module.
    pub fn module(&self) -> &Module {
        self.module
    }

    /// Mutably borrows the underlying module.
    pub fn module_mut(&mut self) -> &mut Module {
        self.module
    }

    /// Starts a fluent op specification named `name`.
    pub fn op<'a>(&'a mut self, name: &str) -> OpSpec<'a, 'm> {
        OpSpec {
            builder: self,
            name: name.to_string(),
            operands: vec![],
            result_types: vec![],
            attrs: AttrMap::new(),
            regions: vec![],
            result_names: vec![],
        }
    }

    /// Creates a fresh region (to be attached to an op built afterwards)
    /// with one entry block taking `arg_types`; returns the region and block.
    pub fn region_with_block(&mut self, arg_types: Vec<Type>) -> (RegionId, BlockId) {
        let r = self.module.new_region(None);
        let b = self.module.new_block(r, arg_types);
        (r, b)
    }

    /// Inserts a pre-created detached op at the insertion point, advancing it.
    pub fn insert(&mut self, op: OpId) -> OpId {
        self.module.insert_op(self.block, self.index, op);
        self.index += 1;
        op
    }
}

/// In-progress operation description produced by [`OpBuilder::op`].
///
/// Terminal method [`OpSpec::finish`] creates the op and inserts it at the
/// builder's insertion point.
#[derive(Debug)]
pub struct OpSpec<'a, 'm> {
    builder: &'a mut OpBuilder<'m>,
    name: String,
    operands: Vec<ValueId>,
    result_types: Vec<Type>,
    attrs: AttrMap,
    regions: Vec<RegionId>,
    result_names: Vec<(usize, String)>,
}

impl OpSpec<'_, '_> {
    /// Appends one operand.
    pub fn operand(mut self, v: ValueId) -> Self {
        self.operands.push(v);
        self
    }

    /// Appends several operands.
    pub fn operands(mut self, vs: impl IntoIterator<Item = ValueId>) -> Self {
        self.operands.extend(vs);
        self
    }

    /// Declares one result of type `ty`.
    pub fn result(mut self, ty: Type) -> Self {
        self.result_types.push(ty);
        self
    }

    /// Declares one result of type `ty` with a printer name hint.
    pub fn named_result(mut self, ty: Type, hint: &str) -> Self {
        self.result_names
            .push((self.result_types.len(), hint.to_string()));
        self.result_types.push(ty);
        self
    }

    /// Declares several results.
    pub fn results(mut self, tys: impl IntoIterator<Item = Type>) -> Self {
        self.result_types.extend(tys);
        self
    }

    /// Sets attribute `name` to `value`.
    pub fn attr(mut self, name: &str, value: impl Into<Attr>) -> Self {
        self.attrs.set(name, value);
        self
    }

    /// Attaches a region.
    pub fn region(mut self, r: RegionId) -> Self {
        self.regions.push(r);
        self
    }

    /// Creates the op, inserts it at the insertion point, and returns its id.
    pub fn finish(self) -> OpId {
        let OpSpec {
            builder,
            name,
            operands,
            result_types,
            attrs,
            regions,
            result_names,
        } = self;
        let op = builder
            .module
            .create_op(&name, operands, result_types, attrs, regions);
        for (idx, hint) in result_names {
            let v = builder.module.result(op, idx);
            builder.module.set_value_name(v, &hint);
        }
        builder.insert(op)
    }

    /// Like [`OpSpec::finish`] but returns the op's sole result value.
    ///
    /// # Panics
    ///
    /// Panics if the op does not have exactly one result.
    pub fn finish_value(self) -> ValueId {
        assert_eq!(
            self.result_types.len(),
            1,
            "finish_value requires exactly one result"
        );
        let OpSpec {
            builder,
            name,
            operands,
            result_types,
            attrs,
            regions,
            result_names,
        } = self;
        let op = builder
            .module
            .create_op(&name, operands, result_types, attrs, regions);
        for (idx, hint) in result_names {
            let v = builder.module.result(op, idx);
            builder.module.set_value_name(v, &hint);
        }
        let v = builder.module.result(op, 0);
        builder.insert(op);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_in_order() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.op("test.a").finish();
        b.op("test.b").finish();
        let names: Vec<String> = m
            .block(blk)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["test.a", "test.b"]);
    }

    #[test]
    fn at_positions() {
        let mut m = Module::new();
        let blk = m.top_block();
        {
            let mut b = OpBuilder::at_end(&mut m, blk);
            b.op("test.a").finish();
            b.op("test.c").finish();
        }
        {
            let mut b = OpBuilder::at(&mut m, blk, 1);
            b.op("test.b").finish();
        }
        let names: Vec<String> = m
            .block(blk)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["test.a", "test.b", "test.c"]);
    }

    #[test]
    fn before_and_after() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mid = {
            let mut b = OpBuilder::at_end(&mut m, blk);
            b.op("test.mid").finish()
        };
        OpBuilder::before(&mut m, mid).op("test.pre").finish();
        OpBuilder::after(&mut m, mid).op("test.post").finish();
        let names: Vec<String> = m
            .block(blk)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["test.pre", "test.mid", "test.post"]);
    }

    #[test]
    fn fluent_spec() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let c = b
            .op("arith.constant")
            .attr("value", 7i64)
            .named_result(Type::I32, "seven")
            .finish();
        let v = b.module().result(c, 0);
        let u = b.op("test.use").operand(v).result(Type::I32).finish();
        assert_eq!(m.op(u).operands, vec![v]);
        assert_eq!(m.op(c).attrs.int("value"), Some(7));
        assert_eq!(m.value(v).name_hint.as_deref(), Some("seven"));
    }

    #[test]
    fn region_attachment() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let (r, inner) = b.region_with_block(vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), inner);
            ib.op("test.inner").finish();
        }
        let mut b = OpBuilder::at_end(&mut m, blk);
        let outer = b.op("test.outer").region(r).finish();
        assert_eq!(m.op(outer).regions, vec![r]);
        assert_eq!(m.region(r).parent_op, Some(outer));
    }
}
