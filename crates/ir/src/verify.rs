//! Structural verification: SSA visibility, use-after-erase, terminator
//! placement, plus dialect-specific hooks from the
//! [`DialectRegistry`](crate::registry::DialectRegistry).

use crate::error::{IrError, IrResult};
use crate::module::{BlockId, Module, OpId, RegionId, ValueId};
use crate::registry::DialectRegistry;
use std::collections::HashSet;

/// Verifies the whole module.
///
/// Checks performed:
///
/// 1. every operand is visible at its use (defined earlier in the same
///    block, a block argument of an enclosing block, or defined in an
///    enclosing region before the enclosing op);
/// 2. no operand refers to a result of an erased op;
/// 3. ops marked `is_terminator` in the registry appear only as the last op
///    of their block, and nothing follows them;
/// 4. each op's registered dialect verifier passes.
///
/// # Errors
///
/// Returns the first violation as an [`IrError::Verify`], including the
/// offending op's name and printed form.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, DialectRegistry, verify_module};
/// let m = Module::new();
/// verify_module(&m, &DialectRegistry::new())?;
/// # Ok::<(), equeue_ir::IrError>(())
/// ```
pub fn verify_module(module: &Module, registry: &DialectRegistry) -> IrResult<()> {
    let mut visible: HashSet<ValueId> = HashSet::new();
    verify_region(module, registry, module.top_region(), &mut visible)
}

fn op_context(module: &Module, op: OpId) -> String {
    format!("in op '{}'", module.op(op).name)
}

fn verify_region(
    module: &Module,
    registry: &DialectRegistry,
    region: RegionId,
    visible: &mut HashSet<ValueId>,
) -> IrResult<()> {
    let mut introduced: Vec<ValueId> = vec![];
    for &block in &module.region(region).blocks {
        verify_block(module, registry, block, visible, &mut introduced)?;
    }
    for v in introduced {
        visible.remove(&v);
    }
    Ok(())
}

fn verify_block(
    module: &Module,
    registry: &DialectRegistry,
    block: BlockId,
    visible: &mut HashSet<ValueId>,
    introduced: &mut Vec<ValueId>,
) -> IrResult<()> {
    for &arg in &module.block(block).args {
        visible.insert(arg);
        introduced.push(arg);
    }
    let ops: Vec<OpId> = module
        .block(block)
        .ops
        .iter()
        .copied()
        .filter(|&o| !module.op(o).erased)
        .collect();
    for (i, &op) in ops.iter().enumerate() {
        let data = module.op(op);
        for (oi, &operand) in data.operands.iter().enumerate() {
            if !visible.contains(&operand) {
                return Err(IrError::verify(format!(
                    "operand {oi} {} is not visible at its use {}",
                    operand,
                    op_context(module, op)
                )));
            }
            if let crate::module::ValueDef::OpResult { op: def_op, .. } = module.value(operand).def
            {
                if module.op(def_op).erased {
                    return Err(IrError::verify(format!(
                        "operand {oi} {} refers to an erased op {}",
                        operand,
                        op_context(module, op)
                    )));
                }
            }
        }
        let traits = registry.traits(&data.name);
        if traits.is_terminator && i + 1 != ops.len() {
            return Err(IrError::verify(format!(
                "terminator '{}' is not the last op of its block",
                data.name
            )));
        }
        if let Err(msg) = registry.verify_op(module, op) {
            return Err(IrError::verify(format!("{msg} {}", op_context(module, op))));
        }
        for &r in &data.regions {
            verify_region(module, registry, r, visible)?;
        }
        for &res in &data.results {
            visible.insert(res);
            introduced.push(res);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;
    use crate::registry::OpTraits;
    use crate::types::Type;

    #[test]
    fn empty_module_verifies() {
        assert!(verify_module(&Module::new(), &DialectRegistry::new()).is_ok());
    }

    #[test]
    fn def_before_use_ok() {
        let mut m = Module::new();
        let blk = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(blk, a);
        let v = m.result(a, 0);
        let u = m.create_op("t.u", vec![v], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, u);
        assert!(verify_module(&m, &DialectRegistry::new()).is_ok());
    }

    #[test]
    fn use_before_def_rejected() {
        let mut m = Module::new();
        let blk = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        let v = m.result(a, 0);
        let u = m.create_op("t.u", vec![v], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, u);
        m.append_op(blk, a);
        let e = verify_module(&m, &DialectRegistry::new()).unwrap_err();
        assert!(e.to_string().contains("not visible"));
    }

    #[test]
    fn use_of_erased_rejected() {
        let mut m = Module::new();
        let blk = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(blk, a);
        let v = m.result(a, 0);
        let u = m.create_op("t.u", vec![v], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, u);
        // Erase the def but leave the user: detaching removes it from the
        // block, so visibility fails first; check the message mentions either.
        m.erase_op(a);
        let e = verify_module(&m, &DialectRegistry::new()).unwrap_err();
        let msg = e.to_string();
        assert!(
            msg.contains("not visible") || msg.contains("erased"),
            "{msg}"
        );
    }

    #[test]
    fn outer_value_visible_in_region() {
        let mut m = Module::new();
        let blk = m.top_block();
        let a = m.create_op("t.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(blk, a);
        let v = m.result(a, 0);
        let r = m.new_region(None);
        let ib = m.new_block(r, vec![]);
        let inner = m.create_op("t.u", vec![v], vec![], AttrMap::new(), vec![]);
        m.append_op(ib, inner);
        let outer = m.create_op("t.outer", vec![], vec![], AttrMap::new(), vec![r]);
        m.append_op(blk, outer);
        assert!(verify_module(&m, &DialectRegistry::new()).is_ok());
    }

    #[test]
    fn region_value_not_visible_outside() {
        let mut m = Module::new();
        let blk = m.top_block();
        let r = m.new_region(None);
        let ib = m.new_block(r, vec![]);
        let inner = m.create_op("t.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(ib, inner);
        let v = m.result(inner, 0);
        let outer = m.create_op("t.outer", vec![], vec![], AttrMap::new(), vec![r]);
        m.append_op(blk, outer);
        let u = m.create_op("t.u", vec![v], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, u);
        let e = verify_module(&m, &DialectRegistry::new()).unwrap_err();
        assert!(e.to_string().contains("not visible"));
    }

    #[test]
    fn block_args_visible() {
        let mut m = Module::new();
        let blk = m.top_block();
        let r = m.new_region(None);
        let ib = m.new_block(r, vec![Type::I32]);
        let arg = m.block(ib).args[0];
        let inner = m.create_op("t.u", vec![arg], vec![], AttrMap::new(), vec![]);
        m.append_op(ib, inner);
        let outer = m.create_op("t.outer", vec![], vec![], AttrMap::new(), vec![r]);
        m.append_op(blk, outer);
        assert!(verify_module(&m, &DialectRegistry::new()).is_ok());
    }

    #[test]
    fn terminator_must_be_last() {
        let mut reg = DialectRegistry::new();
        reg.register_op(
            "t.ret",
            OpTraits {
                is_terminator: true,
                ..Default::default()
            },
            None,
        );
        let mut m = Module::new();
        let blk = m.top_block();
        let ret = m.create_op("t.ret", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, ret);
        let after = m.create_op("t.after", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, after);
        let e = verify_module(&m, &reg).unwrap_err();
        assert!(e.to_string().contains("terminator"));
    }

    #[test]
    fn dialect_verifier_invoked() {
        fn needs_kind(m: &Module, op: OpId) -> Result<(), String> {
            if m.op(op).attrs.contains("kind") {
                Ok(())
            } else {
                Err("missing 'kind' attribute".into())
            }
        }
        let mut reg = DialectRegistry::new();
        reg.register_op("t.k", OpTraits::default(), Some(needs_kind));
        let mut m = Module::new();
        let blk = m.top_block();
        let op = m.create_op("t.k", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, op);
        let e = verify_module(&m, &reg).unwrap_err();
        assert!(e.to_string().contains("missing 'kind'"));
    }
}
