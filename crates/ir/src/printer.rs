//! Textual printing of modules in an MLIR-flavoured generic syntax.
//!
//! The grammar is intentionally the *generic* MLIR operation form:
//!
//! ```text
//! %done = "equeue.launch"(%start, %proc) ({
//! ^bb0(%buf: !equeue.buffer<64xi32>):
//!   "equeue.return"() : () -> ()
//! }) {kind = "block"} : (!equeue.signal, !equeue.proc) -> !equeue.signal
//! ```
//!
//! Output is deterministic (attributes print sorted, values are numbered in
//! program order honouring name hints) and is accepted verbatim by
//! [`crate::parser::parse_module`], which the round-trip property tests rely
//! on.

use crate::module::{BlockId, Module, OpId, RegionId, ValueId};
use std::collections::{HashMap, HashSet};
use std::fmt::Write;

/// Prints an entire module.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type, print_module};
/// let mut m = Module::new();
/// let block = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, block);
/// b.op("arith.constant").attr("value", 1i64).result(Type::I32).finish();
/// let text = print_module(&m);
/// assert!(text.contains("\"arith.constant\"() {value = 1} : () -> i32"));
/// ```
pub fn print_module(module: &Module) -> String {
    Printer::new(module).print()
}

/// Prints a single operation (with its regions) at indent 0.
pub fn print_op(module: &Module, op: OpId) -> String {
    let mut p = Printer::new(module);
    // Name every value reachable from the op's operands first so uses of
    // outer values print stably.
    p.prename_region_free_values(op);
    let mut out = String::new();
    p.write_op(&mut out, op, 0);
    out
}

struct Printer<'m> {
    module: &'m Module,
    names: HashMap<ValueId, String>,
    taken: HashSet<String>,
    next_id: usize,
}

impl<'m> Printer<'m> {
    fn new(module: &'m Module) -> Self {
        Printer {
            module,
            names: HashMap::new(),
            taken: HashSet::new(),
            next_id: 0,
        }
    }

    fn print(mut self) -> String {
        let mut out = String::new();
        let top = self.module.top_block();
        for &op in &self.module.block(top).ops {
            if self.module.op(op).erased {
                continue;
            }
            self.write_op(&mut out, op, 0);
        }
        out
    }

    fn prename_region_free_values(&mut self, op: OpId) {
        for &v in &self.module.op(op).operands.clone() {
            self.name_of(v);
        }
    }

    fn fresh_name(&mut self, hint: Option<&str>) -> String {
        if let Some(h) = hint {
            let mut candidate = h.to_string();
            let mut i = 0;
            while self.taken.contains(&candidate) {
                i += 1;
                candidate = format!("{h}_{i}");
            }
            self.taken.insert(candidate.clone());
            return candidate;
        }
        loop {
            let candidate = format!("{}", self.next_id);
            self.next_id += 1;
            if !self.taken.contains(&candidate) {
                self.taken.insert(candidate.clone());
                return candidate;
            }
        }
    }

    fn name_of(&mut self, v: ValueId) -> String {
        if let Some(n) = self.names.get(&v) {
            return n.clone();
        }
        let hint = self.module.value(v).name_hint.clone();
        let n = self.fresh_name(hint.as_deref());
        self.names.insert(v, n.clone());
        n
    }

    fn write_op(&mut self, out: &mut String, op: OpId, indent: usize) {
        let pad = "  ".repeat(indent);
        let data = self.module.op(op);
        out.push_str(&pad);
        if !data.results.is_empty() {
            let names: Vec<String> = data
                .results
                .clone()
                .iter()
                .map(|&r| self.name_of(r))
                .collect();
            let _ = write!(out, "%{}", names.join(", %"));
            out.push_str(" = ");
        }
        let _ = write!(out, "{:?}(", data.name);
        let operand_names: Vec<String> = data
            .operands
            .clone()
            .iter()
            .map(|&v| self.name_of(v))
            .collect();
        let _ = write!(out, "%{}", operand_names.join(", %"));
        if operand_names.is_empty() {
            // Undo the stray "%" written for the empty case.
            out.truncate(out.len() - 1);
        }
        out.push(')');

        let regions = data.regions.clone();
        if !regions.is_empty() {
            out.push_str(" (");
            for (i, &r) in regions.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                self.write_region(out, r, indent);
            }
            out.push(')');
        }

        let data = self.module.op(op);
        if !data.attrs.is_empty() {
            out.push_str(" {");
            for (i, (k, v)) in data.attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k} = {v}");
            }
            out.push('}');
        }

        // Functional type signature.
        out.push_str(" : (");
        let operand_tys: Vec<String> = data
            .operands
            .iter()
            .map(|&v| self.module.value_type(v).to_string())
            .collect();
        out.push_str(&operand_tys.join(", "));
        out.push_str(") -> ");
        let result_tys: Vec<String> = data
            .results
            .iter()
            .map(|&v| self.module.value_type(v).to_string())
            .collect();
        match result_tys.len() {
            0 => out.push_str("()"),
            1 => out.push_str(&result_tys[0]),
            _ => {
                out.push('(');
                out.push_str(&result_tys.join(", "));
                out.push(')');
            }
        }
        out.push('\n');
    }

    fn write_region(&mut self, out: &mut String, region: RegionId, indent: usize) {
        out.push_str("{\n");
        for (bi, &b) in self.module.region(region).blocks.iter().enumerate() {
            self.write_block(out, b, bi, indent + 1);
        }
        out.push_str(&"  ".repeat(indent));
        out.push('}');
    }

    fn write_block(&mut self, out: &mut String, block: BlockId, index: usize, indent: usize) {
        let args = self.module.block(block).args.clone();
        if !args.is_empty() || index > 0 {
            let pad = "  ".repeat(indent.saturating_sub(1));
            let _ = write!(out, "{pad}^bb{index}(");
            for (i, &a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let n = self.name_of(a);
                let _ = write!(out, "%{n}: {}", self.module.value_type(a));
            }
            out.push_str("):\n");
        }
        for &op in &self.module.block(block).ops.clone() {
            if self.module.op(op).erased {
                continue;
            }
            self.write_op(out, op, indent);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;
    use crate::builder::OpBuilder;
    use crate::types::Type;

    #[test]
    fn simple_op() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.op("arith.constant")
            .attr("value", 4i64)
            .result(Type::I32)
            .finish();
        assert_eq!(
            print_module(&m),
            "%0 = \"arith.constant\"() {value = 4} : () -> i32\n"
        );
    }

    #[test]
    fn operands_and_multi_results() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let c = b
            .op("test.src")
            .results(vec![Type::I32, Type::I32])
            .finish();
        let (v0, v1) = (b.module().result(c, 0), b.module().result(c, 1));
        b.op("test.sink").operands(vec![v0, v1]).finish();
        let text = print_module(&m);
        assert_eq!(
            text,
            "%0, %1 = \"test.src\"() : () -> (i32, i32)\n\
             \"test.sink\"(%0, %1) : (i32, i32) -> ()\n"
        );
    }

    #[test]
    fn name_hints_and_collisions() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.op("test.a").named_result(Type::I32, "x").finish();
        b.op("test.b").named_result(Type::I32, "x").finish();
        let text = print_module(&m);
        assert!(text.contains("%x = \"test.a\""));
        assert!(text.contains("%x_1 = \"test.b\""));
    }

    #[test]
    fn regions_print_nested() {
        let mut m = Module::new();
        let blk = m.top_block();
        let r = m.new_region(None);
        let inner = m.new_block(r, vec![Type::Signal]);
        {
            let mut b = OpBuilder::at_end(&mut m, inner);
            b.op("equeue.return").finish();
        }
        let launch = m.create_op(
            "equeue.launch",
            vec![],
            vec![Type::Signal],
            AttrMap::new(),
            vec![r],
        );
        m.append_op(blk, launch);
        let text = print_module(&m);
        assert!(text.contains("\"equeue.launch\"() ({"));
        assert!(text.contains("^bb0(%1: !equeue.signal):"), "{text}");
        assert!(text.contains("  \"equeue.return\"() : () -> ()"));
        assert!(text.ends_with("}) : () -> !equeue.signal\n"));
    }

    #[test]
    fn print_single_op() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let op = b.op("test.only").finish();
        assert_eq!(print_op(&m, op), "\"test.only\"() : () -> ()\n");
    }

    #[test]
    fn erased_ops_are_skipped() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let dead = b.op("test.dead").finish();
        b.op("test.live").finish();
        m.erase_op(dead);
        let text = print_module(&m);
        assert!(!text.contains("dead"));
        assert!(text.contains("live"));
    }
}
