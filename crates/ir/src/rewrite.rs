//! Rewriting utilities shared by lowering passes: dead-code elimination,
//! region inlining, and op movement.

use crate::module::{BlockId, Module, OpId, RegionId, ValueId};
use crate::registry::DialectRegistry;
use std::collections::HashMap;

/// Erases live ops whose registered traits say `is_pure` and whose results
/// are all unused. Iterates to a fixed point; returns the number of erased
/// ops.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder, Type, DialectRegistry, OpTraits, dce};
/// let mut reg = DialectRegistry::new();
/// reg.register_op("t.pure", OpTraits { is_pure: true, ..Default::default() }, None);
/// let mut m = Module::new();
/// let blk = m.top_block();
/// OpBuilder::at_end(&mut m, blk).op("t.pure").result(Type::I32).finish();
/// assert_eq!(dce(&mut m, &reg), 1);
/// ```
pub fn dce(module: &mut Module, registry: &DialectRegistry) -> usize {
    let mut erased_total = 0;
    loop {
        let uses = module.collect_uses();
        let mut to_erase = vec![];
        module.walk(|op| {
            let data = module.op(op);
            if !registry.traits(&data.name).is_pure {
                return;
            }
            let unused = data
                .results
                .iter()
                .all(|r| uses.get(r).map(|u| u.is_empty()).unwrap_or(true));
            if unused {
                to_erase.push(op);
            }
        });
        if to_erase.is_empty() {
            break;
        }
        erased_total += to_erase.len();
        for op in to_erase {
            if !module.op(op).erased {
                module.erase_op(op);
            }
        }
    }
    erased_total
}

/// Clones every op of `region`'s entry block (except an optional trailing
/// terminator named `skip_terminator`) into `block` starting at `index`,
/// remapping values through `value_map`. Returns the cloned op ids.
///
/// Entry-block arguments of `region` must already be mapped in `value_map`.
pub fn inline_region(
    module: &mut Module,
    region: RegionId,
    block: BlockId,
    index: usize,
    value_map: &mut HashMap<ValueId, ValueId>,
    skip_terminator: Option<&str>,
) -> Vec<OpId> {
    let entry = module.region(region).blocks[0];
    let ops: Vec<OpId> = module
        .block(entry)
        .ops
        .iter()
        .copied()
        .filter(|&o| !module.op(o).erased)
        .collect();
    let mut out = vec![];
    let mut at = index;
    for op in ops {
        if let Some(term) = skip_terminator {
            if module.op(op).name == term {
                continue;
            }
        }
        let cloned = module.clone_op(op, value_map);
        module.insert_op(block, at, cloned);
        at += 1;
        out.push(cloned);
    }
    out
}

/// Moves `op` (detaching it first) to immediately before `anchor`.
///
/// # Panics
///
/// Panics if `anchor` is detached.
pub fn move_before(module: &mut Module, op: OpId, anchor: OpId) {
    module.detach_op(op);
    let block = match module.op(anchor).parent_block {
        Some(b) => b,
        None => panic!("anchor must be attached"),
    };
    let index = match module.op_index_in_block(anchor) {
        Some(i) => i,
        None => panic!("anchor must be attached"),
    };
    module.insert_op(block, index, op);
}

/// Moves `op` (detaching it first) to immediately after `anchor`.
///
/// # Panics
///
/// Panics if `anchor` is detached.
pub fn move_after(module: &mut Module, op: OpId, anchor: OpId) {
    module.detach_op(op);
    let block = match module.op(anchor).parent_block {
        Some(b) => b,
        None => panic!("anchor must be attached"),
    };
    let index = match module.op_index_in_block(anchor) {
        Some(i) => i + 1,
        None => panic!("anchor must be attached"),
    };
    module.insert_op(block, index, op);
}

/// Splits `block` at op index `at`: ops `[at..]` move into a fresh block of
/// a fresh region (both returned). Used by the split-launch pass.
pub fn split_block(module: &mut Module, block: BlockId, at: usize) -> (RegionId, BlockId) {
    let region = module.new_region(None);
    let tail_block = module.new_block(region, vec![]);
    let tail_ops: Vec<OpId> = module.block(block).ops[at..].to_vec();
    for op in tail_ops {
        module.detach_op(op);
        module.append_op(tail_block, op);
    }
    (region, tail_block)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;
    use crate::builder::OpBuilder;
    use crate::registry::OpTraits;
    use crate::types::Type;

    fn pure_registry() -> DialectRegistry {
        let mut reg = DialectRegistry::new();
        reg.register_op(
            "t.pure",
            OpTraits {
                is_pure: true,
                ..Default::default()
            },
            None,
        );
        reg
    }

    #[test]
    fn dce_erases_chains() {
        let reg = pure_registry();
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let a = b.op("t.pure").result(Type::I32).finish_value();
        b.op("t.pure").operand(a).result(Type::I32).finish();
        // Both are pure; the second is unused, then the first becomes unused.
        assert_eq!(dce(&mut m, &reg), 2);
        assert_eq!(m.live_ops().count(), 0);
    }

    #[test]
    fn dce_keeps_used_and_impure() {
        let reg = pure_registry();
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let a = b.op("t.pure").result(Type::I32).finish_value();
        b.op("t.effect").operand(a).finish();
        assert_eq!(dce(&mut m, &reg), 0);
        assert_eq!(m.live_ops().count(), 2);
    }

    #[test]
    fn inline_region_clones_and_remaps() {
        let mut m = Module::new();
        let blk = m.top_block();
        let r = m.new_region(None);
        let ib = m.new_block(r, vec![Type::I32]);
        let arg = m.block(ib).args[0];
        {
            let mut b = OpBuilder::at_end(&mut m, ib);
            b.op("t.body").operand(arg).finish();
            b.op("t.ret").finish();
        }
        let outer = m.create_op("t.outer", vec![], vec![], AttrMap::new(), vec![r]);
        m.append_op(blk, outer);
        let real = {
            let mut b = OpBuilder::at_end(&mut m, blk);
            b.op("t.real").result(Type::I32).finish_value()
        };
        let mut map = HashMap::new();
        map.insert(arg, real);
        let cloned = inline_region(&mut m, r, blk, 2, &mut map, Some("t.ret"));
        assert_eq!(cloned.len(), 1);
        assert_eq!(m.op(cloned[0]).name, "t.body");
        assert_eq!(m.op(cloned[0]).operands, vec![real]);
    }

    #[test]
    fn move_ops_around() {
        let mut m = Module::new();
        let blk = m.top_block();
        let (a, c2, b2) = {
            let mut b = OpBuilder::at_end(&mut m, blk);
            let a = b.op("t.a").finish();
            let c = b.op("t.c").finish();
            let b2 = b.op("t.b").finish();
            (a, c, b2)
        };
        move_before(&mut m, b2, c2);
        let names: Vec<String> = m
            .block(blk)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["t.a", "t.b", "t.c"]);
        move_after(&mut m, a, c2);
        let names: Vec<String> = m
            .block(blk)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(names, vec!["t.b", "t.c", "t.a"]);
    }

    #[test]
    fn split_block_moves_tail() {
        let mut m = Module::new();
        let blk = m.top_block();
        {
            let mut b = OpBuilder::at_end(&mut m, blk);
            b.op("t.a").finish();
            b.op("t.b").finish();
            b.op("t.c").finish();
        }
        let (_r, tail) = split_block(&mut m, blk, 1);
        let head: Vec<String> = m
            .block(blk)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        let tail_names: Vec<String> = m
            .block(tail)
            .ops
            .iter()
            .map(|&o| m.op(o).name.clone())
            .collect();
        assert_eq!(head, vec!["t.a"]);
        assert_eq!(tail_names, vec!["t.b", "t.c"]);
    }
}
