//! The IR container: an arena-backed module of operations, blocks, regions,
//! and SSA values.
//!
//! Mirroring MLIR, an operation is a generic record — a name, operands,
//! results, an attribute dictionary, and nested regions — and dialects give
//! meaning to particular names. All entities live in per-module arenas and
//! are addressed by small copyable ids ([`OpId`], [`ValueId`], [`BlockId`],
//! [`RegionId`]), which keeps the whole IR free of reference cycles and
//! cheap to traverse and mutate.

use crate::attr::AttrMap;
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// Identifies an [`Operation`] within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

/// Identifies an SSA value (operation result or block argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) u32);

/// Identifies a basic block within its [`Module`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

/// Identifies a region (a list of blocks owned by an operation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub(crate) u32);

impl OpId {
    /// The op's dense arena index (stable for the module's lifetime).
    /// Lets clients build side tables indexed by op — e.g. the simulation
    /// engine's pre-decoded opcode table.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The inverse of [`index`](OpId::index): rebuilds an id from a dense
    /// arena index, for clients deserialising side-table references.
    /// Performs no bounds check — callers must validate against
    /// [`Module::num_ops`] before dereferencing.
    pub fn from_index(index: usize) -> Self {
        OpId(index as u32)
    }
}

impl ValueId {
    /// The value's dense arena index (stable for the module's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl BlockId {
    /// The block's dense arena index (stable for the module's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The inverse of [`index`](BlockId::index): rebuilds an id from a
    /// dense arena index, for clients deserialising side-table references.
    /// Performs no bounds check — callers must validate against
    /// [`Module::num_blocks`] before dereferencing.
    pub fn from_index(index: usize) -> Self {
        BlockId(index as u32)
    }
}

impl RegionId {
    /// The region's dense arena index (stable for the module's lifetime).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Where an SSA value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of an operation.
    OpResult {
        /// Defining operation.
        op: OpId,
        /// Result position.
        index: usize,
    },
    /// The `index`-th argument of a block.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument position.
        index: usize,
    },
}

/// Arena record for an SSA value.
#[derive(Debug, Clone)]
pub struct ValueData {
    /// The value's type.
    pub ty: Type,
    /// Provenance of the value.
    pub def: ValueDef,
    /// Optional human-readable name used by the printer (`%kernel`).
    pub name_hint: Option<String>,
}

/// Arena record for an operation.
///
/// Operations are *generic*: dialect semantics attach to [`Operation::name`]
/// (e.g. `"equeue.launch"`), never to distinct Rust types. This is the
/// property that lets compiler passes transform hardware structure like any
/// other IR.
#[derive(Debug, Clone)]
pub struct Operation {
    /// Fully-qualified name, `"<dialect>.<mnemonic>"`.
    pub name: String,
    /// SSA operands, in order.
    pub operands: Vec<ValueId>,
    /// SSA results defined by this op, in order.
    pub results: Vec<ValueId>,
    /// The attribute dictionary.
    pub attrs: AttrMap,
    /// Nested regions, in order.
    pub regions: Vec<RegionId>,
    /// The block this op currently lives in, if attached.
    pub parent_block: Option<BlockId>,
    /// Whether the op has been erased (arena slot retained).
    pub erased: bool,
}

impl Operation {
    /// The dialect prefix of [`Operation::name`] (before the first `.`).
    pub fn dialect(&self) -> &str {
        self.name.split('.').next().unwrap_or("")
    }

    /// The mnemonic of [`Operation::name`] (after the first `.`).
    pub fn mnemonic(&self) -> &str {
        match self.name.split_once('.') {
            Some((_, m)) => m,
            None => &self.name,
        }
    }
}

/// Arena record for a basic block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block arguments (SSA values).
    pub args: Vec<ValueId>,
    /// Operations in program order.
    pub ops: Vec<OpId>,
    /// The region owning this block.
    pub parent_region: RegionId,
}

/// Arena record for a region.
#[derive(Debug, Clone)]
pub struct Region {
    /// Blocks in order; the first is the entry block.
    pub blocks: Vec<BlockId>,
    /// The operation owning this region (`None` only for the module's top
    /// region).
    pub parent_op: Option<OpId>,
}

/// An arena-backed IR module.
///
/// A fresh module owns a *top region* with a single entry block; programs are
/// built by appending operations to that block (or nested regions) through
/// the [`OpBuilder`](crate::builder::OpBuilder).
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, Type};
/// let mut m = Module::new();
/// let b = m.top_block();
/// let op = m.create_op("test.dummy", vec![], vec![Type::I32], Default::default(), vec![]);
/// m.append_op(b, op);
/// assert_eq!(m.block(b).ops.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Module {
    ops: Vec<Operation>,
    values: Vec<ValueData>,
    blocks: Vec<Block>,
    regions: Vec<Region>,
    top: RegionId,
}

impl Default for Module {
    fn default() -> Self {
        Self::new()
    }
}

impl Module {
    /// Creates an empty module with a top region containing one empty block.
    pub fn new() -> Self {
        let mut m = Module {
            ops: vec![],
            values: vec![],
            blocks: vec![],
            regions: vec![],
            top: RegionId(0),
        };
        let top = m.new_region(None);
        m.new_block(top, vec![]);
        m.top = top;
        m
    }

    /// The module's top region.
    pub fn top_region(&self) -> RegionId {
        self.top
    }

    /// The entry block of the top region, where top-level ops live.
    pub fn top_block(&self) -> BlockId {
        self.regions[self.top.0 as usize].blocks[0]
    }

    // ---- entity creation ------------------------------------------------

    /// Creates a new empty region owned by `parent_op`.
    pub fn new_region(&mut self, parent_op: Option<OpId>) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(Region {
            blocks: vec![],
            parent_op,
        });
        id
    }

    /// Creates a new block with arguments of the given types, appended to
    /// `region`.
    pub fn new_block(&mut self, region: RegionId, arg_types: Vec<Type>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        let args = arg_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                let v = ValueId(self.values.len() as u32);
                self.values.push(ValueData {
                    ty,
                    def: ValueDef::BlockArg { block: id, index },
                    name_hint: None,
                });
                v
            })
            .collect();
        self.blocks.push(Block {
            args,
            ops: vec![],
            parent_region: region,
        });
        self.regions[region.0 as usize].blocks.push(id);
        id
    }

    /// Creates a detached operation and its result values.
    ///
    /// The op is not yet inside any block; attach it with
    /// [`Module::append_op`] or [`Module::insert_op`]. Regions passed in
    /// `regions` are re-parented to the new op.
    pub fn create_op(
        &mut self,
        name: &str,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: AttrMap,
        regions: Vec<RegionId>,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        let results = result_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| {
                let v = ValueId(self.values.len() as u32);
                self.values.push(ValueData {
                    ty,
                    def: ValueDef::OpResult { op: id, index },
                    name_hint: None,
                });
                v
            })
            .collect();
        for &r in &regions {
            self.regions[r.0 as usize].parent_op = Some(id);
        }
        self.ops.push(Operation {
            name: name.to_string(),
            operands,
            results,
            attrs,
            regions,
            parent_block: None,
            erased: false,
        });
        id
    }

    /// Appends a detached op to the end of `block`.
    ///
    /// # Panics
    ///
    /// Panics if the op is already attached to a block.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        assert!(
            self.ops[op.0 as usize].parent_block.is_none(),
            "op already attached"
        );
        self.ops[op.0 as usize].parent_block = Some(block);
        self.blocks[block.0 as usize].ops.push(op);
    }

    /// Inserts a detached op into `block` at position `index`.
    ///
    /// # Panics
    ///
    /// Panics if the op is already attached or `index` is out of bounds.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        assert!(
            self.ops[op.0 as usize].parent_block.is_none(),
            "op already attached"
        );
        self.ops[op.0 as usize].parent_block = Some(block);
        self.blocks[block.0 as usize].ops.insert(index, op);
    }

    // ---- accessors ------------------------------------------------------

    /// Immutable access to an operation.
    pub fn op(&self, id: OpId) -> &Operation {
        &self.ops[id.0 as usize]
    }

    /// Mutable access to an operation.
    pub fn op_mut(&mut self, id: OpId) -> &mut Operation {
        &mut self.ops[id.0 as usize]
    }

    /// Immutable access to a value.
    pub fn value(&self, id: ValueId) -> &ValueData {
        &self.values[id.0 as usize]
    }

    /// The type of a value.
    pub fn value_type(&self, id: ValueId) -> &Type {
        &self.values[id.0 as usize].ty
    }

    /// Attaches a printer name hint (`%hint`) to a value.
    pub fn set_value_name(&mut self, id: ValueId, hint: &str) {
        self.values[id.0 as usize].name_hint = Some(hint.to_string());
    }

    /// Immutable access to a block.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Immutable access to a region.
    pub fn region(&self, id: RegionId) -> &Region {
        &self.regions[id.0 as usize]
    }

    /// The `index`-th result value of `op`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn result(&self, op: OpId, index: usize) -> ValueId {
        self.ops[op.0 as usize].results[index]
    }

    /// Number of operations ever created (including erased ones).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Number of values ever created.
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Number of blocks ever created. Lets clients build dense side tables
    /// indexed by [`BlockId::index`] — e.g. the simulation engine's fused
    /// loop-trace table.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of regions ever created. Same dense-side-table role as
    /// [`Module::num_blocks`], for clients that must bounds-check
    /// [`RegionId`]s from possibly-inconsistent (fuzzer-mutated) IR.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// All live (non-erased) op ids, in arena order.
    pub fn live_ops(&self) -> impl Iterator<Item = OpId> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, o)| !o.erased)
            .map(|(i, _)| OpId(i as u32))
    }

    // ---- traversal ------------------------------------------------------

    /// Walks every live op in the module in pre-order (op before its
    /// regions), calling `f` on each.
    pub fn walk(&self, mut f: impl FnMut(OpId)) {
        self.walk_region(self.top, &mut f);
    }

    /// Walks every live op under `region` in pre-order.
    pub fn walk_region(&self, region: RegionId, f: &mut impl FnMut(OpId)) {
        for &b in &self.regions[region.0 as usize].blocks {
            for &op in &self.blocks[b.0 as usize].ops {
                if self.ops[op.0 as usize].erased {
                    continue;
                }
                f(op);
                for &r in &self.ops[op.0 as usize].regions {
                    self.walk_region(r, f);
                }
            }
        }
    }

    /// Collects all live ops under `region`, pre-order.
    pub fn region_ops(&self, region: RegionId) -> Vec<OpId> {
        let mut out = vec![];
        self.walk_region(region, &mut |op| out.push(op));
        out
    }

    /// Finds the first live op in the module with the given name.
    pub fn find_first(&self, name: &str) -> Option<OpId> {
        let mut found = None;
        self.walk(|op| {
            if found.is_none() && self.op(op).name == name {
                found = Some(op);
            }
        });
        found
    }

    /// Collects every live op in the module with the given name, pre-order.
    pub fn find_all(&self, name: &str) -> Vec<OpId> {
        let mut out = vec![];
        self.walk(|op| {
            if self.op(op).name == name {
                out.push(op);
            }
        });
        out
    }

    // ---- use-def --------------------------------------------------------

    /// Builds a map from each value to its uses `(op, operand_index)`.
    ///
    /// The map is computed by walking the module; call it once per pass
    /// phase rather than per query.
    pub fn collect_uses(&self) -> HashMap<ValueId, Vec<(OpId, usize)>> {
        let mut uses: HashMap<ValueId, Vec<(OpId, usize)>> = HashMap::new();
        self.walk(|op| {
            for (i, &v) in self.op(op).operands.iter().enumerate() {
                uses.entry(v).or_default().push((op, i));
            }
        });
        uses
    }

    /// Whether `value` has at least one use in a live op.
    pub fn has_uses(&self, value: ValueId) -> bool {
        let mut used = false;
        self.walk(|op| {
            if !used && self.op(op).operands.contains(&value) {
                used = true;
            }
        });
        used
    }

    /// Replaces every use of `old` with `new` throughout the module.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        let all: Vec<OpId> = self.live_ops().collect();
        for op in all {
            for operand in &mut self.ops[op.0 as usize].operands {
                if *operand == old {
                    *operand = new;
                }
            }
        }
    }

    // ---- mutation -------------------------------------------------------

    /// Rewrites operand `index` of `op` to `new`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn set_operand(&mut self, op: OpId, index: usize, new: ValueId) {
        self.ops[op.0 as usize].operands[index] = new;
    }

    /// Detaches `op` from its parent block without erasing it.
    pub fn detach_op(&mut self, op: OpId) {
        if let Some(b) = self.ops[op.0 as usize].parent_block.take() {
            self.blocks[b.0 as usize].ops.retain(|&o| o != op);
        }
    }

    /// Erases `op` and, recursively, everything in its regions.
    ///
    /// The arena slots are retained but marked erased; results of erased ops
    /// must no longer be used (the verifier reports dangling uses).
    pub fn erase_op(&mut self, op: OpId) {
        self.detach_op(op);
        let regions = self.ops[op.0 as usize].regions.clone();
        for r in regions {
            let blocks = self.regions[r.0 as usize].blocks.clone();
            for b in blocks {
                let ops = self.blocks[b.0 as usize].ops.clone();
                for o in ops {
                    self.erase_op(o);
                }
            }
        }
        self.ops[op.0 as usize].erased = true;
    }

    /// Position of `op` inside its parent block, if attached.
    pub fn op_index_in_block(&self, op: OpId) -> Option<usize> {
        let b = self.ops[op.0 as usize].parent_block?;
        self.blocks[b.0 as usize].ops.iter().position(|&o| o == op)
    }

    /// Deep-clones `op` (and its regions) as a new detached op, remapping
    /// operand values through `value_map`. Cloned results/block args are
    /// added to `value_map` so later clones see them.
    pub fn clone_op(&mut self, op: OpId, value_map: &mut HashMap<ValueId, ValueId>) -> OpId {
        let src = self.ops[op.0 as usize].clone();
        let operands = src
            .operands
            .iter()
            .map(|v| *value_map.get(v).unwrap_or(v))
            .collect();
        let result_types: Vec<Type> = src
            .results
            .iter()
            .map(|&v| self.values[v.0 as usize].ty.clone())
            .collect();
        let mut new_regions = vec![];
        for &r in &src.regions {
            let nr = self.new_region(None);
            let blocks = self.regions[r.0 as usize].blocks.clone();
            for b in blocks {
                let arg_types: Vec<Type> = self.blocks[b.0 as usize]
                    .args
                    .iter()
                    .map(|&v| self.values[v.0 as usize].ty.clone())
                    .collect();
                let nb = self.new_block(nr, arg_types);
                let (old_args, new_args) = (
                    self.blocks[b.0 as usize].args.clone(),
                    self.blocks[nb.0 as usize].args.clone(),
                );
                for (o, n) in old_args.iter().zip(new_args.iter()) {
                    value_map.insert(*o, *n);
                }
                let ops = self.blocks[b.0 as usize].ops.clone();
                for o in ops {
                    if self.ops[o.0 as usize].erased {
                        continue;
                    }
                    let cloned = self.clone_op(o, value_map);
                    self.append_op(nb, cloned);
                }
            }
            new_regions.push(nr);
        }
        let new_op = self.create_op(
            &src.name,
            operands,
            result_types,
            src.attrs.clone(),
            new_regions,
        );
        for (o, n) in self.ops[op.0 as usize]
            .results
            .clone()
            .into_iter()
            .zip(self.ops[new_op.0 as usize].results.clone())
        {
            value_map.insert(o, n);
        }
        new_op
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(m: &mut Module, n: usize) -> Vec<OpId> {
        let b = m.top_block();
        (0..n)
            .map(|_| {
                let op = m.create_op("test.v", vec![], vec![Type::I32], AttrMap::new(), vec![]);
                m.append_op(b, op);
                op
            })
            .collect()
    }

    #[test]
    fn fresh_module_has_top_block() {
        let m = Module::new();
        assert!(m.block(m.top_block()).ops.is_empty());
        assert_eq!(m.region(m.top_region()).blocks.len(), 1);
        assert!(m.region(m.top_region()).parent_op.is_none());
    }

    #[test]
    fn create_and_append() {
        let mut m = Module::new();
        let ops = dummy(&mut m, 3);
        assert_eq!(m.block(m.top_block()).ops, ops);
        assert_eq!(m.op(ops[0]).name, "test.v");
        assert_eq!(m.op(ops[0]).dialect(), "test");
        assert_eq!(m.op(ops[0]).mnemonic(), "v");
        assert_eq!(*m.value_type(m.result(ops[0], 0)), Type::I32);
    }

    #[test]
    fn insert_at_index() {
        let mut m = Module::new();
        let ops = dummy(&mut m, 2);
        let mid = m.create_op("test.mid", vec![], vec![], AttrMap::new(), vec![]);
        m.insert_op(m.top_block(), 1, mid);
        assert_eq!(m.block(m.top_block()).ops, vec![ops[0], mid, ops[1]]);
        assert_eq!(m.op_index_in_block(mid), Some(1));
    }

    #[test]
    fn uses_and_replacement() {
        let mut m = Module::new();
        let b = m.top_block();
        let a = m.create_op("test.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(b, a);
        let c = m.create_op("test.c", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(b, c);
        let va = m.result(a, 0);
        let vc = m.result(c, 0);
        let user = m.create_op("test.use", vec![va, va], vec![], AttrMap::new(), vec![]);
        m.append_op(b, user);
        assert!(m.has_uses(va));
        assert!(!m.has_uses(vc));
        let uses = m.collect_uses();
        assert_eq!(uses[&va].len(), 2);
        m.replace_all_uses(va, vc);
        assert!(!m.has_uses(va));
        assert_eq!(m.op(user).operands, vec![vc, vc]);
    }

    #[test]
    fn erase_is_recursive() {
        let mut m = Module::new();
        let r = m.new_region(None);
        let inner_b = m.new_block(r, vec![]);
        let inner = m.create_op("test.inner", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(inner_b, inner);
        let outer = m.create_op("test.outer", vec![], vec![], AttrMap::new(), vec![r]);
        m.append_op(m.top_block(), outer);
        assert_eq!(m.find_all("test.inner").len(), 1);
        m.erase_op(outer);
        assert!(m.op(inner).erased);
        assert!(m.op(outer).erased);
        assert_eq!(m.find_all("test.inner").len(), 0);
        assert!(m.block(m.top_block()).ops.is_empty());
    }

    #[test]
    fn walk_is_preorder() {
        let mut m = Module::new();
        let r = m.new_region(None);
        let ib = m.new_block(r, vec![]);
        let inner = m.create_op("test.inner", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(ib, inner);
        let outer = m.create_op("test.outer", vec![], vec![], AttrMap::new(), vec![r]);
        m.append_op(m.top_block(), outer);
        let after = m.create_op("test.after", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(m.top_block(), after);
        let mut names = vec![];
        m.walk(|op| names.push(m.op(op).name.clone()));
        assert_eq!(names, vec!["test.outer", "test.inner", "test.after"]);
    }

    #[test]
    fn block_args_are_values() {
        let mut m = Module::new();
        let r = m.new_region(None);
        let b = m.new_block(r, vec![Type::I32, Type::Signal]);
        let args = m.block(b).args.clone();
        assert_eq!(args.len(), 2);
        assert_eq!(*m.value_type(args[1]), Type::Signal);
        assert_eq!(
            m.value(args[0]).def,
            ValueDef::BlockArg { block: b, index: 0 }
        );
    }

    #[test]
    fn clone_op_remaps_values() {
        let mut m = Module::new();
        let b = m.top_block();
        let a = m.create_op("test.a", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(b, a);
        let va = m.result(a, 0);
        let r = m.new_region(None);
        let ib = m.new_block(r, vec![]);
        let inner = m.create_op(
            "test.use",
            vec![va],
            vec![Type::I32],
            AttrMap::new(),
            vec![],
        );
        m.append_op(ib, inner);
        let outer = m.create_op(
            "test.outer",
            vec![va],
            vec![Type::I32],
            AttrMap::new(),
            vec![r],
        );
        m.append_op(b, outer);

        // Clone with va mapped to a fresh value.
        let a2 = m.create_op("test.a2", vec![], vec![Type::I32], AttrMap::new(), vec![]);
        m.append_op(b, a2);
        let va2 = m.result(a2, 0);
        let mut map = HashMap::new();
        map.insert(va, va2);
        let clone = m.clone_op(outer, &mut map);
        m.append_op(b, clone);
        assert_eq!(m.op(clone).operands, vec![va2]);
        let cloned_inner = m.region_ops(m.op(clone).regions[0])[0];
        assert_eq!(m.op(cloned_inner).operands, vec![va2]);
        // Original untouched.
        assert_eq!(m.op(outer).operands, vec![va]);
        // Result mapping recorded.
        assert_eq!(map[&m.result(outer, 0)], m.result(clone, 0));
    }

    #[test]
    fn detach_then_reattach() {
        let mut m = Module::new();
        let ops = dummy(&mut m, 2);
        m.detach_op(ops[0]);
        assert_eq!(m.block(m.top_block()).ops, vec![ops[1]]);
        m.append_op(m.top_block(), ops[0]);
        assert_eq!(m.block(m.top_block()).ops, vec![ops[1], ops[0]]);
    }

    #[test]
    fn find_helpers() {
        let mut m = Module::new();
        dummy(&mut m, 2);
        assert!(m.find_first("test.v").is_some());
        assert!(m.find_first("test.missing").is_none());
        assert_eq!(m.find_all("test.v").len(), 2);
    }
}
