//! Error types shared across the IR crates.

use std::error::Error;
use std::fmt;

/// Errors produced by IR construction, parsing, verification, and passes.
///
/// # Examples
///
/// ```
/// use equeue_ir::IrError;
/// let e = IrError::verify("launch expects a signal dependency");
/// assert!(e.to_string().contains("signal dependency"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A structural or dialect invariant was violated.
    Verify(String),
    /// The textual parser rejected the input.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A pass could not be applied.
    Pass {
        /// Name of the failing pass.
        pass: String,
        /// Human-readable description.
        msg: String,
    },
    /// Any other error.
    Other(String),
}

impl IrError {
    /// Builds a [`IrError::Verify`] error.
    pub fn verify(msg: impl Into<String>) -> Self {
        IrError::Verify(msg.into())
    }

    /// Builds a [`IrError::Pass`] error.
    pub fn pass(pass: impl Into<String>, msg: impl Into<String>) -> Self {
        IrError::Pass {
            pass: pass.into(),
            msg: msg.into(),
        }
    }

    /// Builds a [`IrError::Other`] error.
    pub fn other(msg: impl Into<String>) -> Self {
        IrError::Other(msg.into())
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::Verify(m) => write!(f, "verification failed: {m}"),
            IrError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
            IrError::Pass { pass, msg } => write!(f, "pass '{pass}' failed: {msg}"),
            IrError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl Error for IrError {}

/// Convenient result alias for IR operations.
pub type IrResult<T> = Result<T, IrError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(
            IrError::verify("bad op").to_string(),
            "verification failed: bad op"
        );
        assert_eq!(
            IrError::Parse {
                line: 3,
                col: 7,
                msg: "expected ')'".into()
            }
            .to_string(),
            "parse error at 3:7: expected ')'"
        );
        assert_eq!(
            IrError::pass("launch", "no such proc").to_string(),
            "pass 'launch' failed: no such proc"
        );
        assert_eq!(IrError::other("boom").to_string(), "boom");
    }

    #[test]
    fn error_trait_object() {
        fn takes_err(_: &dyn Error) {}
        takes_err(&IrError::other("x"));
    }
}
