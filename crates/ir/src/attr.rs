//! Operation attributes: compile-time constant metadata attached to ops.
//!
//! Attributes mirror MLIR's attribute dictionary: every operation carries a
//! sorted map from names to [`Attr`] values. Attributes encode things such as
//! component kinds (`"SRAM"`), shapes, bandwidths, and loop bounds.

use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;

/// A single attribute value.
///
/// # Examples
///
/// ```
/// use equeue_ir::Attr;
/// let a = Attr::Int(42);
/// assert_eq!(a.as_int(), Some(42));
/// assert_eq!(a.to_string(), "42");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum Attr {
    /// A unit marker whose presence alone carries meaning.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float.
    Float(f64),
    /// A string.
    Str(String),
    /// A homogeneous array of integers (shapes, bounds, steps).
    IntArray(Vec<i64>),
    /// An array of strings (e.g. sub-component names).
    StrArray(Vec<String>),
    /// A heterogeneous array of attributes.
    Array(Vec<Attr>),
    /// A type used as an attribute (e.g. element types).
    Ty(Type),
}

impl Attr {
    /// The integer payload, if this is an [`Attr::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload for [`Attr::Float`] (or a lossless view of an int).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attr::Float(v) => Some(*v),
            Attr::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload, if this is an [`Attr::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attr::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is an [`Attr::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer-array payload, if this is an [`Attr::IntArray`].
    pub fn as_int_array(&self) -> Option<&[i64]> {
        match self {
            Attr::IntArray(v) => Some(v),
            _ => None,
        }
    }

    /// The string-array payload, if this is an [`Attr::StrArray`].
    pub fn as_str_array(&self) -> Option<&[String]> {
        match self {
            Attr::StrArray(v) => Some(v),
            _ => None,
        }
    }

    /// The type payload, if this is an [`Attr::Ty`].
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attr::Ty(t) => Some(t),
            _ => None,
        }
    }

    /// An integer array viewed as `usize` dims; `None` if any entry is
    /// negative or this is not an integer array.
    pub fn as_shape(&self) -> Option<Vec<usize>> {
        let ints = self.as_int_array()?;
        ints.iter()
            .map(|&v| usize::try_from(v).ok())
            .collect::<Option<Vec<_>>>()
    }
}

impl From<i64> for Attr {
    fn from(v: i64) -> Self {
        Attr::Int(v)
    }
}

impl From<usize> for Attr {
    fn from(v: usize) -> Self {
        Attr::Int(v as i64)
    }
}

impl From<bool> for Attr {
    fn from(v: bool) -> Self {
        Attr::Bool(v)
    }
}

impl From<f64> for Attr {
    fn from(v: f64) -> Self {
        Attr::Float(v)
    }
}

impl From<&str> for Attr {
    fn from(v: &str) -> Self {
        Attr::Str(v.to_string())
    }
}

impl From<String> for Attr {
    fn from(v: String) -> Self {
        Attr::Str(v)
    }
}

impl From<Vec<i64>> for Attr {
    fn from(v: Vec<i64>) -> Self {
        Attr::IntArray(v)
    }
}

impl From<Type> for Attr {
    fn from(v: Type) -> Self {
        Attr::Ty(v)
    }
}

impl fmt::Display for Attr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attr::Unit => write!(f, "unit"),
            Attr::Bool(v) => write!(f, "{v}"),
            Attr::Int(v) => write!(f, "{v}"),
            Attr::Float(v) => {
                // Keep a trailing ".0" so floats round-trip through the parser.
                if v.fract() == 0.0 && v.is_finite() {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Attr::Str(s) => write!(f, "{:?}", s),
            Attr::IntArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attr::StrArray(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x:?}")?;
                }
                write!(f, "]")
            }
            Attr::Array(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Attr::Ty(t) => write!(f, "{t}"),
        }
    }
}

/// A sorted attribute dictionary, keyed by attribute name.
///
/// The `BTreeMap` ordering makes printing deterministic, which the
/// parser/printer round-trip tests rely on.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Attr, AttrMap};
/// let mut attrs = AttrMap::new();
/// attrs.set("banks", 4i64);
/// assert_eq!(attrs.int("banks"), Some(4));
/// assert!(attrs.get("ports").is_none());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrMap {
    entries: BTreeMap<String, Attr>,
}

impl AttrMap {
    /// Creates an empty attribute dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts an attribute, replacing any previous value for `name`.
    pub fn set(&mut self, name: &str, value: impl Into<Attr>) -> &mut Self {
        self.entries.insert(name.to_string(), value.into());
        self
    }

    /// Removes an attribute, returning the previous value if present.
    pub fn remove(&mut self, name: &str) -> Option<Attr> {
        self.entries.remove(name)
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&Attr> {
        self.entries.get(name)
    }

    /// Whether an attribute with `name` exists.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Shortcut: the integer payload of attribute `name`.
    pub fn int(&self, name: &str) -> Option<i64> {
        self.get(name).and_then(Attr::as_int)
    }

    /// Shortcut: the string payload of attribute `name`.
    pub fn str(&self, name: &str) -> Option<&str> {
        self.get(name).and_then(Attr::as_str)
    }

    /// Shortcut: the float payload of attribute `name`.
    pub fn float(&self, name: &str) -> Option<f64> {
        self.get(name).and_then(Attr::as_float)
    }

    /// Shortcut: the integer-array payload of attribute `name`.
    pub fn int_array(&self, name: &str) -> Option<&[i64]> {
        self.get(name).and_then(Attr::as_int_array)
    }

    /// Shortcut: attribute `name` interpreted as a shape (`Vec<usize>`).
    pub fn shape(&self, name: &str) -> Option<Vec<usize>> {
        self.get(name).and_then(Attr::as_shape)
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Attr)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Attr)> for AttrMap {
    fn from_iter<T: IntoIterator<Item = (String, Attr)>>(iter: T) -> Self {
        AttrMap {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<(String, Attr)> for AttrMap {
    fn extend<T: IntoIterator<Item = (String, Attr)>>(&mut self, iter: T) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Attr::from(3i64), Attr::Int(3));
        assert_eq!(Attr::from(true), Attr::Bool(true));
        assert_eq!(Attr::from("hi"), Attr::Str("hi".into()));
        assert_eq!(Attr::from(vec![1i64, 2]), Attr::IntArray(vec![1, 2]));
        assert_eq!(Attr::from(2.5f64), Attr::Float(2.5));
        assert_eq!(Attr::from(7usize), Attr::Int(7));
    }

    #[test]
    fn accessors() {
        assert_eq!(Attr::Int(5).as_int(), Some(5));
        assert_eq!(Attr::Int(5).as_float(), Some(5.0));
        assert_eq!(Attr::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attr::Bool(false).as_bool(), Some(false));
        assert_eq!(Attr::Int(5).as_str(), None);
        assert_eq!(Attr::IntArray(vec![2, 3]).as_shape(), Some(vec![2, 3]));
        assert_eq!(Attr::IntArray(vec![-1]).as_shape(), None);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Attr::Int(-7).to_string(), "-7");
        assert_eq!(Attr::Float(2.0).to_string(), "2.0");
        assert_eq!(Attr::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
        assert_eq!(Attr::IntArray(vec![1, 2, 3]).to_string(), "[1, 2, 3]");
        assert_eq!(
            Attr::StrArray(vec!["a".into(), "b".into()]).to_string(),
            "[\"a\", \"b\"]"
        );
    }

    #[test]
    fn attr_map_basics() {
        let mut m = AttrMap::new();
        assert!(m.is_empty());
        m.set("kind", "SRAM").set("banks", 4i64);
        assert_eq!(m.len(), 2);
        assert_eq!(m.str("kind"), Some("SRAM"));
        assert_eq!(m.int("banks"), Some(4));
        assert!(m.contains("kind"));
        m.remove("kind");
        assert!(!m.contains("kind"));
    }

    #[test]
    fn attr_map_iterates_sorted() {
        let mut m = AttrMap::new();
        m.set("z", 1i64);
        m.set("a", 2i64);
        let keys: Vec<_> = m.iter().map(|(k, _)| k.to_string()).collect();
        assert_eq!(keys, vec!["a", "z"]);
    }

    #[test]
    fn attr_map_collect_and_extend() {
        let mut m: AttrMap = vec![("x".to_string(), Attr::Int(1))].into_iter().collect();
        m.extend(vec![("y".to_string(), Attr::Int(2))]);
        assert_eq!(m.int("x"), Some(1));
        assert_eq!(m.int("y"), Some(2));
    }
}
