//! The pass framework: named module-to-module transformations and a
//! [`PassManager`] that runs pipelines with optional inter-pass verification.
//!
//! The reusable lowering passes of the paper's §V (implemented in the
//! `equeue-passes` crate) all plug in through the [`Pass`] trait defined
//! here; composing them with different parameters is how designers switch
//! between dataflows (§VI-D).

use crate::error::{IrError, IrResult};
use crate::module::Module;
use crate::registry::DialectRegistry;
use crate::verify::verify_module;
use std::time::{Duration, Instant};

/// A module transformation.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, Pass, IrResult};
/// struct StripAttrs;
/// impl Pass for StripAttrs {
///     fn name(&self) -> &str { "strip-attrs" }
///     fn run(&mut self, m: &mut Module) -> IrResult<()> {
///         let ops: Vec<_> = m.live_ops().collect();
///         for op in ops { m.op_mut(op).attrs = Default::default(); }
///         Ok(())
///     }
/// }
/// ```
pub trait Pass {
    /// Stable kebab-case pass name used in diagnostics (`"equeue-read-write"`).
    fn name(&self) -> &str;

    /// Applies the transformation.
    ///
    /// # Errors
    ///
    /// Implementations should return [`IrError::Pass`] when preconditions do
    /// not hold (e.g. a named component is missing).
    fn run(&mut self, module: &mut Module) -> IrResult<()>;
}

/// Timing and bookkeeping for one executed pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassStat {
    /// The pass name.
    pub name: String,
    /// Wall-clock duration of the pass run.
    pub duration: Duration,
    /// Live op count after the pass.
    pub ops_after: usize,
}

/// Statistics for a whole pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Per-pass entries in execution order.
    pub passes: Vec<PassStat>,
}

impl PipelineStats {
    /// Total wall-clock time across all passes.
    pub fn total_duration(&self) -> Duration {
        self.passes.iter().map(|p| p.duration).sum()
    }
}

/// Runs a sequence of passes over a module.
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, PassManager, DialectRegistry};
/// let mut pm = PassManager::new(DialectRegistry::new());
/// let mut m = Module::new();
/// let stats = pm.run(&mut m)?;
/// assert!(stats.passes.is_empty());
/// # Ok::<(), equeue_ir::IrError>(())
/// ```
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    registry: DialectRegistry,
    verify_each: bool,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self
                    .passes
                    .iter()
                    .map(|p| p.name().to_string())
                    .collect::<Vec<_>>(),
            )
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl PassManager {
    /// Creates a pass manager that verifies the module after every pass
    /// using `registry`.
    pub fn new(registry: DialectRegistry) -> Self {
        PassManager {
            passes: vec![],
            registry,
            verify_each: true,
        }
    }

    /// Disables or enables per-pass verification (enabled by default).
    pub fn verify_each(&mut self, enabled: bool) -> &mut Self {
        self.verify_each = enabled;
        self
    }

    /// Appends a pass to the pipeline.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Appends a boxed pass to the pipeline.
    pub fn add_boxed(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Names of the scheduled passes, in order.
    pub fn pipeline(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline.
    ///
    /// # Errors
    ///
    /// Stops at the first failing pass or failed verification, wrapping
    /// verification failures with the offending pass name.
    pub fn run(&mut self, module: &mut Module) -> IrResult<PipelineStats> {
        let mut stats = PipelineStats::default();
        for pass in &mut self.passes {
            let start = Instant::now();
            pass.run(module)?;
            let duration = start.elapsed();
            if self.verify_each {
                verify_module(module, &self.registry).map_err(|e| {
                    IrError::pass(pass.name(), format!("post-pass verification failed: {e}"))
                })?;
            }
            stats.passes.push(PassStat {
                name: pass.name().to_string(),
                duration,
                ops_after: module.live_ops().count(),
            });
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;
    use crate::builder::OpBuilder;

    struct AddOp(&'static str);
    impl Pass for AddOp {
        fn name(&self) -> &str {
            "add-op"
        }
        fn run(&mut self, m: &mut Module) -> IrResult<()> {
            let blk = m.top_block();
            let mut b = OpBuilder::at_end(m, blk);
            b.op(self.0).finish();
            Ok(())
        }
    }

    struct Failing;
    impl Pass for Failing {
        fn name(&self) -> &str {
            "failing"
        }
        fn run(&mut self, _m: &mut Module) -> IrResult<()> {
            Err(IrError::pass("failing", "on purpose"))
        }
    }

    struct Corrupting;
    impl Pass for Corrupting {
        fn name(&self) -> &str {
            "corrupting"
        }
        fn run(&mut self, m: &mut Module) -> IrResult<()> {
            // Create an op that uses a value defined *after* it.
            let blk = m.top_block();
            let def = m.create_op(
                "t.def",
                vec![],
                vec![crate::types::Type::I32],
                AttrMap::new(),
                vec![],
            );
            let v = m.result(def, 0);
            let user = m.create_op("t.use", vec![v], vec![], AttrMap::new(), vec![]);
            m.append_op(blk, user);
            m.append_op(blk, def);
            Ok(())
        }
    }

    #[test]
    fn runs_in_order_with_stats() {
        let mut pm = PassManager::new(DialectRegistry::new());
        pm.add(AddOp("t.one")).add(AddOp("t.two"));
        assert_eq!(pm.pipeline(), vec!["add-op", "add-op"]);
        let mut m = Module::new();
        let stats = pm.run(&mut m).unwrap();
        assert_eq!(stats.passes.len(), 2);
        assert_eq!(stats.passes[0].ops_after, 1);
        assert_eq!(stats.passes[1].ops_after, 2);
        assert!(stats.total_duration() >= Duration::ZERO);
    }

    #[test]
    fn failing_pass_stops_pipeline() {
        let mut pm = PassManager::new(DialectRegistry::new());
        pm.add(Failing).add(AddOp("t.unreached"));
        let mut m = Module::new();
        let e = pm.run(&mut m).unwrap_err();
        assert!(e.to_string().contains("on purpose"));
        assert_eq!(m.find_all("t.unreached").len(), 0);
    }

    #[test]
    fn verification_catches_corruption() {
        let mut pm = PassManager::new(DialectRegistry::new());
        pm.add(Corrupting);
        let mut m = Module::new();
        let e = pm.run(&mut m).unwrap_err();
        assert!(e.to_string().contains("post-pass verification failed"));
    }

    #[test]
    fn verification_can_be_disabled() {
        let mut pm = PassManager::new(DialectRegistry::new());
        pm.verify_each(false);
        pm.add(Corrupting);
        let mut m = Module::new();
        assert!(pm.run(&mut m).is_ok());
    }
}
