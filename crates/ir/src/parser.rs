//! Parsing of the textual IR form produced by [`crate::printer`].
//!
//! The parser accepts the generic-operation grammar:
//!
//! ```text
//! op        := (results '=')? string '(' operands? ')' regions? attrs? ':' functype
//! regions   := '(' region (',' region)* ')'
//! region    := '{' block* '}'
//! block     := ('^' ident ('(' %id ':' type (',' ...)* ')')? ':')? op*
//! attrs     := '{' key '=' value (',' ...)* '}'
//! functype  := '(' types? ')' '->' (type | '(' types? ')')
//! ```
//!
//! Printing a parsed module reproduces the input exactly (module-level
//! round-trip property tests live in `tests/`).

use crate::attr::{Attr, AttrMap};
use crate::error::{IrError, IrResult};
use crate::module::{BlockId, Module, RegionId, ValueId};
use crate::types::Type;
use std::collections::HashMap;

/// Parses the textual form of a module.
///
/// # Errors
///
/// Returns [`IrError::Parse`] with line/column information when the input
/// does not conform to the grammar, references an undefined value, or states
/// operand types that disagree with the defining op.
///
/// # Examples
///
/// ```
/// use equeue_ir::parse_module;
/// let m = parse_module("%c = \"arith.constant\"() {value = 3} : () -> i32\n")?;
/// assert_eq!(m.find_all("arith.constant").len(), 1);
/// # Ok::<(), equeue_ir::IrError>(())
/// ```
pub fn parse_module(text: &str) -> IrResult<Module> {
    let mut p = Parser::new(text);
    let mut module = Module::new();
    let top = module.top_block();
    let mut scope = Scope::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        p.parse_op(&mut module, top, &mut scope)?;
    }
    Ok(module)
}

/// Parses a type from its textual form, e.g. `"memref<4x4xf32>"`.
///
/// # Errors
///
/// Returns [`IrError::Parse`] for unknown type syntax.
///
/// # Examples
///
/// ```
/// use equeue_ir::{parse_type, Type};
/// assert_eq!(parse_type("!equeue.buffer<64xi32>")?, Type::buffer(vec![64], Type::I32));
/// assert_eq!(parse_type("index")?, Type::Index);
/// # Ok::<(), equeue_ir::IrError>(())
/// ```
pub fn parse_type(text: &str) -> IrResult<Type> {
    let t = text.trim();
    let err = || IrError::Parse {
        line: 0,
        col: 0,
        msg: format!("unknown type '{t}'"),
    };
    let shaped = |prefix: &str, t: &str| -> Option<IrResult<(Vec<usize>, Type)>> {
        let rest = t.strip_prefix(prefix)?;
        let rest = rest.strip_prefix('<')?;
        let body = rest.strip_suffix('>')?;
        Some(parse_shape_body(body))
    };
    match t {
        "i1" => return Ok(Type::I1),
        "i8" => return Ok(Type::I8),
        "i16" => return Ok(Type::I16),
        "i32" => return Ok(Type::I32),
        "i64" => return Ok(Type::I64),
        "f32" => return Ok(Type::F32),
        "f64" => return Ok(Type::F64),
        "index" => return Ok(Type::Index),
        "none" => return Ok(Type::None),
        "!equeue.signal" => return Ok(Type::Signal),
        "!equeue.proc" => return Ok(Type::Proc),
        "!equeue.mem" => return Ok(Type::Mem),
        "!equeue.dma" => return Ok(Type::Dma),
        "!equeue.comp" => return Ok(Type::Comp),
        "!equeue.conn" => return Ok(Type::Conn),
        "!equeue.any" => return Ok(Type::Any),
        _ => {}
    }
    if let Some(r) = shaped("memref", t) {
        let (shape, elem) = r?;
        return Ok(Type::memref(shape, elem));
    }
    if let Some(r) = shaped("tensor", t) {
        let (shape, elem) = r?;
        return Ok(Type::tensor(shape, elem));
    }
    if let Some(r) = shaped("!equeue.buffer", t) {
        let (shape, elem) = r?;
        return Ok(Type::buffer(shape, elem));
    }
    Err(err())
}

/// Parses `4x4xf32`-style shaped-type bodies: leading `NNx` runs are dims,
/// the remainder is the element type.
fn parse_shape_body(body: &str) -> IrResult<(Vec<usize>, Type)> {
    let mut dims = vec![];
    let mut rest = body;
    loop {
        let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
        if digits.is_empty() {
            break;
        }
        let after = &rest[digits.len()..];
        if let Some(tail) = after.strip_prefix('x') {
            dims.push(digits.parse::<usize>().map_err(|e| IrError::Parse {
                line: 0,
                col: 0,
                msg: format!("bad dimension '{digits}': {e}"),
            })?);
            rest = tail;
        } else {
            break;
        }
    }
    Ok((dims, parse_type(rest)?))
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Percent(String),
    Caret(String),
    Str(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Equal,
    Colon,
    Arrow,
    Eof,
}

impl Token {
    fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::Percent(s) => format!("value '%{s}'"),
            Token::Caret(s) => format!("block label '^{s}'"),
            Token::Str(s) => format!("string {s:?}"),
            Token::Int(v) => format!("integer {v}"),
            Token::Float(v) => format!("float {v}"),
            Token::LParen => "'('".into(),
            Token::RParen => "')'".into(),
            Token::LBrace => "'{'".into(),
            Token::RBrace => "'}'".into(),
            Token::LBracket => "'['".into(),
            Token::RBracket => "']'".into(),
            Token::Comma => "','".into(),
            Token::Equal => "'='".into(),
            Token::Colon => "':'".into(),
            Token::Arrow => "'->'".into(),
            Token::Eof => "end of input".into(),
        }
    }
}

/// Lexical scopes for SSA names; a new scope is pushed per region.
struct Scope {
    stack: Vec<HashMap<String, ValueId>>,
}

impl Scope {
    fn new() -> Self {
        Scope {
            stack: vec![HashMap::new()],
        }
    }
    fn push(&mut self) {
        self.stack.push(HashMap::new());
    }
    fn pop(&mut self) {
        // The root scope always survives so `define` has somewhere to write.
        if self.stack.len() > 1 {
            self.stack.pop();
        }
    }
    fn define(&mut self, name: &str, v: ValueId) {
        if let Some(top) = self.stack.last_mut() {
            top.insert(name.to_string(), v);
        }
    }
    fn lookup(&self, name: &str) -> Option<ValueId> {
        self.stack.iter().rev().find_map(|s| s.get(name).copied())
    }
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            src: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, msg: impl Into<String>) -> IrError {
        IrError::Parse {
            line: self.line,
            col: self.col,
            msg: msg.into(),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek_char(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek_char()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek_char() {
            if c.is_ascii_whitespace() {
                self.bump();
            } else if c == b'/' && self.src.get(self.pos + 1) == Some(&b'/') {
                while let Some(c) = self.peek_char() {
                    if c == b'\n' {
                        break;
                    }
                    self.bump();
                }
            } else {
                break;
            }
        }
    }

    fn save(&self) -> (usize, usize, usize) {
        (self.pos, self.line, self.col)
    }

    fn restore(&mut self, s: (usize, usize, usize)) {
        self.pos = s.0;
        self.line = s.1;
        self.col = s.2;
    }

    fn next_token(&mut self) -> IrResult<Token> {
        self.skip_ws();
        let c = match self.peek_char() {
            None => return Ok(Token::Eof),
            Some(c) => c,
        };
        match c {
            b'(' => {
                self.bump();
                Ok(Token::LParen)
            }
            b')' => {
                self.bump();
                Ok(Token::RParen)
            }
            b'{' => {
                self.bump();
                Ok(Token::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Token::RBrace)
            }
            b'[' => {
                self.bump();
                Ok(Token::LBracket)
            }
            b']' => {
                self.bump();
                Ok(Token::RBracket)
            }
            b',' => {
                self.bump();
                Ok(Token::Comma)
            }
            b'=' => {
                self.bump();
                Ok(Token::Equal)
            }
            b':' => {
                self.bump();
                Ok(Token::Colon)
            }
            b'-' => {
                self.bump();
                match self.peek_char() {
                    Some(b'>') => {
                        self.bump();
                        Ok(Token::Arrow)
                    }
                    Some(d) if d.is_ascii_digit() => self.lex_number(true),
                    _ => Err(self.err("expected '->' or a number after '-'")),
                }
            }
            b'"' => self.lex_string(),
            b'%' => {
                self.bump();
                Ok(Token::Percent(self.lex_suffix_ident()?))
            }
            b'^' => {
                self.bump();
                Ok(Token::Caret(self.lex_suffix_ident()?))
            }
            d if d.is_ascii_digit() => self.lex_number(false),
            a if a.is_ascii_alphabetic() || a == b'_' || a == b'!' => {
                let mut s = String::new();
                while let Some(c) = self.peek_char() {
                    if c.is_ascii_alphanumeric() || matches!(c, b'_' | b'.' | b'!') {
                        self.bump();
                        s.push(c as char);
                    } else {
                        break;
                    }
                }
                Ok(Token::Ident(s))
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn lex_suffix_ident(&mut self) -> IrResult<String> {
        let mut s = String::new();
        while let Some(c) = self.peek_char() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                self.bump();
                s.push(c as char);
            } else {
                break;
            }
        }
        if s.is_empty() {
            return Err(self.err("expected an identifier"));
        }
        Ok(s)
    }

    fn lex_number(&mut self, negative: bool) -> IrResult<Token> {
        let mut s = String::new();
        if negative {
            s.push('-');
        }
        while let Some(c) = self.peek_char() {
            if c.is_ascii_digit() {
                self.bump();
                s.push(c as char);
            } else {
                break;
            }
        }
        let mut is_float = false;
        if self.peek_char() == Some(b'.') {
            is_float = true;
            self.bump();
            s.push('.');
            while let Some(c) = self.peek_char() {
                if c.is_ascii_digit() {
                    self.bump();
                    s.push(c as char);
                } else {
                    break;
                }
            }
        }
        if is_float {
            s.parse::<f64>()
                .map(Token::Float)
                .map_err(|e| self.err(format!("bad float: {e}")))
        } else {
            s.parse::<i64>()
                .map(Token::Int)
                .map_err(|e| self.err(format!("bad integer: {e}")))
        }
    }

    fn lex_string(&mut self) -> IrResult<Token> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    other => {
                        return Err(
                            self.err(format!("bad escape '\\{:?}'", other.map(|c| c as char)))
                        )
                    }
                },
                Some(c) => s.push(c as char),
            }
        }
        Ok(Token::Str(s))
    }

    /// Consumes raw text forming a type: stops at a depth-0 delimiter.
    fn lex_type_text(&mut self) -> IrResult<String> {
        self.skip_ws();
        let mut depth = 0usize;
        let mut s = String::new();
        while let Some(c) = self.peek_char() {
            match c {
                b'<' => depth += 1,
                b'>' => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b',' | b')' | b'}' | b']' | b'\n' if depth == 0 => break,
                _ => {}
            }
            self.bump();
            s.push(c as char);
        }
        if s.trim().is_empty() {
            return Err(self.err("expected a type"));
        }
        Ok(s.trim().to_string())
    }

    fn expect(&mut self, want: Token) -> IrResult<()> {
        let got = self.next_token()?;
        if got == want {
            Ok(())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                want.describe(),
                got.describe()
            )))
        }
    }

    fn parse_op(&mut self, module: &mut Module, block: BlockId, scope: &mut Scope) -> IrResult<()> {
        // Optional result list.
        let mut result_names: Vec<String> = vec![];
        let save = self.save();
        match self.next_token()? {
            Token::Percent(first) => {
                result_names.push(first);
                loop {
                    let save2 = self.save();
                    match self.next_token()? {
                        Token::Comma => match self.next_token()? {
                            Token::Percent(n) => result_names.push(n),
                            t => {
                                return Err(self
                                    .err(format!("expected value name, found {}", t.describe())))
                            }
                        },
                        Token::Equal => break,
                        t => {
                            let _ = save2;
                            return Err(
                                self.err(format!("expected ',' or '=', found {}", t.describe()))
                            );
                        }
                    }
                }
            }
            Token::Str(_) => self.restore(save),
            t => return Err(self.err(format!("expected an operation, found {}", t.describe()))),
        }

        // Op name.
        let name = match self.next_token()? {
            Token::Str(s) => s,
            t => return Err(self.err(format!("expected quoted op name, found {}", t.describe()))),
        };

        // Operands.
        self.expect(Token::LParen)?;
        let mut operands: Vec<ValueId> = vec![];
        loop {
            let save2 = self.save();
            match self.next_token()? {
                Token::RParen => break,
                Token::Percent(n) => {
                    let v = scope
                        .lookup(&n)
                        .ok_or_else(|| self.err(format!("use of undefined value '%{n}'")))?;
                    operands.push(v);
                }
                Token::Comma => {
                    let _ = save2;
                }
                t => return Err(self.err(format!("expected operand, found {}", t.describe()))),
            }
        }

        // Optional region group.
        let mut regions: Vec<RegionId> = vec![];
        let save2 = self.save();
        if self.next_token()? == Token::LParen {
            loop {
                self.expect(Token::LBrace)?;
                let region = self.parse_region_body(module, scope)?;
                regions.push(region);
                match self.next_token()? {
                    Token::Comma => continue,
                    Token::RParen => break,
                    t => {
                        return Err(self.err(format!("expected ',' or ')', found {}", t.describe())))
                    }
                }
            }
        } else {
            self.restore(save2);
        }

        // Optional attribute dictionary.
        let mut attrs = AttrMap::new();
        let save3 = self.save();
        if self.next_token()? == Token::LBrace {
            loop {
                let key = match self.next_token()? {
                    Token::RBrace => break,
                    Token::Ident(k) => k,
                    Token::Str(k) => k,
                    t => {
                        return Err(
                            self.err(format!("expected attribute name, found {}", t.describe()))
                        )
                    }
                };
                self.expect(Token::Equal)?;
                let value = self.parse_attr_value()?;
                attrs.set(&key, value);
                match self.next_token()? {
                    Token::Comma => continue,
                    Token::RBrace => break,
                    t => {
                        return Err(
                            self.err(format!("expected ',' or '}}', found {}", t.describe()))
                        )
                    }
                }
            }
        } else {
            self.restore(save3);
        }

        // Functional type.
        self.expect(Token::Colon)?;
        self.expect(Token::LParen)?;
        let mut operand_types: Vec<Type> = vec![];
        loop {
            let save4 = self.save();
            match self.next_token()? {
                Token::RParen => break,
                Token::Comma => continue,
                _ => {
                    self.restore(save4);
                    let t = self.lex_type_text()?;
                    operand_types.push(parse_type(&t)?);
                }
            }
        }
        self.expect(Token::Arrow)?;
        let mut result_types: Vec<Type> = vec![];
        let save5 = self.save();
        if self.next_token()? == Token::LParen {
            loop {
                let save6 = self.save();
                match self.next_token()? {
                    Token::RParen => break,
                    Token::Comma => continue,
                    _ => {
                        self.restore(save6);
                        let t = self.lex_type_text()?;
                        result_types.push(parse_type(&t)?);
                    }
                }
            }
        } else {
            self.restore(save5);
            let t = self.lex_type_text()?;
            result_types.push(parse_type(&t)?);
        }

        // Validate operand types against definitions.
        if operand_types.len() != operands.len() {
            return Err(self.err(format!(
                "op '{name}' lists {} operand types but has {} operands",
                operand_types.len(),
                operands.len()
            )));
        }
        for (i, (v, ty)) in operands.iter().zip(&operand_types).enumerate() {
            let actual = module.value_type(*v);
            if !actual.matches(ty) {
                return Err(self.err(format!(
                    "operand {i} of '{name}' has type {actual} but signature says {ty}"
                )));
            }
        }
        if result_names.len() != result_types.len()
            && !(result_names.is_empty() && result_types.is_empty())
        {
            return Err(self.err(format!(
                "op '{name}' binds {} results but signature lists {}",
                result_names.len(),
                result_types.len()
            )));
        }

        let op = module.create_op(&name, operands, result_types, attrs, regions);
        module.append_op(block, op);
        for (i, rname) in result_names.iter().enumerate() {
            let v = module.result(op, i);
            scope.define(rname, v);
            if rname.parse::<usize>().is_err() {
                module.set_value_name(v, rname);
            }
        }
        Ok(())
    }

    fn parse_region_body(&mut self, module: &mut Module, scope: &mut Scope) -> IrResult<RegionId> {
        // The '{' is already consumed.
        let region = module.new_region(None);
        scope.push();
        let mut first = true;
        loop {
            let save = self.save();
            match self.next_token()? {
                Token::RBrace => {
                    if first {
                        module.new_block(region, vec![]);
                    }
                    break;
                }
                Token::Caret(_) => {
                    // Block header with optional args.
                    let mut arg_names = vec![];
                    let mut arg_types = vec![];
                    let save2 = self.save();
                    if self.next_token()? == Token::LParen {
                        loop {
                            match self.next_token()? {
                                Token::RParen => break,
                                Token::Comma => continue,
                                Token::Percent(n) => {
                                    self.expect(Token::Colon)?;
                                    let t = self.lex_type_text()?;
                                    arg_names.push(n);
                                    arg_types.push(parse_type(&t)?);
                                }
                                t => {
                                    return Err(self.err(format!(
                                        "expected block argument, found {}",
                                        t.describe()
                                    )))
                                }
                            }
                        }
                    } else {
                        self.restore(save2);
                    }
                    self.expect(Token::Colon)?;
                    let b = module.new_block(region, arg_types);
                    for (i, n) in arg_names.iter().enumerate() {
                        let v = module.block(b).args[i];
                        scope.define(n, v);
                        if n.parse::<usize>().is_err() {
                            module.set_value_name(v, n);
                        }
                    }
                    self.parse_block_ops(module, b, scope)?;
                    first = false;
                }
                _ => {
                    // Header-less entry block.
                    self.restore(save);
                    let b = module.new_block(region, vec![]);
                    self.parse_block_ops(module, b, scope)?;
                    first = false;
                }
            }
        }
        scope.pop();
        Ok(region)
    }

    /// Parses ops until the next '}' or '^' (left unconsumed).
    fn parse_block_ops(
        &mut self,
        module: &mut Module,
        block: BlockId,
        scope: &mut Scope,
    ) -> IrResult<()> {
        loop {
            let save = self.save();
            match self.next_token()? {
                Token::RBrace | Token::Caret(_) => {
                    self.restore(save);
                    return Ok(());
                }
                Token::Eof => return Err(self.err("unterminated region")),
                _ => {
                    self.restore(save);
                    self.parse_op(module, block, scope)?;
                }
            }
        }
    }

    fn parse_attr_value(&mut self) -> IrResult<Attr> {
        self.skip_ws();
        match self.peek_char() {
            Some(b'"') => {
                if let Token::Str(s) = self.next_token()? {
                    Ok(Attr::Str(s))
                } else {
                    unreachable!()
                }
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => match self.next_token()? {
                Token::Int(v) => Ok(Attr::Int(v)),
                Token::Float(v) => Ok(Attr::Float(v)),
                t => Err(self.err(format!("expected number, found {}", t.describe()))),
            },
            Some(b'[') => {
                self.next_token()?; // consume '['
                let mut items = vec![];
                loop {
                    self.skip_ws();
                    if self.peek_char() == Some(b']') {
                        self.next_token()?;
                        break;
                    }
                    items.push(self.parse_attr_value()?);
                    let save = self.save();
                    match self.next_token()? {
                        Token::Comma => continue,
                        Token::RBracket => break,
                        t => {
                            let _ = save;
                            return Err(
                                self.err(format!("expected ',' or ']', found {}", t.describe()))
                            );
                        }
                    }
                }
                // Homogeneous lists collapse to the compact array attrs; a
                // mixed (or empty) list stays generic.
                if !items.is_empty() {
                    if let Some(ints) = items.iter().map(Attr::as_int).collect::<Option<Vec<_>>>() {
                        return Ok(Attr::IntArray(ints));
                    }
                    if let Some(strs) = items
                        .iter()
                        .map(|a| a.as_str().map(str::to_string))
                        .collect::<Option<Vec<_>>>()
                    {
                        return Ok(Attr::StrArray(strs));
                    }
                }
                Ok(Attr::Array(items))
            }
            _ => {
                let save = self.save();
                if let Ok(Token::Ident(word)) = self.next_token() {
                    match word.as_str() {
                        "true" => return Ok(Attr::Bool(true)),
                        "false" => return Ok(Attr::Bool(false)),
                        "unit" => return Ok(Attr::Unit),
                        _ => {}
                    }
                }
                self.restore(save);
                let t = self.lex_type_text()?;
                Ok(Attr::Ty(parse_type(&t)?))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    fn round_trip(text: &str) {
        let m = parse_module(text).expect("parse");
        assert_eq!(print_module(&m), text);
    }

    #[test]
    fn parse_types() {
        assert_eq!(parse_type("i32").unwrap(), Type::I32);
        assert_eq!(parse_type(" f64 ").unwrap(), Type::F64);
        assert_eq!(
            parse_type("memref<4x4xf32>").unwrap(),
            Type::memref(vec![4, 4], Type::F32)
        );
        assert_eq!(
            parse_type("tensor<8xindex>").unwrap(),
            Type::tensor(vec![8], Type::Index)
        );
        assert_eq!(
            parse_type("tensor<i64>").unwrap(),
            Type::tensor(vec![], Type::I64)
        );
        assert_eq!(
            parse_type("!equeue.buffer<64xi32>").unwrap(),
            Type::buffer(vec![64], Type::I32)
        );
        assert_eq!(parse_type("!equeue.signal").unwrap(), Type::Signal);
        assert!(parse_type("wat").is_err());
        assert!(parse_type("memref<axbxc>").is_err());
    }

    #[test]
    fn simple_round_trip() {
        round_trip("%0 = \"arith.constant\"() {value = 4} : () -> i32\n");
    }

    #[test]
    fn operands_and_uses() {
        let text = "%a = \"test.src\"() : () -> i32\n\"test.sink\"(%a, %a) : (i32, i32) -> ()\n";
        round_trip(text);
        let m = parse_module(text).unwrap();
        let sink = m.find_first("test.sink").unwrap();
        assert_eq!(m.op(sink).operands.len(), 2);
        assert_eq!(m.op(sink).operands[0], m.op(sink).operands[1]);
    }

    #[test]
    fn multi_result() {
        round_trip("%0, %1 = \"test.src\"() : () -> (i32, i32)\n\"test.sink\"(%0, %1) : (i32, i32) -> ()\n");
    }

    #[test]
    fn attrs_of_all_kinds() {
        let text = "\"test.attrs\"() {a = [1, 2], b = true, c = \"s\", d = 2.5, e = unit, f = i32, g = [\"x\", \"y\"]} : () -> ()\n";
        let m = parse_module(text).unwrap();
        let op = m.find_first("test.attrs").unwrap();
        let attrs = &m.op(op).attrs;
        assert_eq!(attrs.int_array("a"), Some(&[1, 2][..]));
        assert_eq!(attrs.get("b"), Some(&Attr::Bool(true)));
        assert_eq!(attrs.str("c"), Some("s"));
        assert_eq!(attrs.float("d"), Some(2.5));
        assert_eq!(attrs.get("e"), Some(&Attr::Unit));
        assert_eq!(attrs.get("f"), Some(&Attr::Ty(Type::I32)));
        assert_eq!(
            attrs.get("g"),
            Some(&Attr::StrArray(vec!["x".into(), "y".into()]))
        );
        round_trip(text);
    }

    #[test]
    fn regions_and_block_args() {
        let text = "%done = \"equeue.launch\"(%done_0) ({\n\
                    ^bb0(%arg: !equeue.signal):\n\
                    \x20\x20\"equeue.return\"() : () -> ()\n\
                    }) : (!equeue.signal) -> !equeue.signal\n";
        // %done_0 is undefined; build a defining op first.
        let full = format!("%done_0 = \"equeue.control_start\"() : () -> !equeue.signal\n{text}");
        let m = parse_module(&full).unwrap();
        let launch = m.find_first("equeue.launch").unwrap();
        assert_eq!(m.op(launch).regions.len(), 1);
        let inner = m.region_ops(m.op(launch).regions[0]);
        assert_eq!(m.op(inner[0]).name, "equeue.return");
        assert_eq!(print_module(&m), full);
    }

    #[test]
    fn outer_values_visible_in_regions() {
        let text = "\
%c = \"arith.constant\"() {value = 1} : () -> i32
\"test.wrap\"() ({
  \"test.use\"(%c) : (i32) -> ()
}) : () -> ()
";
        round_trip(text);
    }

    #[test]
    fn undefined_value_is_error() {
        let e = parse_module("\"test.sink\"(%nope) : (i32) -> ()\n").unwrap_err();
        assert!(e.to_string().contains("undefined value"));
    }

    #[test]
    fn type_mismatch_is_error() {
        let text = "%a = \"test.src\"() : () -> i32\n\"test.sink\"(%a) : (f32) -> ()\n";
        let e = parse_module(text).unwrap_err();
        assert!(e
            .to_string()
            .contains("has type i32 but signature says f32"));
    }

    #[test]
    fn comments_are_skipped() {
        let text = "// a comment\n%0 = \"arith.constant\"() {value = 4} : () -> i32\n";
        let m = parse_module(text).unwrap();
        assert_eq!(m.find_all("arith.constant").len(), 1);
    }

    #[test]
    fn error_position_reported() {
        let e = parse_module("\n\n  ???").unwrap_err();
        match e {
            IrError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_region_gets_empty_block() {
        let text = "\"test.wrap\"() ({\n}) : () -> ()\n";
        let m = parse_module(text).unwrap();
        let op = m.find_first("test.wrap").unwrap();
        let r = m.op(op).regions[0];
        assert_eq!(m.region(r).blocks.len(), 1);
        round_trip(text);
    }
}
