//! The dialect registry: dialect-provided op metadata and verifiers.
//!
//! Dialects register one [`OpInfo`] per operation name. The registry is what
//! keeps the IR kernel generic — the kernel never hard-codes EQueue (or any
//! other dialect) semantics; it only consults hooks registered here.

use crate::module::{Module, OpId};
use std::collections::HashMap;

/// Per-op verification hook; returns a human-readable error on violation.
pub type VerifyFn = fn(&Module, OpId) -> Result<(), String>;

/// Declarative properties of an operation kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpTraits {
    /// Must appear last in its block (e.g. `equeue.return`, `affine.yield`).
    pub is_terminator: bool,
    /// Has no side effects; erasable when results are unused.
    pub is_pure: bool,
    /// Is an EQueue *event* operation (asynchronous, yields a signal).
    pub is_event: bool,
    /// Declares hardware structure (evaluated at elaboration time).
    pub is_structure: bool,
}

/// Registered metadata for one operation name.
#[derive(Debug, Clone)]
pub struct OpInfo {
    /// Fully-qualified op name (`"equeue.launch"`).
    pub name: String,
    /// Declarative traits.
    pub traits: OpTraits,
    /// Optional structural verifier.
    pub verify: Option<VerifyFn>,
}

/// A registry of known operations, usually populated by dialect crates.
///
/// # Examples
///
/// ```
/// use equeue_ir::{DialectRegistry, OpInfo, OpTraits};
/// let mut reg = DialectRegistry::new();
/// reg.register(OpInfo {
///     name: "test.pure".into(),
///     traits: OpTraits { is_pure: true, ..Default::default() },
///     verify: None,
/// });
/// assert!(reg.get("test.pure").is_some());
/// assert!(reg.traits("test.pure").is_pure);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DialectRegistry {
    ops: HashMap<String, OpInfo>,
}

impl DialectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) op metadata.
    pub fn register(&mut self, info: OpInfo) {
        self.ops.insert(info.name.clone(), info);
    }

    /// Convenience: registers a name with traits and an optional verifier.
    pub fn register_op(&mut self, name: &str, traits: OpTraits, verify: Option<VerifyFn>) {
        self.register(OpInfo {
            name: name.to_string(),
            traits,
            verify,
        });
    }

    /// Metadata for `name`, if registered.
    pub fn get(&self, name: &str) -> Option<&OpInfo> {
        self.ops.get(name)
    }

    /// Traits for `name`; unknown ops get default (all-false) traits.
    pub fn traits(&self, name: &str) -> OpTraits {
        self.ops.get(name).map(|i| i.traits).unwrap_or_default()
    }

    /// Whether any op of this name has been registered.
    pub fn knows(&self, name: &str) -> bool {
        self.ops.contains_key(name)
    }

    /// Runs the registered verifier for `op`, if any.
    pub fn verify_op(&self, module: &Module, op: OpId) -> Result<(), String> {
        if let Some(info) = self.ops.get(&module.op(op).name) {
            if let Some(v) = info.verify {
                return v(module, op);
            }
        }
        Ok(())
    }

    /// Number of registered op kinds.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrMap;

    fn reject_all(_: &Module, _: OpId) -> Result<(), String> {
        Err("always rejected".into())
    }

    #[test]
    fn register_and_query() {
        let mut reg = DialectRegistry::new();
        assert!(reg.is_empty());
        reg.register_op(
            "t.a",
            OpTraits {
                is_terminator: true,
                ..Default::default()
            },
            None,
        );
        assert_eq!(reg.len(), 1);
        assert!(reg.knows("t.a"));
        assert!(reg.traits("t.a").is_terminator);
        assert!(!reg.traits("t.unknown").is_terminator);
    }

    #[test]
    fn verify_dispatch() {
        let mut m = Module::new();
        let blk = m.top_block();
        let good = m.create_op("t.good", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, good);
        let bad = m.create_op("t.bad", vec![], vec![], AttrMap::new(), vec![]);
        m.append_op(blk, bad);

        let mut reg = DialectRegistry::new();
        reg.register_op("t.bad", OpTraits::default(), Some(reject_all));
        assert!(reg.verify_op(&m, good).is_ok());
        assert_eq!(reg.verify_op(&m, bad).unwrap_err(), "always rejected");
    }
}
