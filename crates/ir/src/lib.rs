//! # equeue-ir — a self-contained multi-level IR kernel
//!
//! This crate is the hosting substrate for the EQueue simulation stack, a
//! Rust reproduction of *Compiler-Driven Simulation of Reconfigurable
//! Hardware Accelerators* (HPCA 2022). The paper embeds its EQueue dialect
//! in MLIR; since no mature MLIR bindings exist for Rust, this crate
//! reimplements the essential MLIR machinery the paper relies on:
//!
//! * generic **operations** carrying operands, results, attributes and
//!   nested regions ([`Module`], [`Operation`]);
//! * **SSA values** with use-def queries and replacement;
//! * a fluent **builder** API ([`OpBuilder`]) used by the paper's
//!   accelerator generators (§VI-B);
//! * a deterministic textual **printer** ([`print_module`]) and a matching
//!   **parser** ([`parse_module`]);
//! * a **verifier** ([`verify_module`]) driven by a [`DialectRegistry`] of
//!   per-op metadata;
//! * a **pass framework** ([`Pass`], [`PassManager`]) hosting the reusable
//!   lowering passes of §V;
//! * **rewrite utilities** ([`dce`], [`inline_region`], [`split_block`])
//!   shared by those passes.
//!
//! Dialect definitions (arith, affine, linalg, and the EQueue dialect
//! itself) live in the `equeue-dialect` crate; the discrete-event simulation
//! engine that executes EQueue programs lives in `equeue-core`.
//!
//! ## Example
//!
//! ```
//! use equeue_ir::{Module, OpBuilder, Type, print_module, parse_module};
//!
//! // Build a tiny program …
//! let mut m = Module::new();
//! let block = m.top_block();
//! let mut b = OpBuilder::at_end(&mut m, block);
//! let c = b.op("arith.constant").attr("value", 4i64)
//!     .named_result(Type::I32, "four").finish();
//! let v = b.module().result(c, 0);
//! b.op("test.use").operand(v).finish();
//!
//! // … print it, and parse it back.
//! let text = print_module(&m);
//! let reparsed = parse_module(&text)?;
//! assert_eq!(print_module(&reparsed), text);
//! # Ok::<(), equeue_ir::IrError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod attr;
mod builder;
mod error;
mod module;
mod parser;
mod printer;
mod registry;
mod rewrite;
mod types;
mod verify;

pub mod pass;

pub use attr::{Attr, AttrMap};
pub use builder::{OpBuilder, OpSpec};
pub use error::{IrError, IrResult};
pub use module::{
    Block, BlockId, Module, OpId, Operation, Region, RegionId, ValueData, ValueDef, ValueId,
};
pub use parser::{parse_module, parse_type};
pub use pass::{Pass, PassManager, PassStat, PipelineStats};
pub use printer::{print_module, print_op};
pub use registry::{DialectRegistry, OpInfo, OpTraits, VerifyFn};
pub use rewrite::{dce, inline_region, move_after, move_before, split_block};
pub use types::Type;
pub use verify::verify_module;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn core_types_are_send_sync() {
        assert_send::<Module>();
        assert_sync::<Module>();
        assert_send::<DialectRegistry>();
        assert_sync::<DialectRegistry>();
        assert_send::<Type>();
        assert_send::<Attr>();
        assert_send::<IrError>();
    }
}
