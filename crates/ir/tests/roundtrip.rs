//! Property tests: printing a module and parsing it back must reproduce the
//! exact same text (a fixed point after one round).
//!
//! Uses a deterministic xorshift generator instead of `proptest` — the
//! workspace carries no external dependencies. Plans are derived from a
//! seeded stream, so every failure is reproducible; the plan is printed on
//! assertion failure.

use equeue_ir::{parse_module, print_module, Attr, AttrMap, Module, OpBuilder, Type, ValueId};

/// Deterministic xorshift64* PRNG.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }

    fn maybe<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> Option<T> {
        if self.bool() {
            Some(f(self))
        } else {
            None
        }
    }

    /// A random lowercase identifier of `1..=max_len` chars.
    fn ident(&mut self, max_len: u64) -> String {
        let len = self.range(1, max_len + 1) as usize;
        (0..len)
            .map(|_| char::from(b'a' + (self.range(0, 26) as u8)))
            .collect()
    }
}

/// Plan for one generated op.
#[derive(Debug, Clone)]
struct OpPlan {
    name: usize,
    n_results: usize,
    use_prev: bool,
    attr_int: Option<i64>,
    attr_str: Option<String>,
    attr_arr: Option<Vec<i64>>,
    attr_bool: Option<bool>,
    region_body: Vec<RegionOpPlan>,
    hint: Option<String>,
}

#[derive(Debug, Clone)]
struct RegionOpPlan {
    name: usize,
    use_outer: bool,
    use_arg: bool,
}

const NAMES: &[&str] = &[
    "test.alpha",
    "arith.constant",
    "equeue.control_start",
    "test.sink",
    "affine.load",
];

const REGION_NAMES: &[&str] = &["test.inner", "equeue.return", "arith.addi"];

const TYPES: &[Type] = &[Type::I32, Type::I64, Type::F32, Type::Index, Type::Signal];

fn op_plan(rng: &mut Rng) -> OpPlan {
    OpPlan {
        name: rng.range(0, NAMES.len() as u64) as usize,
        n_results: rng.range(0, 3) as usize,
        use_prev: rng.bool(),
        attr_int: rng.maybe(|r| r.next() as i64),
        attr_str: rng.maybe(|r| r.ident(6)),
        attr_arr: rng.maybe(|r| {
            let len = r.range(1, 4) as usize;
            (0..len).map(|_| r.next() as i64).collect()
        }),
        attr_bool: rng.maybe(Rng::bool),
        region_body: {
            let len = rng.range(0, 3) as usize;
            (0..len)
                .map(|_| RegionOpPlan {
                    name: rng.range(0, REGION_NAMES.len() as u64) as usize,
                    use_outer: rng.bool(),
                    use_arg: rng.bool(),
                })
                .collect()
        },
        hint: rng.maybe(|r| r.ident(8)),
    }
}

fn build_module(plans: &[OpPlan]) -> Module {
    let mut m = Module::new();
    let top = m.top_block();
    let mut avail: Vec<ValueId> = vec![];
    for (i, p) in plans.iter().enumerate() {
        let mut attrs = AttrMap::new();
        if let Some(v) = p.attr_int {
            attrs.set("value", v);
        }
        if let Some(s) = &p.attr_str {
            attrs.set("label", s.as_str());
        }
        if let Some(a) = &p.attr_arr {
            attrs.set("dims", Attr::IntArray(a.clone()));
        }
        if let Some(b) = p.attr_bool {
            attrs.set("flag", b);
        }

        let mut regions = vec![];
        if !p.region_body.is_empty() {
            let r = m.new_region(None);
            let b = m.new_block(r, vec![TYPES[i % TYPES.len()].clone()]);
            let arg = m.block(b).args[0];
            for rp in &p.region_body {
                let mut operands = vec![];
                if rp.use_outer {
                    if let Some(&v) = avail.first() {
                        operands.push(v);
                    }
                }
                if rp.use_arg {
                    operands.push(arg);
                }
                let mut ib = OpBuilder::at_end(&mut m, b);
                let mut spec = ib.op(REGION_NAMES[rp.name]);
                for v in operands {
                    spec = spec.operand(v);
                }
                spec.finish();
            }
            regions.push(r);
        }

        let operands: Vec<ValueId> = if p.use_prev && !avail.is_empty() {
            vec![avail[avail.len() - 1]]
        } else {
            vec![]
        };
        let result_types: Vec<Type> = (0..p.n_results)
            .map(|k| TYPES[(i + k) % TYPES.len()].clone())
            .collect();
        let op = m.create_op(NAMES[p.name], operands, result_types, attrs, regions);
        m.append_op(top, op);
        for k in 0..p.n_results {
            let v = m.result(op, k);
            if k == 0 {
                if let Some(h) = &p.hint {
                    m.set_value_name(v, h);
                }
            }
            avail.push(v);
        }
    }
    m
}

#[test]
fn print_parse_print_is_identity() {
    let mut rng = Rng::new(0x101D711);
    for _ in 0..128 {
        let n = rng.range(0, 12) as usize;
        let plans: Vec<OpPlan> = (0..n).map(|_| op_plan(&mut rng)).collect();
        let m = build_module(&plans);
        let text = print_module(&m);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{text}\nerror: {e}"));
        let text2 = print_module(&reparsed);
        assert_eq!(text, text2, "plans = {plans:?}");
    }
}

#[test]
fn parse_rejects_random_garbage_gracefully() {
    let mut rng = Rng::new(0x6A2BA6E);
    for _ in 0..128 {
        let len = rng.range(0, 60) as usize;
        // Printable ASCII noise; must never panic (errors are fine).
        let s: String = (0..len)
            .map(|_| char::from(rng.range(b' ' as u64, b'~' as u64 + 1) as u8))
            .collect();
        let _ = parse_module(&s);
    }
}

#[test]
fn type_display_parses_back() {
    let mut rng = Rng::new(0x7F9E5);
    for _ in 0..128 {
        let idx = rng.range(0, TYPES.len() as u64) as usize;
        let ndims = rng.range(0, 3) as usize;
        let dims: Vec<usize> = (0..ndims).map(|_| rng.range(1, 64) as usize).collect();
        let t = if dims.is_empty() {
            TYPES[idx].clone()
        } else {
            Type::buffer(dims, TYPES[idx].clone())
        };
        let text = t.to_string();
        let parsed = equeue_ir::parse_type(&text).unwrap();
        assert_eq!(t, parsed);
    }
}
