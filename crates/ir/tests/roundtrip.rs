//! Property tests: printing a module and parsing it back must reproduce the
//! exact same text (a fixed point after one round).

use equeue_ir::{parse_module, print_module, Attr, AttrMap, Module, OpBuilder, Type, ValueId};
use proptest::prelude::*;

/// Plan for one generated op.
#[derive(Debug, Clone)]
struct OpPlan {
    name: usize,
    n_results: usize,
    use_prev: bool,
    attr_int: Option<i64>,
    attr_str: Option<String>,
    attr_arr: Option<Vec<i64>>,
    attr_bool: Option<bool>,
    region_body: Vec<RegionOpPlan>,
    hint: Option<String>,
}

#[derive(Debug, Clone)]
struct RegionOpPlan {
    name: usize,
    use_outer: bool,
    use_arg: bool,
}

const NAMES: &[&str] = &[
    "test.alpha",
    "arith.constant",
    "equeue.control_start",
    "test.sink",
    "affine.load",
];

const REGION_NAMES: &[&str] = &["test.inner", "equeue.return", "arith.addi"];

const TYPES: &[Type] = &[Type::I32, Type::I64, Type::F32, Type::Index, Type::Signal];

fn op_plan() -> impl Strategy<Value = OpPlan> {
    (
        0..NAMES.len(),
        0usize..3,
        any::<bool>(),
        proptest::option::of(any::<i64>()),
        proptest::option::of("[a-z]{1,6}"),
        proptest::option::of(proptest::collection::vec(any::<i64>(), 1..4)),
        proptest::option::of(any::<bool>()),
        proptest::collection::vec(
            (0..REGION_NAMES.len(), any::<bool>(), any::<bool>()).prop_map(
                |(name, use_outer, use_arg)| RegionOpPlan { name, use_outer, use_arg },
            ),
            0..3,
        ),
        proptest::option::of("[a-z_][a-z0-9_]{0,8}"),
    )
        .prop_map(
            |(name, n_results, use_prev, attr_int, attr_str, attr_arr, attr_bool, region_body, hint)| OpPlan {
                name,
                n_results,
                use_prev,
                attr_int,
                attr_str,
                attr_arr,
                attr_bool,
                region_body,
                hint,
            },
        )
}

fn build_module(plans: &[OpPlan]) -> Module {
    let mut m = Module::new();
    let top = m.top_block();
    let mut avail: Vec<ValueId> = vec![];
    for (i, p) in plans.iter().enumerate() {
        let mut attrs = AttrMap::new();
        if let Some(v) = p.attr_int {
            attrs.set("value", v);
        }
        if let Some(s) = &p.attr_str {
            attrs.set("label", s.as_str());
        }
        if let Some(a) = &p.attr_arr {
            attrs.set("dims", Attr::IntArray(a.clone()));
        }
        if let Some(b) = p.attr_bool {
            attrs.set("flag", b);
        }

        let mut regions = vec![];
        if !p.region_body.is_empty() {
            let r = m.new_region(None);
            let b = m.new_block(r, vec![TYPES[i % TYPES.len()].clone()]);
            let arg = m.block(b).args[0];
            for rp in &p.region_body {
                let mut operands = vec![];
                if rp.use_outer {
                    if let Some(&v) = avail.first() {
                        operands.push(v);
                    }
                }
                if rp.use_arg {
                    operands.push(arg);
                }
                let mut ib = OpBuilder::at_end(&mut m, b);
                let mut spec = ib.op(REGION_NAMES[rp.name]);
                for v in operands {
                    spec = spec.operand(v);
                }
                spec.finish();
            }
            regions.push(r);
        }

        let operands: Vec<ValueId> = if p.use_prev && !avail.is_empty() {
            vec![avail[avail.len() - 1]]
        } else {
            vec![]
        };
        let result_types: Vec<Type> =
            (0..p.n_results).map(|k| TYPES[(i + k) % TYPES.len()].clone()).collect();
        let op = m.create_op(NAMES[p.name], operands, result_types, attrs, regions);
        m.append_op(top, op);
        for k in 0..p.n_results {
            let v = m.result(op, k);
            if k == 0 {
                if let Some(h) = &p.hint {
                    m.set_value_name(v, h);
                }
            }
            avail.push(v);
        }
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn print_parse_print_is_identity(plans in proptest::collection::vec(op_plan(), 0..12)) {
        let m = build_module(&plans);
        let text = print_module(&m);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("failed to reparse:\n{text}\nerror: {e}"));
        let text2 = print_module(&reparsed);
        prop_assert_eq!(text, text2);
    }

    #[test]
    fn parse_rejects_random_garbage_gracefully(s in "[ -~]{0,60}") {
        // Must never panic; errors are fine.
        let _ = parse_module(&s);
    }

    #[test]
    fn type_display_parses_back(idx in 0..TYPES.len(), dims in proptest::collection::vec(1usize..64, 0..3)) {
        let t = if dims.is_empty() {
            TYPES[idx].clone()
        } else {
            Type::buffer(dims, TYPES[idx].clone())
        };
        let text = t.to_string();
        let parsed = equeue_ir::parse_type(&text).unwrap();
        prop_assert_eq!(t, parsed);
    }
}
