//! Prepass facts — a read-only, analysis-friendly view of the layout
//! prepass.
//!
//! The same prepass that makes execution fast ([`crate::CompiledModule`])
//! also *knows* things about the module before any cycle runs: which ops
//! decoded, what every memory's timing model looks like, which `affine.for`
//! bodies compiled to fused traces and why the rest declined. This module
//! packages those facts into plain public data ([`PrepassFacts`]) so the
//! static-analysis crate (`equeue-analysis`) and its `simcheck` binary can
//! consume them without reaching into engine internals.
//!
//! Two entry points:
//!
//! * [`CompiledModule::facts`](crate::CompiledModule::facts) — from an
//!   already-compiled (strictly validated) handle, reusing its plan.
//! * [`analyze_facts`] — **lenient**: builds a fresh plan and reports
//!   malformed ops as data ([`InvalidOpFact`]) instead of failing, so the
//!   analyzer can diagnose fuzzer-malformed IR that
//!   [`crate::CompiledModule::compile`] would reject.

use crate::engine::{OpCode, Plan};
use crate::fused::FuseDecline;
use crate::library::{MemSpec, SimLibrary};
use equeue_dialect::ConnKind;
use equeue_ir::{BlockId, Module, OpId};

/// Whether (and how) an `affine.for` body compiled to a fused trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FuseVerdict {
    /// Compiled to a straight-line trace of `insts` instructions. The
    /// runtime preflight can still decline on live machine state
    /// (non-integer tensors, cache-backed memories) — static analysis
    /// re-checks the statically-decidable parts of that separately.
    Fused {
        /// Trace length in instructions.
        insts: usize,
    },
    /// Trace formation declined, with the precise reason.
    Declined(FuseDecline),
    /// The loop never enters (`lower >= upper`); no trace was attempted.
    ZeroTrip,
}

/// One `affine.for` op: static bounds plus the fusion verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopFact {
    /// The `affine.for` op.
    pub op: OpId,
    /// The body block.
    pub body: BlockId,
    /// Inclusive lower bound.
    pub lower: i64,
    /// Exclusive upper bound.
    pub upper: i64,
    /// Step.
    pub step: i64,
    /// The fusion verdict.
    pub verdict: FuseVerdict,
}

impl LoopFact {
    /// Static trip count: `0` for never-entered loops, `None` when the
    /// step is non-positive (a runtime error if executed).
    pub fn trip_count(&self) -> Option<u64> {
        if self.lower >= self.upper {
            return Some(0);
        }
        if self.step <= 0 {
            return None;
        }
        let span = (self.upper - self.lower) as u64;
        let step = self.step as u64;
        Some(span.div_ceil(step))
    }
}

/// One `equeue.create_proc` (or `equeue.create_dma`) op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcFact {
    /// The defining op.
    pub op: OpId,
    /// Processor kind string (`"dma"` for `equeue.create_dma`).
    pub kind: String,
}

/// One `equeue.create_mem` op, with its resolved timing model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemFact {
    /// The defining op.
    pub op: OpId,
    /// Memory kind string (`"SRAM"`, `"Cache"`, …).
    pub kind: String,
    /// The resolved [`crate::MemoryBehavior::model_name`].
    pub model: String,
    /// [`crate::MemoryBehavior::uniform_scalar_cycles`] of the resolved
    /// model: `Some` for stateless uniform-latency memories, `None` for
    /// state-dependent ones (caches) — the latter decline fused traces at
    /// run time.
    pub uniform_scalar_cycles: Option<u64>,
    /// Declared capacity in elements.
    pub capacity_elems: usize,
    /// Declared capacity in bytes (elements × element width).
    pub capacity_bytes: u64,
    /// Bank count.
    pub banks: u32,
    /// Concurrent access ports (explicit attribute or the library default).
    pub ports: usize,
}

/// One `equeue.create_connection` op.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConnFact {
    /// The defining op.
    pub op: OpId,
    /// Connection kind.
    pub kind: ConnKind,
    /// Bandwidth in bytes/cycle (`0` = unlimited).
    pub bandwidth: u64,
}

/// One `equeue.op` site, with the cycle cost the prepass resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtOpFact {
    /// The op.
    pub op: OpId,
    /// External-op signature (`"mac4"`, …).
    pub sig: String,
    /// Resolved cycle cost; `None` means no library implementation and no
    /// explicit override — a [`crate::SimError::Unsupported`] if executed.
    pub cycles: Option<u64>,
}

/// One op that failed to decode (would raise [`crate::SimError::Layout`]
/// if executed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidOpFact {
    /// The op.
    pub op: OpId,
    /// The op's name.
    pub name: String,
    /// The decoder's message.
    pub msg: String,
}

/// One op the engine does not model (would raise
/// [`crate::SimError::Unsupported`] if executed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnsupportedOpFact {
    /// The op.
    pub op: OpId,
    /// The op's name.
    pub name: String,
}

/// Everything the layout prepass statically knows about a module, in op
/// order (deterministic across runs and thread counts — the prepass is a
/// pure function of the module and library).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PrepassFacts {
    /// Processors and DMA engines.
    pub procs: Vec<ProcFact>,
    /// Memories, with resolved timing models.
    pub mems: Vec<MemFact>,
    /// Connections.
    pub conns: Vec<ConnFact>,
    /// External-op sites.
    pub ext_ops: Vec<ExtOpFact>,
    /// `affine.for` loops with fusion verdicts.
    pub loops: Vec<LoopFact>,
    /// Ops that failed to decode — *all* of them, unlike the strict
    /// compile path which reports only the first.
    pub invalid_ops: Vec<InvalidOpFact>,
    /// Ops the engine does not model.
    pub unsupported_ops: Vec<UnsupportedOpFact>,
}

/// Builds [`PrepassFacts`] by running the layout prepass **leniently**:
/// malformed ops become [`InvalidOpFact`] entries instead of errors, so the
/// analyzer can produce typed diagnostics for IR that
/// [`crate::CompiledModule::compile`] rejects. Never panics.
pub fn analyze_facts(module: &Module, library: &SimLibrary) -> PrepassFacts {
    let plan = Plan::build(module, library);
    facts_from_plan(module, &plan, library)
}

pub(crate) fn facts_from_plan(module: &Module, plan: &Plan, lib: &SimLibrary) -> PrepassFacts {
    let mut facts = PrepassFacts::default();
    for op in module.live_ops() {
        let Some(info) = plan.ops.get(op.index()) else {
            continue;
        };
        match &info.code {
            OpCode::CreateProc { kind } => facts.procs.push(ProcFact {
                op,
                kind: kind.clone(),
            }),
            OpCode::CreateDma => facts.procs.push(ProcFact {
                op,
                kind: "dma".to_string(),
            }),
            OpCode::CreateMem {
                kind,
                shape,
                data_bits,
                banks,
                ports,
                attrs,
            } => {
                let capacity_elems = shape
                    .iter()
                    .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                    .unwrap_or(usize::MAX);
                let spec = MemSpec {
                    kind: kind.clone(),
                    capacity_elems,
                    data_bits: *data_bits,
                    banks: *banks,
                    attrs: attrs.clone(),
                };
                let behavior = lib.make_memory(&spec);
                let elem_bytes = u64::from(data_bits.div_ceil(8).max(1));
                facts.mems.push(MemFact {
                    op,
                    kind: kind.clone(),
                    model: behavior.model_name().to_string(),
                    uniform_scalar_cycles: behavior.uniform_scalar_cycles(),
                    capacity_elems,
                    capacity_bytes: (capacity_elems as u64).saturating_mul(elem_bytes),
                    banks: *banks,
                    ports: ports.unwrap_or(lib.default_mem_ports),
                });
            }
            OpCode::CreateConnection { kind, bandwidth } => facts.conns.push(ConnFact {
                op,
                kind: *kind,
                bandwidth: *bandwidth,
            }),
            OpCode::ExtOp { sig, cycles } => facts.ext_ops.push(ExtOpFact {
                op,
                sig: sig.clone(),
                cycles: *cycles,
            }),
            OpCode::For {
                lower,
                upper,
                step,
                body,
                ..
            } => {
                let bi = body.index();
                let verdict = if lower >= upper {
                    FuseVerdict::ZeroTrip
                } else if let Some(f) = plan.fused.get(bi).and_then(|o| o.as_deref()) {
                    FuseVerdict::Fused {
                        insts: f.inst_count(),
                    }
                } else if let Some(d) = plan.fuse_declines.get(bi).and_then(|o| o.as_ref()) {
                    FuseVerdict::Declined(d.clone())
                } else {
                    // A body block outside the block table (malformed IR
                    // past the fuzzer's reach): treat as malformed.
                    FuseVerdict::Declined(FuseDecline::Malformed)
                };
                facts.loops.push(LoopFact {
                    op,
                    body: *body,
                    lower: *lower,
                    upper: *upper,
                    step: *step,
                    verdict,
                });
            }
            OpCode::Invalid { op: name, msg } => facts.invalid_ops.push(InvalidOpFact {
                op,
                name: name.clone(),
                msg: msg.clone(),
            }),
            OpCode::Unsupported(name) => facts.unsupported_ops.push(UnsupportedOpFact {
                op,
                name: name.clone(),
            }),
            _ => {}
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
    use equeue_ir::{OpBuilder, Type};

    fn loop_module(n: i64) -> Module {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::ARM_R5);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let buf = b.alloc(mem, &[64], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, bi, i) = ib.affine_for(0, n, 1);
            {
                let mut kb = OpBuilder::at_end(ib.module_mut(), bi);
                let v = kb.affine_load(l.body_args[0], vec![i]);
                let w = kb.addi(v, v);
                kb.affine_store(w, l.body_args[0], vec![i]);
                kb.affine_yield();
            }
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        m
    }

    #[test]
    fn facts_report_fused_loop_and_components() {
        let facts = analyze_facts(&loop_module(8), &SimLibrary::standard());
        assert_eq!(facts.procs.len(), 1);
        assert_eq!(facts.mems.len(), 1);
        assert!(facts.mems[0].uniform_scalar_cycles.is_some());
        assert_eq!(facts.mems[0].capacity_elems, 64);
        assert_eq!(facts.loops.len(), 1);
        assert_eq!(facts.loops[0].trip_count(), Some(8));
        assert!(matches!(
            facts.loops[0].verdict,
            FuseVerdict::Fused { insts } if insts >= 4
        ));
        assert!(facts.invalid_ops.is_empty());
    }

    #[test]
    fn zero_trip_loop_reports_zero_trip() {
        let facts = analyze_facts(&loop_module(0), &SimLibrary::standard());
        assert_eq!(facts.loops.len(), 1);
        assert_eq!(facts.loops[0].verdict, FuseVerdict::ZeroTrip);
        assert_eq!(facts.loops[0].trip_count(), Some(0));
    }

    #[test]
    fn nested_loop_declines_with_multi_level_nest() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::ARM_R5);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let buf = b.alloc(mem, &[8, 8], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, bi, i) = ib.affine_for(0, 8, 1);
            let mut ib2 = OpBuilder::at_end(ib.module_mut(), bi);
            let (_, bj, j) = ib2.affine_for(0, 8, 1);
            {
                let mut kb = OpBuilder::at_end(ib2.module_mut(), bj);
                let v = kb.affine_load(l.body_args[0], vec![i, j]);
                kb.affine_store(v, l.body_args[0], vec![i, j]);
                kb.affine_yield();
            }
            let mut ib2 = OpBuilder::at_end(&mut m, bi);
            ib2.affine_yield();
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);

        let facts = analyze_facts(&m, &SimLibrary::standard());
        assert_eq!(facts.loops.len(), 2);
        // Outer loop contains the inner affine.for: multi-level nest.
        let outer = facts.loops.iter().find(|l| l.upper == 8).unwrap();
        assert!(facts.loops.iter().any(|l| matches!(
            l.verdict,
            FuseVerdict::Declined(FuseDecline::MultiLevelNest)
        )));
        // The inner body itself fuses.
        assert!(facts
            .loops
            .iter()
            .any(|l| matches!(l.verdict, FuseVerdict::Fused { .. })));
        let _ = outer;
    }

    #[test]
    fn invalid_ops_are_all_reported() {
        let mut m = Module::new();
        let blk = m.top_block();
        // Two malformed launches (no operands): the strict compile path
        // reports only the first; facts must list both.
        for _ in 0..2 {
            let op = m.create_op(
                "equeue.launch",
                vec![],
                vec![Type::Signal],
                Default::default(),
                vec![],
            );
            m.append_op(blk, op);
        }
        let facts = analyze_facts(&m, &SimLibrary::standard());
        assert_eq!(facts.invalid_ops.len(), 2);
    }
}
