//! The elaborated hardware model: component instances, buffers, and
//! connections, with per-device schedule queues for contention (§IV-C/D).
//!
//! A [`Machine`] is built incrementally while the engine interprets the
//! structure-specification ops of an EQueue program (`create_proc`,
//! `create_mem`, …). Timing behaviour lives in small model objects:
//! processors map op names to cycle counts, memories implement
//! [`MemoryBehavior`] (the paper's `getReadOrWriteCycles` extension point),
//! and connections ration bytes per cycle.

use crate::value::{BufId, CompId, ConnId, Tensor};
use equeue_dialect::ConnKind;
use std::collections::HashMap;

/// Read or write, for memory/connection accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A read access.
    Read,
    /// A write access.
    Write,
}

/// Timing model of a memory component: given an access, report its latency
/// in cycles. Implementations may keep state (e.g. cache tags) — this is
/// the extension point of §IV-D: a custom component overrides
/// `access_cycles` exactly like the paper's `getReadOrWriteCycles`.
pub trait MemoryBehavior: Send {
    /// Latency in cycles of accessing `elems` elements starting at flat
    /// element address `addr`, on a memory with `banks` banks.
    fn access_cycles(&mut self, kind: AccessKind, addr: usize, elems: usize, banks: u32) -> u64;

    /// Model name for diagnostics.
    fn model_name(&self) -> &str;

    /// If every single-element access costs the same, stateless latency
    /// regardless of kind/address/history, that latency. `None` (the
    /// default) means the latency is address- or history-dependent — such
    /// memories are excluded from the engine's fused loop traces, which
    /// pre-resolve cycle costs at trace-entry time. Stateful models (e.g.
    /// [`CacheBehavior`]) must keep the default: returning `Some` here would
    /// let traces bypass their `access_cycles` state updates.
    fn uniform_scalar_cycles(&self) -> Option<u64> {
        None
    }

    /// The model's complete timing state, for simulation snapshots. The
    /// stock behaviors return their matching [`BehaviorSnapshot`] variant so
    /// a resumed run replays bit-identically; the default is
    /// [`BehaviorSnapshot::Opaque`], which tells the snapshot codec it
    /// cannot capture this model's state — on resume the memory is rebuilt
    /// from its [`MemSpec`](crate::MemSpec) factory instead, which is only
    /// exact for stateless custom models.
    fn snapshot_behavior(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::Opaque
    }
}

/// Serialisable timing state of a [`MemoryBehavior`], captured into
/// simulation snapshots and replayed on resume.
///
/// The stock models round-trip exactly (including [`CacheBehavior`]'s LRU
/// tag stacks and hit/miss counters). Custom library models that do not
/// override [`MemoryBehavior::snapshot_behavior`] serialise as
/// [`Opaque`](BehaviorSnapshot::Opaque) and are re-created from their
/// factory on resume — exact only if the model is stateless.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BehaviorSnapshot {
    /// [`SramBehavior`] state.
    Sram {
        /// Cycles per banked access beat.
        cycles_per_access: u64,
    },
    /// [`RegisterBehavior`] (stateless).
    Register,
    /// [`DramBehavior`] state.
    Dram {
        /// Activation latency.
        latency: u64,
        /// Cycles per banked beat.
        cycles_per_access: u64,
    },
    /// [`CacheBehavior`] state, including the live LRU stacks.
    Cache {
        /// Number of sets.
        sets: usize,
        /// Associativity.
        ways: usize,
        /// Elements per line.
        line_elems: usize,
        /// Hit latency.
        hit_cycles: u64,
        /// Miss latency.
        miss_cycles: u64,
        /// Per-set LRU stacks of line tags (most recent last).
        tags: Vec<Vec<usize>>,
        /// Hit counter.
        hits: u64,
        /// Miss counter.
        misses: u64,
    },
    /// A custom model whose state the codec cannot capture.
    Opaque,
}

impl BehaviorSnapshot {
    /// Rebuilds the concrete behavior object, or `None` for
    /// [`Opaque`](BehaviorSnapshot::Opaque) (the caller falls back to the
    /// library's memory factory).
    pub(crate) fn rebuild(&self) -> Option<Box<dyn MemoryBehavior>> {
        match self {
            BehaviorSnapshot::Sram { cycles_per_access } => Some(Box::new(SramBehavior {
                cycles_per_access: *cycles_per_access,
            })),
            BehaviorSnapshot::Register => Some(Box::new(RegisterBehavior)),
            BehaviorSnapshot::Dram {
                latency,
                cycles_per_access,
            } => Some(Box::new(DramBehavior {
                latency: *latency,
                cycles_per_access: *cycles_per_access,
            })),
            BehaviorSnapshot::Cache {
                sets,
                ways,
                line_elems,
                hit_cycles,
                miss_cycles,
                tags,
                hits,
                misses,
            } => {
                if *sets == 0 || *ways == 0 || *line_elems == 0 || tags.len() != *sets {
                    return None;
                }
                Some(Box::new(CacheBehavior {
                    sets: *sets,
                    ways: *ways,
                    line_elems: *line_elems,
                    hit_cycles: *hit_cycles,
                    miss_cycles: *miss_cycles,
                    tags: tags.clone(),
                    hits: *hits,
                    misses: *misses,
                }))
            }
            BehaviorSnapshot::Opaque => None,
        }
    }
}

/// SRAM: one access per bank per `cycles_per_access`; a burst of `elems`
/// spreads across banks.
#[derive(Debug, Clone)]
pub struct SramBehavior {
    /// Cycles per (banked) access beat; 1 for on-chip SRAM.
    pub cycles_per_access: u64,
}

impl Default for SramBehavior {
    fn default() -> Self {
        SramBehavior {
            cycles_per_access: 1,
        }
    }
}

impl MemoryBehavior for SramBehavior {
    fn access_cycles(&mut self, _kind: AccessKind, _addr: usize, elems: usize, banks: u32) -> u64 {
        (elems as u64).div_ceil(banks.max(1) as u64) * self.cycles_per_access
    }

    fn model_name(&self) -> &str {
        "SRAM"
    }

    fn uniform_scalar_cycles(&self) -> Option<u64> {
        // One element always occupies a single beat: div_ceil(1, banks) == 1.
        Some(self.cycles_per_access)
    }

    fn snapshot_behavior(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::Sram {
            cycles_per_access: self.cycles_per_access,
        }
    }
}

/// Register file: zero-latency access (the fabric the paper's systolic PEs
/// read/write every cycle).
#[derive(Debug, Clone, Default)]
pub struct RegisterBehavior;

impl MemoryBehavior for RegisterBehavior {
    fn access_cycles(
        &mut self,
        _kind: AccessKind,
        _addr: usize,
        _elems: usize,
        _banks: u32,
    ) -> u64 {
        0
    }

    fn model_name(&self) -> &str {
        "Register"
    }

    fn uniform_scalar_cycles(&self) -> Option<u64> {
        Some(0)
    }

    fn snapshot_behavior(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::Register
    }
}

/// DRAM: a fixed row-activation latency plus per-beat transfer cycles.
#[derive(Debug, Clone)]
pub struct DramBehavior {
    /// Activation latency added to every access.
    pub latency: u64,
    /// Cycles per banked beat.
    pub cycles_per_access: u64,
}

impl Default for DramBehavior {
    fn default() -> Self {
        DramBehavior {
            latency: 10,
            cycles_per_access: 2,
        }
    }
}

impl MemoryBehavior for DramBehavior {
    fn access_cycles(&mut self, _kind: AccessKind, _addr: usize, elems: usize, banks: u32) -> u64 {
        self.latency + (elems as u64).div_ceil(banks.max(1) as u64) * self.cycles_per_access
    }

    fn model_name(&self) -> &str {
        "DRAM"
    }

    fn uniform_scalar_cycles(&self) -> Option<u64> {
        Some(self.latency + self.cycles_per_access)
    }

    fn snapshot_behavior(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::Dram {
            latency: self.latency,
            cycles_per_access: self.cycles_per_access,
        }
    }
}

/// A set-associative LRU cache in front of a slow backing store — the
/// worked example of §IV-D ("a user would add a new Cache class … and
/// override getReadOrWriteCycles to determine whether the access is a hit
/// or a miss").
#[derive(Debug, Clone)]
pub struct CacheBehavior {
    /// Number of sets.
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Elements per cache line.
    pub line_elems: usize,
    /// Hit latency.
    pub hit_cycles: u64,
    /// Miss latency (fill from backing store).
    pub miss_cycles: u64,
    /// Per-set LRU stacks of line tags (most recent last).
    tags: Vec<Vec<usize>>,
    /// Hit/miss counters for tests and reports.
    pub hits: u64,
    /// Miss counter.
    pub misses: u64,
}

impl CacheBehavior {
    /// Creates a cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(
        sets: usize,
        ways: usize,
        line_elems: usize,
        hit_cycles: u64,
        miss_cycles: u64,
    ) -> Self {
        assert!(
            sets > 0 && ways > 0 && line_elems > 0,
            "cache geometry must be non-zero"
        );
        CacheBehavior {
            sets,
            ways,
            line_elems,
            hit_cycles,
            miss_cycles,
            tags: vec![vec![]; sets],
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, line: usize) -> bool {
        let set = line % self.sets;
        let stack = &mut self.tags[set];
        if let Some(pos) = stack.iter().position(|&t| t == line) {
            stack.remove(pos);
            stack.push(line);
            true
        } else {
            if stack.len() == self.ways {
                stack.remove(0);
            }
            stack.push(line);
            false
        }
    }
}

impl MemoryBehavior for CacheBehavior {
    fn access_cycles(&mut self, _kind: AccessKind, addr: usize, elems: usize, _banks: u32) -> u64 {
        let first_line = addr / self.line_elems;
        let last_line = (addr + elems.max(1) - 1) / self.line_elems;
        let mut total = 0;
        for line in first_line..=last_line {
            if self.touch(line) {
                self.hits += 1;
                total += self.hit_cycles;
            } else {
                self.misses += 1;
                total += self.miss_cycles;
            }
        }
        total
    }

    fn model_name(&self) -> &str {
        "Cache"
    }

    fn snapshot_behavior(&self) -> BehaviorSnapshot {
        BehaviorSnapshot::Cache {
            sets: self.sets,
            ways: self.ways,
            line_elems: self.line_elems,
            hit_cycles: self.hit_cycles,
            miss_cycles: self.miss_cycles,
            tags: self.tags.clone(),
            hits: self.hits,
            misses: self.misses,
        }
    }
}

/// Byte/access counters per memory (reported in the profiling summary).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemCounters {
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of read accesses.
    pub reads: u64,
    /// Number of write accesses.
    pub writes: u64,
}

/// A memory component instance.
pub struct Memory {
    /// Component kind string (`"SRAM"`, `"Register"`, …).
    pub kind: String,
    /// Capacity in data elements.
    pub capacity_elems: usize,
    /// Bits per data element.
    pub data_bits: u32,
    /// Bank count.
    pub banks: u32,
    /// Elements currently allocated to live buffers.
    pub used_elems: usize,
    /// Timing model.
    pub behavior: Box<dyn MemoryBehavior>,
    /// Schedule queue: next-free times of the concurrent access ports.
    pub ports: Vec<u64>,
    /// Traffic counters.
    pub counters: MemCounters,
    /// Energy per access in picojoules (the paper's Fig. 2 discussion:
    /// SRAM costs more energy per access than a register file).
    pub energy_per_access_pj: f64,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("kind", &self.kind)
            .field("capacity_elems", &self.capacity_elems)
            .field("banks", &self.banks)
            .field("used_elems", &self.used_elems)
            .field("model", &self.behavior.model_name())
            .finish()
    }
}

impl Memory {
    /// Deep-copies the memory for a shard engine. The behavior box is
    /// cloned through its snapshot representation; `None` when the model is
    /// [`BehaviorSnapshot::Opaque`] (such a memory's state cannot be
    /// reproduced, so its group is never offloaded).
    pub(crate) fn try_clone(&self) -> Option<Memory> {
        let behavior = self.behavior.snapshot_behavior().rebuild()?;
        Some(Memory {
            kind: self.kind.clone(),
            capacity_elems: self.capacity_elems,
            data_bits: self.data_bits,
            banks: self.banks,
            used_elems: self.used_elems,
            behavior,
            ports: self.ports.clone(),
            counters: self.counters,
            energy_per_access_pj: self.energy_per_access_pj,
        })
    }

    /// Element size in bytes (bits rounded up).
    pub fn elem_bytes(&self) -> usize {
        (self.data_bits as usize).div_ceil(8)
    }

    /// Reserves a port for an access of `cycles` duration no earlier than
    /// `start`; returns `(actual_start, finish)`. A zero-cycle access never
    /// waits.
    pub fn reserve(&mut self, start: u64, cycles: u64) -> (u64, u64) {
        if cycles == 0 {
            return (start, start);
        }
        let port = self
            .ports
            .iter()
            .enumerate()
            .min_by_key(|(_, &free)| free)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let actual = start.max(self.ports[port]);
        let finish = actual + cycles;
        self.ports[port] = finish;
        (actual, finish)
    }

    /// The fused per-access fast path: computes the model latency, reserves
    /// a port, and counts traffic under a single borrow. Semantically
    /// identical to `behavior.access_cycles` + [`Memory::reserve`] +
    /// [`Memory::count`] called separately, but the engine's inner loop pays
    /// one component lookup instead of three (zero-cycle accesses — e.g.
    /// registers — never touch the port queue, via [`Memory::reserve`]'s
    /// short-circuit). Returns `(actual_start, finish, model_cycles)`.
    pub fn access(
        &mut self,
        kind: AccessKind,
        addr: usize,
        elems: usize,
        bytes: u64,
        start: u64,
    ) -> (u64, u64, u64) {
        let banks = self.banks;
        let cycles = self.behavior.access_cycles(kind, addr, elems, banks);
        let (actual, finish) = self.reserve(start, cycles);
        self.count(kind, bytes);
        (actual, finish, cycles)
    }

    /// Accounts traffic of `bytes` in the given direction.
    pub fn count(&mut self, kind: AccessKind, bytes: u64) {
        match kind {
            AccessKind::Read => {
                self.counters.bytes_read += bytes;
                self.counters.reads += 1;
            }
            AccessKind::Write => {
                self.counters.bytes_written += bytes;
                self.counters.writes += 1;
            }
        }
    }
}

/// A processor timing profile: cycles per op name, with a default.
#[derive(Debug, Clone)]
pub struct ProcProfile {
    /// Cycles for ops not listed in `per_op`.
    pub default_cycles: u64,
    /// Per-op overrides, keyed by op name or `equeue.op` signature.
    pub per_op: HashMap<String, u64>,
}

impl Default for ProcProfile {
    fn default() -> Self {
        ProcProfile {
            default_cycles: 1,
            per_op: HashMap::new(),
        }
    }
}

impl ProcProfile {
    /// A profile where every op costs `default_cycles`.
    pub fn uniform(default_cycles: u64) -> Self {
        ProcProfile {
            default_cycles,
            per_op: HashMap::new(),
        }
    }

    /// Cycle count for `op_name`.
    pub fn cycles(&self, op_name: &str) -> u64 {
        self.per_op
            .get(op_name)
            .copied()
            .unwrap_or(self.default_cycles)
    }
}

/// A processor component instance.
#[derive(Debug, Clone)]
pub struct Processor {
    /// Kind string (`"ARMr5"`, `"MAC"`, `"AIEngine"`, …).
    pub kind: String,
    /// Timing profile.
    pub profile: ProcProfile,
}

/// A composite component grouping named children.
#[derive(Debug, Clone, Default)]
pub struct Composite {
    /// Named children in insertion order.
    pub children: Vec<(String, CompId)>,
}

/// What a component is.
pub enum ComponentKind {
    /// Executes launch blocks.
    Processor(Processor),
    /// Stores buffers.
    Memory(Memory),
    /// A processor specialised for `memcpy`.
    Dma,
    /// A named grouping.
    Composite(Composite),
}

impl std::fmt::Debug for ComponentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ComponentKind::Processor(p) => write!(f, "Processor({})", p.kind),
            ComponentKind::Memory(m) => write!(f, "Memory({})", m.kind),
            ComponentKind::Dma => write!(f, "Dma"),
            ComponentKind::Composite(c) => write!(f, "Composite({} children)", c.children.len()),
        }
    }
}

/// One component instance.
#[derive(Debug)]
pub struct Component {
    /// Display name (assigned by `create_comp`; defaults to `kind#id`).
    pub name: String,
    /// The component body.
    pub kind: ComponentKind,
}

/// A buffer allocated inside a memory.
#[derive(Debug, Clone)]
pub struct Buffer {
    /// The owning memory component.
    pub mem: CompId,
    /// Element shape.
    pub shape: Vec<usize>,
    /// Bytes per element.
    pub elem_bytes: usize,
    /// Flat element offset within the memory (for cache indexing).
    pub base_addr: usize,
    /// Live (not deallocated).
    pub live: bool,
    /// Current contents.
    pub data: Tensor,
}

impl Buffer {
    /// Number of elements.
    pub fn elems(&self) -> usize {
        self.shape.iter().product()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.elems() * self.elem_bytes
    }
}

/// Per-direction bandwidth interval recorded on a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Start cycle.
    pub start: u64,
    /// End cycle (exclusive); equals `start` for instant transfers.
    pub end: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Direction.
    pub kind: AccessKind,
}

/// A connection instance with its schedule queue and statistics.
#[derive(Debug)]
pub struct Connection {
    /// Display name.
    pub name: String,
    /// Streaming (independent read/write channels) or Window (exclusive).
    pub kind: ConnKind,
    /// Bytes per cycle; 0 means unlimited (§III-A: "the simulation engine
    /// can also model infinite-bandwidth connections and still collect
    /// statistics").
    pub bytes_per_cycle: u64,
    /// Next-free time of the read channel.
    read_free: u64,
    /// Next-free time of the write channel (same as read for Window).
    write_free: u64,
    /// All transfers, for bandwidth statistics.
    pub transfers: Vec<Transfer>,
}

impl Connection {
    /// Creates a connection.
    pub fn new(name: String, kind: ConnKind, bytes_per_cycle: u64) -> Self {
        Connection {
            name,
            kind,
            bytes_per_cycle,
            read_free: 0,
            write_free: 0,
            transfers: vec![],
        }
    }

    /// The next-free times of the read and write channels (snapshot
    /// capture).
    pub(crate) fn channel_state(&self) -> (u64, u64) {
        (self.read_free, self.write_free)
    }

    /// Restores the channel schedule (snapshot resume).
    pub(crate) fn restore_channels(&mut self, read_free: u64, write_free: u64) {
        self.read_free = read_free;
        self.write_free = write_free;
    }

    /// Deep-copies the connection, including the private channel schedule
    /// (shard engines need byte-identical channel state).
    pub(crate) fn clone_state(&self) -> Connection {
        Connection {
            name: self.name.clone(),
            kind: self.kind,
            bytes_per_cycle: self.bytes_per_cycle,
            read_free: self.read_free,
            write_free: self.write_free,
            transfers: self.transfers.clone(),
        }
    }

    /// Cycles needed to move `bytes` (0 when unlimited).
    pub fn transfer_cycles(&self, bytes: u64) -> u64 {
        if self.bytes_per_cycle == 0 || bytes == 0 {
            0
        } else {
            bytes.div_ceil(self.bytes_per_cycle)
        }
    }

    /// Like [`Connection::reserve`], but the transfer is known to span at
    /// least `min_duration` cycles (it is pipelined with a memory access of
    /// that length). Unlimited connections record the spanning transfer for
    /// statistics without claiming the channel — this is how the engine
    /// "models infinite-bandwidth connections and still collects
    /// statistics" (§III-A).
    pub fn reserve_spanning(
        &mut self,
        kind: AccessKind,
        start: u64,
        bytes: u64,
        min_duration: u64,
    ) -> (u64, u64) {
        if self.bytes_per_cycle == 0 {
            let end = start + min_duration;
            self.transfers.push(Transfer {
                start,
                end,
                bytes,
                kind,
            });
            return (start, end);
        }
        let dur = self.transfer_cycles(bytes).max(min_duration);
        self.reserve_for(kind, start, bytes, dur)
    }

    /// Reserves the channel for a transfer of `bytes` starting no earlier
    /// than `start`; returns `(actual_start, finish)` and records stats.
    pub fn reserve(&mut self, kind: AccessKind, start: u64, bytes: u64) -> (u64, u64) {
        let dur = self.transfer_cycles(bytes);
        self.reserve_for(kind, start, bytes, dur)
    }

    fn reserve_for(&mut self, kind: AccessKind, start: u64, bytes: u64, dur: u64) -> (u64, u64) {
        let chan = match (self.kind, kind) {
            (ConnKind::Window, _) => {
                // Exclusive: both directions share one lock.
                let m = self.read_free.max(self.write_free);
                self.read_free = m;
                self.write_free = m;
                &mut self.read_free
            }
            (ConnKind::Streaming, AccessKind::Read) => &mut self.read_free,
            (ConnKind::Streaming, AccessKind::Write) => &mut self.write_free,
        };
        let actual = start.max(*chan);
        let finish = actual + dur;
        if dur > 0 {
            *chan = finish;
        }
        if self.kind == ConnKind::Window {
            self.read_free = self.read_free.max(finish);
            self.write_free = self.write_free.max(finish);
        }
        self.transfers.push(Transfer {
            start: actual,
            end: finish,
            bytes,
            kind,
        });
        (actual, finish)
    }
}

/// The elaborated machine: all component/buffer/connection instances.
#[derive(Debug, Default)]
pub struct Machine {
    /// Component arena.
    pub components: Vec<Component>,
    /// Buffer arena.
    pub buffers: Vec<Buffer>,
    /// Connection arena.
    pub connections: Vec<Connection>,
}

impl Machine {
    /// Creates an empty machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep-copies the whole machine for a shard engine. `None` when any
    /// memory's behavior is opaque to snapshots — the sharded runtime then
    /// falls back to the sequential path for that run.
    pub(crate) fn try_clone(&self) -> Option<Machine> {
        let mut components = Vec::with_capacity(self.components.len());
        for c in &self.components {
            let kind = match &c.kind {
                ComponentKind::Processor(p) => ComponentKind::Processor(p.clone()),
                ComponentKind::Memory(m) => ComponentKind::Memory(m.try_clone()?),
                ComponentKind::Dma => ComponentKind::Dma,
                ComponentKind::Composite(g) => ComponentKind::Composite(g.clone()),
            };
            components.push(Component {
                name: c.name.clone(),
                kind,
            });
        }
        Some(Machine {
            components,
            buffers: self.buffers.clone(),
            connections: self.connections.iter().map(|c| c.clone_state()).collect(),
        })
    }

    /// Adds a processor; returns its id.
    pub fn add_processor(&mut self, kind: &str, profile: ProcProfile) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component {
            name: format!("{kind}#{}", id.0),
            kind: ComponentKind::Processor(Processor {
                kind: kind.to_string(),
                profile,
            }),
        });
        id
    }

    /// Adds a memory; returns its id.
    pub fn add_memory(
        &mut self,
        kind: &str,
        capacity_elems: usize,
        data_bits: u32,
        banks: u32,
        ports: usize,
        behavior: Box<dyn MemoryBehavior>,
    ) -> CompId {
        self.add_memory_with_energy(kind, capacity_elems, data_bits, banks, ports, behavior, 0.0)
    }

    /// Adds a memory with an explicit per-access energy cost.
    #[allow(clippy::too_many_arguments)]
    pub fn add_memory_with_energy(
        &mut self,
        kind: &str,
        capacity_elems: usize,
        data_bits: u32,
        banks: u32,
        ports: usize,
        behavior: Box<dyn MemoryBehavior>,
        energy_per_access_pj: f64,
    ) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component {
            name: format!("{kind}#{}", id.0),
            kind: ComponentKind::Memory(Memory {
                kind: kind.to_string(),
                capacity_elems,
                data_bits,
                banks,
                used_elems: 0,
                behavior,
                ports: vec![0; ports.max(1)],
                counters: MemCounters::default(),
                energy_per_access_pj,
            }),
        });
        id
    }

    /// Adds a DMA engine; returns its id.
    pub fn add_dma(&mut self) -> CompId {
        let id = CompId(self.components.len() as u32);
        self.components.push(Component {
            name: format!("DMA#{}", id.0),
            kind: ComponentKind::Dma,
        });
        id
    }

    /// Adds a composite with named children (children are renamed to their
    /// given names); returns its id. Extra names or children beyond the
    /// shorter of the two lists are ignored.
    pub fn add_composite(&mut self, names: &[String], children: &[CompId]) -> CompId {
        let id = CompId(self.components.len() as u32);
        for (n, &c) in names.iter().zip(children) {
            self.components[c.0 as usize].name = n.clone();
        }
        self.components.push(Component {
            name: format!("Comp#{}", id.0),
            kind: ComponentKind::Composite(Composite {
                children: names
                    .iter()
                    .cloned()
                    .zip(children.iter().copied())
                    .collect(),
            }),
        });
        id
    }

    /// Adds named children to an existing composite.
    ///
    /// # Errors
    ///
    /// Fails if `comp` is not a composite.
    pub fn extend_composite(
        &mut self,
        comp: CompId,
        names: &[String],
        children: &[CompId],
    ) -> Result<(), String> {
        if !matches!(
            self.components[comp.0 as usize].kind,
            ComponentKind::Composite(_)
        ) {
            return Err(format!(
                "component '{}' is not a composite",
                self.components[comp.0 as usize].name
            ));
        }
        for (n, &c) in names.iter().zip(children) {
            self.components[c.0 as usize].name = n.clone();
        }
        match &mut self.components[comp.0 as usize].kind {
            ComponentKind::Composite(c) => {
                c.children
                    .extend(names.iter().cloned().zip(children.iter().copied()));
            }
            _ => unreachable!(),
        }
        Ok(())
    }

    /// Looks up a direct child of a composite by name.
    pub fn child(&self, comp: CompId, name: &str) -> Option<CompId> {
        match &self.components[comp.0 as usize].kind {
            ComponentKind::Composite(c) => c
                .children
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, id)| id),
            _ => None,
        }
    }

    /// The component's display name.
    pub fn name(&self, comp: CompId) -> &str {
        &self.components[comp.0 as usize].name
    }

    /// Immutable memory accessor; `None` if `comp` is not a memory.
    pub fn memory(&self, comp: CompId) -> Option<&Memory> {
        match &self.components[comp.0 as usize].kind {
            ComponentKind::Memory(m) => Some(m),
            _ => None,
        }
    }

    /// Mutable memory accessor; `None` if `comp` is not a memory.
    pub fn memory_mut(&mut self, comp: CompId) -> Option<&mut Memory> {
        match &mut self.components[comp.0 as usize].kind {
            ComponentKind::Memory(m) => Some(m),
            _ => None,
        }
    }

    /// Processor accessor; `None` if `comp` is not a processor.
    pub fn processor(&self, comp: CompId) -> Option<&Processor> {
        match &self.components[comp.0 as usize].kind {
            ComponentKind::Processor(p) => Some(p),
            _ => None,
        }
    }

    /// Whether `comp` can execute launch blocks (processor or DMA).
    pub fn is_executor(&self, comp: CompId) -> bool {
        matches!(
            self.components[comp.0 as usize].kind,
            ComponentKind::Processor(_) | ComponentKind::Dma
        )
    }

    /// Allocates a buffer of `shape`×`elem_bytes` inside memory `mem`.
    ///
    /// # Errors
    ///
    /// Fails when `mem` is not a memory, the requested element count
    /// overflows, or the memory lacks capacity.
    pub fn alloc_buffer(
        &mut self,
        mem: CompId,
        shape: Vec<usize>,
        elem_bytes: usize,
        int_data: bool,
    ) -> Result<BufId, String> {
        let name = self.name(mem).to_string();
        let elems = shape
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| format!("allocation shape {shape:?} overflows in memory '{name}'"))?;
        let Some(m) = self.memory_mut(mem) else {
            return Err(format!("component '{name}' is not a memory"));
        };
        let base_addr = m.used_elems;
        let fits = m
            .used_elems
            .checked_add(elems)
            .is_some_and(|total| total <= m.capacity_elems);
        if !fits {
            return Err(format!(
                "memory '{name}' overflow: {} elems used of {}, requested {elems}",
                m.used_elems, m.capacity_elems
            ));
        }
        m.used_elems += elems;
        let id = BufId(self.buffers.len() as u32);
        let data = if int_data {
            Tensor::zeros_int(shape.clone())
        } else {
            Tensor::zeros_float(shape.clone())
        };
        self.buffers.push(Buffer {
            mem,
            shape,
            elem_bytes,
            base_addr,
            live: true,
            data,
        });
        Ok(id)
    }

    /// Deallocates a buffer, returning its capacity to the memory. Returns
    /// the number of bytes freed (0 if the buffer was already dead).
    pub fn dealloc_buffer(&mut self, buf: BufId) -> usize {
        let (mem, elems, elem_bytes, live) = {
            let b = &self.buffers[buf.0 as usize];
            (b.mem, b.elems(), b.elem_bytes, b.live)
        };
        if !live {
            return 0;
        }
        self.buffers[buf.0 as usize].live = false;
        if let Some(m) = self.memory_mut(mem) {
            m.used_elems = m.used_elems.saturating_sub(elems);
        }
        elems.saturating_mul(elem_bytes)
    }

    /// Buffer accessor.
    pub fn buffer(&self, buf: BufId) -> &Buffer {
        &self.buffers[buf.0 as usize]
    }

    /// Mutable buffer accessor.
    pub fn buffer_mut(&mut self, buf: BufId) -> &mut Buffer {
        &mut self.buffers[buf.0 as usize]
    }

    /// Adds a connection; returns its id.
    pub fn add_connection(&mut self, kind: ConnKind, bytes_per_cycle: u64) -> ConnId {
        let id = ConnId(self.connections.len() as u32);
        self.connections.push(Connection::new(
            format!("conn#{}", id.0),
            kind,
            bytes_per_cycle,
        ));
        id
    }

    /// Connection accessor.
    pub fn connection(&self, conn: ConnId) -> &Connection {
        &self.connections[conn.0 as usize]
    }

    /// Mutable connection accessor.
    pub fn connection_mut(&mut self, conn: ConnId) -> &mut Connection {
        &mut self.connections[conn.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_access_banks() {
        let mut s = SramBehavior::default();
        assert_eq!(s.access_cycles(AccessKind::Read, 0, 4, 4), 1);
        assert_eq!(s.access_cycles(AccessKind::Read, 0, 5, 4), 2);
        assert_eq!(s.access_cycles(AccessKind::Read, 0, 1, 1), 1);
        assert_eq!(s.access_cycles(AccessKind::Read, 0, 0, 4), 0);
    }

    #[test]
    fn register_is_free() {
        let mut r = RegisterBehavior;
        assert_eq!(r.access_cycles(AccessKind::Write, 0, 100, 1), 0);
    }

    #[test]
    fn dram_adds_latency() {
        let mut d = DramBehavior::default();
        assert_eq!(d.access_cycles(AccessKind::Read, 0, 1, 1), 12);
        assert_eq!(d.access_cycles(AccessKind::Read, 0, 4, 4), 12);
    }

    #[test]
    fn cache_hits_and_misses() {
        let mut c = CacheBehavior::new(4, 2, 4, 1, 10);
        // First touch: miss.
        assert_eq!(c.access_cycles(AccessKind::Read, 0, 1, 1), 10);
        // Same line: hit.
        assert_eq!(c.access_cycles(AccessKind::Read, 3, 1, 1), 1);
        assert_eq!((c.hits, c.misses), (1, 1));
        // Thrash one set beyond associativity: set = line % 4. Lines 0, 4, 8
        // all map to set 0; ways = 2 evicts line 0.
        c.access_cycles(AccessKind::Read, 16, 1, 1); // line 4, miss
        c.access_cycles(AccessKind::Read, 32, 1, 1); // line 8, miss, evicts 0
        assert_eq!(c.access_cycles(AccessKind::Read, 0, 1, 1), 10); // miss again
        assert_eq!(c.misses, 4);
    }

    #[test]
    fn memory_port_contention() {
        let mut m = Machine::new();
        let mem = m.add_memory("SRAM", 4096, 32, 4, 1, Box::new(SramBehavior::default()));
        // Two 4-cycle accesses on 1 port: the second waits.
        let (s1, f1) = m.memory_mut(mem).unwrap().reserve(0, 4);
        let (s2, f2) = m.memory_mut(mem).unwrap().reserve(0, 4);
        assert_eq!((s1, f1), (0, 4));
        assert_eq!((s2, f2), (4, 8));
        // Zero-cycle access never waits.
        let (s3, f3) = m.memory_mut(mem).unwrap().reserve(0, 0);
        assert_eq!((s3, f3), (0, 0));
    }

    #[test]
    fn memory_two_ports_parallel() {
        let mut m = Machine::new();
        let mem = m.add_memory("SRAM", 4096, 32, 4, 2, Box::new(SramBehavior::default()));
        let (s1, _) = m.memory_mut(mem).unwrap().reserve(0, 4);
        let (s2, _) = m.memory_mut(mem).unwrap().reserve(0, 4);
        let (s3, _) = m.memory_mut(mem).unwrap().reserve(0, 4);
        assert_eq!((s1, s2), (0, 0));
        assert_eq!(s3, 4);
    }

    #[test]
    fn buffer_alloc_and_overflow() {
        let mut m = Machine::new();
        let mem = m.add_memory("SRAM", 100, 32, 4, 2, Box::new(SramBehavior::default()));
        let b1 = m.alloc_buffer(mem, vec![64], 4, true).unwrap();
        assert_eq!(m.buffer(b1).bytes(), 256);
        assert_eq!(m.buffer(b1).base_addr, 0);
        let b2 = m.alloc_buffer(mem, vec![36], 4, true).unwrap();
        assert_eq!(m.buffer(b2).base_addr, 64);
        assert!(m.alloc_buffer(mem, vec![1], 4, true).is_err());
        assert_eq!(m.dealloc_buffer(b1), 256);
        assert!(m.alloc_buffer(mem, vec![10], 4, true).is_ok());
        // Double-dealloc is a no-op.
        assert_eq!(m.dealloc_buffer(b1), 0);
    }

    #[test]
    fn composite_lookup() {
        let mut m = Machine::new();
        let p = m.add_processor("MAC", ProcProfile::default());
        let mem = m.add_memory("SRAM", 64, 32, 1, 1, Box::new(SramBehavior::default()));
        let c = m.add_composite(&["PE".into(), "Mem".into()], &[p, mem]);
        assert_eq!(m.child(c, "PE"), Some(p));
        assert_eq!(m.child(c, "Mem"), Some(mem));
        assert_eq!(m.child(c, "Nope"), None);
        assert_eq!(m.name(p), "PE");
        let d = m.add_dma();
        m.extend_composite(c, &["DMA".into()], &[d]).unwrap();
        assert_eq!(m.child(c, "DMA"), Some(d));
        assert!(m.is_executor(p));
        assert!(m.is_executor(d));
        assert!(!m.is_executor(mem));
    }

    #[test]
    fn streaming_connection_overlaps_directions() {
        let mut c = Connection::new("c".into(), ConnKind::Streaming, 4);
        assert_eq!(c.transfer_cycles(16), 4);
        let (rs, rf) = c.reserve(AccessKind::Read, 0, 16);
        let (ws, wf) = c.reserve(AccessKind::Write, 0, 16);
        assert_eq!((rs, rf), (0, 4));
        assert_eq!((ws, wf), (0, 4)); // writes do not wait for reads
        let (rs2, _) = c.reserve(AccessKind::Read, 0, 16);
        assert_eq!(rs2, 4); // second read serialises after the first
    }

    #[test]
    fn window_connection_is_exclusive() {
        let mut c = Connection::new("c".into(), ConnKind::Window, 4);
        let (_, f1) = c.reserve(AccessKind::Read, 0, 16);
        let (s2, _) = c.reserve(AccessKind::Write, 0, 16);
        assert_eq!(s2, f1);
    }

    #[test]
    fn unlimited_connection_is_instant() {
        let mut c = Connection::new("c".into(), ConnKind::Streaming, 0);
        let (s, f) = c.reserve(AccessKind::Read, 7, 1_000_000);
        assert_eq!((s, f), (7, 7));
        assert_eq!(c.transfers.len(), 1);
    }

    #[test]
    fn proc_profile_lookup() {
        let mut p = ProcProfile::uniform(1);
        p.per_op.insert("mac4".into(), 1);
        p.per_op.insert("equeue.launch".into(), 0);
        assert_eq!(p.cycles("mac4"), 1);
        assert_eq!(p.cycles("arith.addi"), 1);
        assert_eq!(p.cycles("equeue.launch"), 0);
    }
}
