//! # equeue-core — the generic EQueue simulation engine
//!
//! This crate is the second half of the paper's contribution (§IV): a
//! generic timed discrete-event simulation engine that directly executes
//! EQueue programs — hardware structure, explicit data movement, and
//! distributed event-based control — intermixed with higher-level dialects
//! (`linalg`, `affine`, `arith`) so a program can be simulated at any stage
//! of its lowering pipeline (Fig. 1).
//!
//! * [`simulate`] / [`simulate_with`] — run a module, returning a
//!   [`SimReport`] with cycles, bandwidth statistics, and a Chrome trace.
//! * [`CompiledModule`] — compile once, simulate many: runs the layout
//!   prepass a single time and hands back a `Send + Sync` handle whose
//!   `simulate(&options)` can be called repeatedly — and concurrently —
//!   with bit-identical results. The entry point for batched design-space
//!   sweeps.
//! * [`SimLibrary`] — the extensible simulator library (§IV-D): external
//!   op implementations (`"mac4"`, …), processor profiles, and memory
//!   factories (including the worked [`CacheBehavior`] example).
//! * [`Machine`] — the elaborated component/buffer/connection model with
//!   schedule queues for contention.
//! * [`Trace`] — operation-level tracing in Chrome Trace Event Format
//!   (§IV-B), visualisable in `chrome://tracing`. With
//!   [`SimOptions`] `trace: false`, the disabled path is zero-cost: no
//!   event allocation and no string formatting happen on the hot loop.
//!
//! ## Hot-path architecture (dense frames + copy-on-write values)
//!
//! The engine borrows two ideas from compiled-simulation systems (CVC,
//! GSIM): specialise the data layout before the clock starts, and keep
//! per-event work minimal.
//!
//! **Layout prepass.** Before execution, a one-shot prepass numbers every
//! SSA value into a dense *slot* within its frame scope — the innermost
//! enclosing `equeue.launch` body (or the top region). A running frame's
//! environment is a `Vec<Option<SimValue>>` indexed by slot, so value
//! reads/writes are array indexing, never hashing. The same prepass
//! pre-decodes every op into an internal opcode: operand/result slots,
//! parsed attribute views (launch/memcpy/read/write segments, loop bounds,
//! constants, external-op cycle counts), so the interpreter's inner loop
//! dispatches on a plain enum and never re-parses names or attributes.
//! Malformed ops are decoded to poison values that only raise an error if
//! actually executed, preserving lazy interpreter semantics.
//!
//! **Capture maps.** Each `equeue.launch` carries a pre-computed list of
//! exactly the values its body (transitively) references, as parent-slot →
//! child-slot pairs; spawning an event copies just those.
//!
//! **Copy-on-write tensors.** [`TensorData`] stores elements behind an
//! `Arc`, so the clones the engine performs on every read and every
//! launch-env capture are pointer bumps; writers go through
//! `Arc::make_mut`, which deep-copies only when a payload is shared.
//!
//! None of this changes simulated timing: cycle counts, event counts, and
//! interpreted-op counts are bit-identical to the original
//! `HashMap`-environment interpreter (enforced by the golden cycle-count
//! tests and the `BENCH_engine.json` determinism guards).
//!
//! ## Example
//!
//! ```
//! use equeue_ir::{Module, OpBuilder, Type};
//! use equeue_dialect::{EqueueBuilder, kinds};
//! use equeue_core::simulate;
//!
//! // One MAC unit executing one `mac` per cycle, four times.
//! let mut m = Module::new();
//! let blk = m.top_block();
//! let mut b = OpBuilder::at_end(&mut m, blk);
//! let pe = b.create_proc(kinds::MAC);
//! let start = b.control_start();
//! let launch = b.launch(start, pe, &[], vec![]);
//! let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
//! for _ in 0..4 {
//!     body.ext_op("mac", vec![], vec![]);
//! }
//! body.ret(vec![]);
//! let done = launch.done;
//! let mut b = OpBuilder::at_end(&mut m, blk);
//! b.await_all(vec![done]);
//!
//! let report = simulate(&m)?;
//! assert_eq!(report.cycles, 4);
//! println!("{}", report.summary());
//! # Ok::<(), equeue_core::SimError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Robustness gate: the library half of the crate must never panic on
// adversarial input, so `unwrap`/`expect` are denied outside tests.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod compiled;
mod engine;
mod error;
mod facts;
pub mod fault;
mod fused;
mod interp;
mod library;
mod machine;
mod partition;
mod profile;
mod sharded;
mod signal;
mod snapshot;
mod trace;
mod value;

pub use compiled::CompiledModule;
pub use engine::{simulate, simulate_with, Backend, SimOptions};
pub use error::{CancelToken, LimitExceeded, LimitKind, Progress, RunLimits, SimError};
pub use facts::{
    analyze_facts, ConnFact, ExtOpFact, FuseVerdict, InvalidOpFact, LoopFact, MemFact,
    PrepassFacts, ProcFact, UnsupportedOpFact,
};
pub use fused::FuseDecline;
pub use interp::{apply_binary, apply_cmpi, conv2d_int, matmul_int};
pub use library::{ExtOp, MemFactory, MemSpec, SimLibrary};
pub use machine::{
    AccessKind, BehaviorSnapshot, Buffer, CacheBehavior, Component, ComponentKind, Connection,
    DramBehavior, Machine, MemCounters, Memory, MemoryBehavior, ProcProfile, Processor,
    RegisterBehavior, SramBehavior, Transfer,
};
pub use partition::Partition;
pub use profile::{BandwidthStats, BufferDump, ConnReport, MemReport, SimReport};
pub use signal::SignalTable;
pub use snapshot::{Snapshot, FORMAT_VERSION as SNAPSHOT_FORMAT_VERSION};
pub use trace::{Trace, TraceCat, TraceEvent};
pub use value::{BufId, CompId, ConnId, SignalId, SimValue, Tensor, TensorData};
