//! Runtime values carried through a simulation.
//!
//! The EQueue engine is a *functional* simulator: reads and writes move real
//! data through buffers so that tests can check computation results (e.g. a
//! convolution's output feature map) against references, in addition to
//! timing.
//!
//! Tensor payloads are **copy-on-write**: [`TensorData`] holds its elements
//! behind an [`Arc`], so cloning a [`Tensor`] (or a [`SimValue::Tensor`]) is
//! a reference-count bump, not a data copy. The engine clones values on
//! every read and every launch-env capture, which made deep tensor copies
//! the dominant cost of tensor-heavy simulations. Writers call
//! [`TensorData::make_ints_mut`] / [`TensorData::make_floats_mut`] (thin
//! wrappers over [`Arc::make_mut`]), which copy only when the payload is
//! actually shared.

use std::fmt;
use std::sync::Arc;

/// Identifies a hardware component instance in the elaborated machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CompId(pub u32);

/// Identifies a buffer allocated inside a memory component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufId(pub u32);

/// Identifies a connection instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

/// Identifies an event signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub u32);

/// Tensor payload: a shaped block of integers or floats, copy-on-write.
///
/// Cloning is an `Arc` bump; mutation goes through
/// [`TensorData::make_ints_mut`] / [`TensorData::make_floats_mut`], which
/// deep-copy only when the payload is shared.
#[derive(Debug, Clone, PartialEq)]
pub enum TensorData {
    /// Integer elements.
    Int(Arc<Vec<i64>>),
    /// Float elements.
    Float(Arc<Vec<f64>>),
}

impl TensorData {
    /// An integer payload from explicit data.
    pub fn from_ints(v: Vec<i64>) -> Self {
        TensorData::Int(Arc::new(v))
    }

    /// A float payload from explicit data.
    pub fn from_floats(v: Vec<f64>) -> Self {
        TensorData::Float(Arc::new(v))
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            TensorData::Int(v) => v.len(),
            TensorData::Float(v) => v.len(),
        }
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The integer elements, if this is an [`TensorData::Int`].
    pub fn as_ints(&self) -> Option<&[i64]> {
        match self {
            TensorData::Int(v) => Some(v),
            TensorData::Float(_) => None,
        }
    }

    /// The integer element at flat index `i`, if this is an
    /// [`TensorData::Int`] and the index is in range. The bounds-checked
    /// scalar read behind the engine's fused loop traces.
    pub fn int_at(&self, i: usize) -> Option<i64> {
        match self {
            TensorData::Int(v) => v.get(i).copied(),
            TensorData::Float(_) => None,
        }
    }

    /// Writes the integer element at flat index `i` (copy-on-write: clones
    /// the backing vector only when shared). Returns `false` when the
    /// payload is not integer or the index is out of range.
    pub fn set_int_at(&mut self, i: usize, value: i64) -> bool {
        match self {
            TensorData::Int(v) => match Arc::make_mut(v).get_mut(i) {
                Some(slot) => {
                    *slot = value;
                    true
                }
                None => false,
            },
            TensorData::Float(_) => false,
        }
    }

    /// The float elements, if this is a [`TensorData::Float`].
    pub fn as_floats(&self) -> Option<&[f64]> {
        match self {
            TensorData::Float(v) => Some(v),
            TensorData::Int(_) => None,
        }
    }

    /// Mutable integer elements (copy-on-write: clones the backing vector
    /// only when shared), if this is an [`TensorData::Int`].
    pub fn make_ints_mut(&mut self) -> Option<&mut Vec<i64>> {
        match self {
            TensorData::Int(v) => Some(Arc::make_mut(v)),
            TensorData::Float(_) => None,
        }
    }

    /// Mutable float elements (copy-on-write), if this is a
    /// [`TensorData::Float`].
    pub fn make_floats_mut(&mut self) -> Option<&mut Vec<f64>> {
        match self {
            TensorData::Float(v) => Some(Arc::make_mut(v)),
            TensorData::Int(_) => None,
        }
    }
}

impl From<Vec<i64>> for TensorData {
    fn from(v: Vec<i64>) -> Self {
        TensorData::from_ints(v)
    }
}

impl From<Vec<f64>> for TensorData {
    fn from(v: Vec<f64>) -> Self {
        TensorData::from_floats(v)
    }
}

/// A shaped runtime tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Dimension sizes, outermost first.
    pub shape: Vec<usize>,
    /// Flattened row-major elements.
    pub data: TensorData,
}

impl Tensor {
    /// An all-zero integer tensor of the given shape.
    pub fn zeros_int(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: TensorData::from_ints(vec![0; n]),
        }
    }

    /// An all-zero float tensor of the given shape.
    pub fn zeros_float(shape: Vec<usize>) -> Self {
        let n = shape.iter().product();
        Tensor {
            shape,
            data: TensorData::from_floats(vec![0.0; n]),
        }
    }

    /// An integer tensor from explicit data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_int(shape: Vec<usize>, data: Vec<i64>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape/data mismatch"
        );
        Tensor {
            shape,
            data: TensorData::from_ints(data),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major flat index for `indices`.
    ///
    /// # Panics
    ///
    /// Panics if the subscript rank does not match the tensor's rank or an
    /// index is out of range.
    pub fn flatten_index(&self, indices: &[usize]) -> usize {
        match self.try_flatten_index(indices) {
            Ok(flat) => flat,
            Err(e) => panic!("{e}"),
        }
    }

    /// Row-major flat index for `indices`, or a diagnostic when the
    /// subscript rank does not match the tensor's rank or an index is out
    /// of range. The fallible twin of [`Tensor::flatten_index`], used on
    /// paths fed by untrusted IR.
    pub fn try_flatten_index(&self, indices: &[usize]) -> Result<usize, String> {
        if indices.len() != self.shape.len() {
            return Err(format!(
                "rank mismatch: {} subscripts for a rank-{} tensor",
                indices.len(),
                self.shape.len()
            ));
        }
        let mut flat = 0usize;
        for (i, (&idx, &dim)) in indices.iter().zip(&self.shape).enumerate() {
            if idx >= dim {
                return Err(format!("index {idx} out of range for dim {i} (size {dim})"));
            }
            flat = flat * dim + idx;
        }
        Ok(flat)
    }
}

/// A runtime value.
#[derive(Debug, Clone, PartialEq)]
pub enum SimValue {
    /// Absence of a value.
    Unit,
    /// Integer scalar (also used for `i1` and `index`).
    Int(i64),
    /// Float scalar.
    Float(f64),
    /// Shaped data.
    Tensor(Tensor),
    /// An event signal.
    Signal(SignalId),
    /// A hardware component (processor, memory, DMA, composite).
    Component(CompId),
    /// A buffer inside a memory.
    Buffer(BufId),
    /// A connection.
    Connection(ConnId),
    /// A not-yet-available extra result of a `launch`: resolves to the
    /// payload of `signal` at position `index` once the launch completes.
    Deferred {
        /// The launch's done signal.
        signal: SignalId,
        /// Payload position.
        index: usize,
    },
}

impl SimValue {
    /// The integer payload, if this is an [`SimValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SimValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload (or a widened int).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            SimValue::Float(v) => Some(*v),
            SimValue::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The buffer id, if this is a [`SimValue::Buffer`].
    pub fn as_buffer(&self) -> Option<BufId> {
        match self {
            SimValue::Buffer(b) => Some(*b),
            _ => None,
        }
    }

    /// The component id, if this is a [`SimValue::Component`].
    pub fn as_component(&self) -> Option<CompId> {
        match self {
            SimValue::Component(c) => Some(*c),
            _ => None,
        }
    }

    /// The signal id, if this is a [`SimValue::Signal`].
    pub fn as_signal(&self) -> Option<SignalId> {
        match self {
            SimValue::Signal(s) => Some(*s),
            _ => None,
        }
    }

    /// The connection id, if this is a [`SimValue::Connection`].
    pub fn as_connection(&self) -> Option<ConnId> {
        match self {
            SimValue::Connection(c) => Some(*c),
            _ => None,
        }
    }

    /// Size in bytes this value occupies when transferred, assuming
    /// `elem_bytes` per scalar element.
    pub fn transfer_bytes(&self, elem_bytes: usize) -> usize {
        match self {
            SimValue::Tensor(t) => t.len() * elem_bytes,
            SimValue::Int(_) | SimValue::Float(_) => elem_bytes,
            _ => 0,
        }
    }
}

impl fmt::Display for SimValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimValue::Unit => write!(f, "unit"),
            SimValue::Int(v) => write!(f, "{v}"),
            SimValue::Float(v) => write!(f, "{v}"),
            SimValue::Tensor(t) => write!(f, "tensor{:?}[{} elems]", t.shape, t.len()),
            SimValue::Signal(s) => write!(f, "signal#{}", s.0),
            SimValue::Component(c) => write!(f, "comp#{}", c.0),
            SimValue::Buffer(b) => write!(f, "buffer#{}", b.0),
            SimValue::Connection(c) => write!(f, "conn#{}", c.0),
            SimValue::Deferred { signal, index } => {
                write!(f, "deferred(signal#{}, {index})", signal.0)
            }
        }
    }
}

impl From<i64> for SimValue {
    fn from(v: i64) -> Self {
        SimValue::Int(v)
    }
}

impl From<f64> for SimValue {
    fn from(v: f64) -> Self {
        SimValue::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_constructors() {
        let t = Tensor::zeros_int(vec![2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.data, TensorData::from_ints(vec![0; 6]));
        let t = Tensor::zeros_float(vec![4]);
        assert_eq!(t.len(), 4);
        let t = Tensor::from_int(vec![2, 2], vec![1, 2, 3, 4]);
        assert_eq!(t.flatten_index(&[1, 0]), 2);
        assert_eq!(t.flatten_index(&[0, 1]), 1);
    }

    #[test]
    fn tensor_clone_is_copy_on_write() {
        let a = Tensor::from_int(vec![4], vec![1, 2, 3, 4]);
        let mut b = a.clone();
        // The clone shares storage until written.
        match (&a.data, &b.data) {
            (TensorData::Int(x), TensorData::Int(y)) => assert!(Arc::ptr_eq(x, y)),
            _ => unreachable!(),
        }
        b.data.make_ints_mut().unwrap()[0] = 99;
        assert_eq!(a.data.as_ints().unwrap(), &[1, 2, 3, 4]);
        assert_eq!(b.data.as_ints().unwrap(), &[99, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn tensor_shape_mismatch_panics() {
        Tensor::from_int(vec![2, 2], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tensor_index_out_of_range_panics() {
        let t = Tensor::zeros_int(vec![2, 2]);
        t.flatten_index(&[2, 0]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(SimValue::Int(3).as_int(), Some(3));
        assert_eq!(SimValue::Int(3).as_float(), Some(3.0));
        assert_eq!(SimValue::Float(2.5).as_float(), Some(2.5));
        assert_eq!(SimValue::Buffer(BufId(1)).as_buffer(), Some(BufId(1)));
        assert_eq!(SimValue::Signal(SignalId(2)).as_signal(), Some(SignalId(2)));
        assert_eq!(
            SimValue::Component(CompId(4)).as_component(),
            Some(CompId(4))
        );
        assert_eq!(SimValue::Int(3).as_buffer(), None);
    }

    #[test]
    fn transfer_bytes() {
        assert_eq!(SimValue::Int(1).transfer_bytes(4), 4);
        let t = SimValue::Tensor(Tensor::zeros_int(vec![8]));
        assert_eq!(t.transfer_bytes(4), 32);
        assert_eq!(SimValue::Unit.transfer_bytes(4), 0);
    }

    #[test]
    fn display_nonempty() {
        for v in [
            SimValue::Unit,
            SimValue::Int(1),
            SimValue::Float(1.0),
            SimValue::Tensor(Tensor::zeros_int(vec![2])),
            SimValue::Signal(SignalId(0)),
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
