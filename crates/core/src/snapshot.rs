//! Simulation snapshots: complete engine state at a cycle boundary.
//!
//! A [`Snapshot`] captures everything a paused run needs to continue
//! bit-identically: the event heap, per-processor runtime state (clocks,
//! event queues, executing frames), the signal table, memory contents and
//! in-flight port reservations, connection traffic, and every run counter.
//! Snapshots are produced by [`crate::CompiledModule::snapshot`] (which runs
//! the module up to [`crate::SimOptions::snapshot_at`]) and consumed by
//! [`crate::CompiledModule::resume`].
//!
//! # Wire format
//!
//! [`Snapshot::encode`] emits a dependency-free, versioned, little-endian
//! binary stream: the magic `EQSS`, a `u32` format version, the header and
//! state sections, and a trailing FNV-1a 64-bit checksum over everything
//! before it. [`Snapshot::decode`] verifies the checksum first, so any
//! truncation or byte mutation is rejected with a typed
//! [`SimError::Snapshot`] — never a panic. Encoding is canonical
//! (deterministic field order, profile maps sorted by key, heap sorted by
//! `(time, seq)`), so `encode(decode(bytes)) == bytes` for any stream that
//! decodes successfully.
//!
//! The snapshot is RNG-free and wall-clock-free: resuming restarts the
//! wall-clock budget ([`crate::RunLimits::wall_deadline`]) but continues the
//! cycle/event budgets from the captured counters.

use std::collections::HashMap;

use equeue_dialect::ConnKind;

use crate::engine::{Backend, EventKind, Frame, LoopState, PendingEvent, Scope};
use crate::machine::{AccessKind, BehaviorSnapshot, Buffer, MemCounters, ProcProfile, Transfer};
use crate::signal::SignalState;
use crate::value::{BufId, CompId, ConnId, SignalId, SimValue, Tensor, TensorData};
use crate::SimError;

/// Magic bytes opening every snapshot stream.
const MAGIC: [u8; 4] = *b"EQSS";

/// Current snapshot format version. Bumped on any wire-format change;
/// decoding rejects unknown versions.
pub const FORMAT_VERSION: u32 = 1;

/// Shape fingerprint of the module a snapshot was captured from, so resuming
/// against a different module fails with a typed error instead of undefined
/// replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ModuleFingerprint {
    /// Total ops in the module.
    pub(crate) num_ops: u64,
    /// Total blocks in the module.
    pub(crate) num_blocks: u64,
    /// Total SSA values in the module.
    pub(crate) num_values: u64,
}

/// Captured timing profile of a processor (sorted for canonical encoding).
#[derive(Debug, Clone)]
pub(crate) struct ProfileSnap {
    pub(crate) default_cycles: u64,
    pub(crate) per_op: Vec<(String, u64)>,
}

impl ProfileSnap {
    pub(crate) fn capture(p: &ProcProfile) -> Self {
        let mut per_op: Vec<(String, u64)> =
            p.per_op.iter().map(|(k, v)| (k.clone(), *v)).collect();
        per_op.sort();
        ProfileSnap {
            default_cycles: p.default_cycles,
            per_op,
        }
    }

    pub(crate) fn restore(&self) -> ProcProfile {
        ProcProfile {
            default_cycles: self.default_cycles,
            per_op: self.per_op.iter().cloned().collect::<HashMap<_, _>>(),
        }
    }
}

/// Captured state of one processor runtime.
#[derive(Debug, Clone)]
pub(crate) struct ProcSnap {
    pub(crate) comp: u32,
    pub(crate) clock: u64,
    pub(crate) profile: ProfileSnap,
    pub(crate) queue: Vec<PendingEvent>,
    pub(crate) frame: Option<Frame>,
}

/// Captured state of one memory component.
#[derive(Debug, Clone)]
pub(crate) struct MemSnap {
    pub(crate) kind: String,
    pub(crate) capacity_elems: u64,
    pub(crate) data_bits: u32,
    pub(crate) banks: u32,
    pub(crate) used_elems: u64,
    pub(crate) behavior: BehaviorSnapshot,
    pub(crate) ports: Vec<u64>,
    pub(crate) counters: MemCounters,
    pub(crate) energy_per_access_pj: f64,
}

/// Captured component (name + kind-specific state).
#[derive(Debug, Clone)]
pub(crate) enum CompKindSnap {
    Processor { kind: String, profile: ProfileSnap },
    Memory(MemSnap),
    Dma,
    Composite(Vec<(String, u32)>),
}

/// One captured component instance.
#[derive(Debug, Clone)]
pub(crate) struct CompSnap {
    pub(crate) name: String,
    pub(crate) kind: CompKindSnap,
}

/// Captured connection: configuration, channel reservations, and the full
/// transfer log (the transfer log is what bandwidth statistics are computed
/// from, so it must round-trip for resumed reports to match).
#[derive(Debug, Clone)]
pub(crate) struct ConnSnap {
    pub(crate) name: String,
    pub(crate) kind: ConnKind,
    pub(crate) bytes_per_cycle: u64,
    pub(crate) read_free: u64,
    pub(crate) write_free: u64,
    pub(crate) transfers: Vec<Transfer>,
}

/// The captured hardware model: components, buffers, connections.
#[derive(Debug, Clone)]
pub(crate) struct MachineSnap {
    pub(crate) components: Vec<CompSnap>,
    pub(crate) buffers: Vec<Buffer>,
    pub(crate) connections: Vec<ConnSnap>,
}

/// Complete engine state at a cycle boundary, resumable via
/// [`crate::CompiledModule::resume`].
///
/// Produced by [`crate::CompiledModule::snapshot`]. Serialise with
/// [`encode`](Snapshot::encode), reload with [`decode`](Snapshot::decode).
/// A resumed run produces counters bit-identical to an uninterrupted run of
/// the same module and options, under either execution backend.
///
/// # Examples
///
/// ```
/// use equeue_core::{CompiledModule, SimOptions, Snapshot};
/// use equeue_dialect::{kinds, EqueueBuilder};
/// use equeue_ir::{Module, OpBuilder};
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let pe = b.create_proc(kinds::MAC);
/// let start = b.control_start();
/// let launch = b.launch(start, pe, &[], vec![]);
/// let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
/// body.ext_op("mac", vec![], vec![]);
/// body.ret(vec![]);
/// let done = launch.done;
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// b.await_all(vec![done]);
///
/// let compiled = CompiledModule::compile_standard(m)?;
/// let full = compiled.simulate(&SimOptions::default())?;
/// let opts = SimOptions {
///     snapshot_at: Some(1),
///     ..SimOptions::default()
/// };
/// let snap = compiled.snapshot(&opts)?;
/// let bytes = snap.encode();
/// let reloaded = Snapshot::decode(&bytes)?;
/// let resumed = compiled.resume(&reloaded, &SimOptions::default())?;
/// assert_eq!(resumed.cycles, full.cycles);
/// assert_eq!(resumed.events_processed, full.events_processed);
/// # Ok::<(), equeue_core::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub(crate) requested_cut: u64,
    pub(crate) actual_cut: u64,
    pub(crate) completed: bool,
    pub(crate) capture_backend: Backend,
    pub(crate) fingerprint: ModuleFingerprint,
    pub(crate) now: u64,
    pub(crate) horizon: u64,
    pub(crate) wakes: u64,
    pub(crate) ops_interpreted: u64,
    pub(crate) events_spawned: u64,
    pub(crate) live_tensor_bytes: u64,
    pub(crate) peak_live_tensor_bytes: u64,
    pub(crate) fused_trace_entries: u64,
    pub(crate) idle_steps: u64,
    pub(crate) seq: u64,
    pub(crate) host_mem: Option<u32>,
    /// Pending scheduler events, sorted ascending by `(time, seq, proc)`.
    pub(crate) heap: Vec<(u64, u64, u32)>,
    pub(crate) signals: Vec<SignalState>,
    pub(crate) procs: Vec<ProcSnap>,
    pub(crate) machine: MachineSnap,
}

impl Snapshot {
    /// The cycle boundary that was requested via
    /// [`crate::SimOptions::snapshot_at`].
    pub fn requested_cut(&self) -> u64 {
        self.requested_cut
    }

    /// The cycle the capture actually landed on: the time of the next
    /// unprocessed event (every event strictly before it has run). Under
    /// the fused backend a cut requested mid-trace lands at the next trace
    /// exit, so this can exceed [`requested_cut`](Snapshot::requested_cut);
    /// if the program finished before the cut it equals the final cycle
    /// count.
    pub fn actual_cut(&self) -> u64 {
        self.actual_cut
    }

    /// Whether the program ran to completion before reaching the requested
    /// cut (resuming such a snapshot reports the finished run).
    pub fn completed(&self) -> bool {
        self.completed
    }

    /// The backend that executed the run up to the capture point.
    pub fn capture_backend(&self) -> Backend {
        self.capture_backend
    }

    /// Serialises to the versioned binary wire format (see module docs).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.bytes(&MAGIC);
        w.u32(FORMAT_VERSION);
        w.u64(self.requested_cut);
        w.u64(self.actual_cut);
        w.boolean(self.completed);
        w.u8(match self.capture_backend {
            Backend::Interp => 0,
            Backend::Fused => 1,
        });
        w.u64(self.fingerprint.num_ops);
        w.u64(self.fingerprint.num_blocks);
        w.u64(self.fingerprint.num_values);
        for c in [
            self.now,
            self.horizon,
            self.wakes,
            self.ops_interpreted,
            self.events_spawned,
            self.live_tensor_bytes,
            self.peak_live_tensor_bytes,
            self.fused_trace_entries,
            self.idle_steps,
            self.seq,
        ] {
            w.u64(c);
        }
        w.opt_u32(self.host_mem);
        w.seq_len(self.heap.len());
        for &(t, s, p) in &self.heap {
            w.u64(t);
            w.u64(s);
            w.u32(p);
        }
        w.seq_len(self.signals.len());
        for s in &self.signals {
            w_signal_state(&mut w, s);
        }
        w.seq_len(self.procs.len());
        for p in &self.procs {
            w_proc(&mut w, p);
        }
        w_machine(&mut w, &self.machine);
        let checksum = fnv1a(&w.buf);
        w.u64(checksum);
        w.buf
    }

    /// Deserialises a snapshot from `bytes`.
    ///
    /// # Errors
    ///
    /// [`SimError::Snapshot`] on bad magic, unknown version, checksum
    /// mismatch (any truncation or mutation), or a structurally invalid
    /// stream. Never panics.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, SimError> {
        // Checksum first: everything after this point may assume the stream
        // is the untampered output of `encode` (structural validation is
        // still performed — defence in depth for hand-crafted streams).
        if bytes.len() < MAGIC.len() + 4 + 8 {
            return Err(err("stream shorter than the fixed header"));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let mut stored = [0u8; 8];
        stored.copy_from_slice(tail);
        if fnv1a(body) != u64::from_le_bytes(stored) {
            return Err(err("checksum mismatch (truncated or corrupted stream)"));
        }
        let mut r = Reader::new(body);
        if r.take(MAGIC.len())? != MAGIC {
            return Err(err("bad magic (not a snapshot stream)"));
        }
        let version = r.u32()?;
        if version != FORMAT_VERSION {
            return Err(err(&format!(
                "unknown format version {version} (supported: {FORMAT_VERSION})"
            )));
        }
        let requested_cut = r.u64()?;
        let actual_cut = r.u64()?;
        let completed = r.boolean()?;
        let capture_backend = match r.u8()? {
            0 => Backend::Interp,
            1 => Backend::Fused,
            t => return Err(err(&format!("unknown backend tag {t}"))),
        };
        let fingerprint = ModuleFingerprint {
            num_ops: r.u64()?,
            num_blocks: r.u64()?,
            num_values: r.u64()?,
        };
        let now = r.u64()?;
        let horizon = r.u64()?;
        let wakes = r.u64()?;
        let ops_interpreted = r.u64()?;
        let events_spawned = r.u64()?;
        let live_tensor_bytes = r.u64()?;
        let peak_live_tensor_bytes = r.u64()?;
        let fused_trace_entries = r.u64()?;
        let idle_steps = r.u64()?;
        let seq = r.u64()?;
        let host_mem = r.opt_u32()?;
        let n = r.seq_len(8 + 8 + 4)?;
        let mut heap = Vec::with_capacity(n);
        for _ in 0..n {
            heap.push((r.u64()?, r.u64()?, r.u32()?));
        }
        let n = r.seq_len(1)?;
        let mut signals = Vec::with_capacity(n);
        for _ in 0..n {
            signals.push(r_signal_state(&mut r)?);
        }
        let n = r.seq_len(1)?;
        let mut procs = Vec::with_capacity(n);
        for _ in 0..n {
            procs.push(r_proc(&mut r)?);
        }
        let machine = r_machine(&mut r)?;
        if !r.at_end() {
            return Err(err("trailing bytes after the machine section"));
        }
        Ok(Snapshot {
            requested_cut,
            actual_cut,
            completed,
            capture_backend,
            fingerprint,
            now,
            horizon,
            wakes,
            ops_interpreted,
            events_spawned,
            live_tensor_bytes,
            peak_live_tensor_bytes,
            fused_trace_entries,
            idle_steps,
            seq,
            host_mem,
            heap,
            signals,
            procs,
            machine,
        })
    }
}

/// Builds a [`SimError::Snapshot`].
pub(crate) fn err(msg: &str) -> SimError {
    SimError::Snapshot(msg.to_string())
}

/// FNV-1a 64-bit hash (dependency-free integrity check).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn boolean(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn seq_len(&mut self, len: usize) {
        self.u64(len as u64);
    }

    fn string(&mut self, s: &str) {
        self.seq_len(s.len());
        self.bytes(s.as_bytes());
    }

    fn opt_u32(&mut self, v: Option<u32>) {
        match v {
            None => self.u8(0),
            Some(x) => {
                self.u8(1);
                self.u32(x);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SimError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| err("length overflow"))?;
        if end > self.buf.len() {
            return Err(err("truncated stream"));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SimError> {
        Ok(self.take(1)?[0])
    }

    fn boolean(&mut self) -> Result<bool, SimError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(err(&format!("bad bool byte {t}"))),
        }
    }

    fn u32(&mut self) -> Result<u32, SimError> {
        let mut b = [0u8; 4];
        b.copy_from_slice(self.take(4)?);
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self) -> Result<u64, SimError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(u64::from_le_bytes(b))
    }

    fn i64(&mut self) -> Result<i64, SimError> {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.take(8)?);
        Ok(i64::from_le_bytes(b))
    }

    fn f64(&mut self) -> Result<f64, SimError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize(&mut self) -> Result<usize, SimError> {
        usize::try_from(self.u64()?).map_err(|_| err("count exceeds the address space"))
    }

    /// Reads a sequence length, rejecting counts that could not possibly
    /// fit in the remaining bytes (`min_elem` bytes per element) so
    /// adversarial streams cannot trigger huge allocations.
    fn seq_len(&mut self, min_elem: usize) -> Result<usize, SimError> {
        let n = self.usize()?;
        if n > self.remaining() / min_elem.max(1) {
            return Err(err("sequence length exceeds the remaining stream"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, SimError> {
        let n = self.seq_len(1)?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("invalid utf-8 in string"))
    }

    fn opt_u32(&mut self) -> Result<Option<u32>, SimError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u32()?)),
            t => Err(err(&format!("bad option tag {t}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------------

fn w_value(w: &mut Writer, v: &SimValue) {
    match v {
        SimValue::Unit => w.u8(0),
        SimValue::Int(i) => {
            w.u8(1);
            w.i64(*i);
        }
        SimValue::Float(x) => {
            w.u8(2);
            w.f64(*x);
        }
        SimValue::Tensor(t) => {
            w.u8(3);
            w_tensor(w, t);
        }
        SimValue::Signal(s) => {
            w.u8(4);
            w.u32(s.0);
        }
        SimValue::Component(c) => {
            w.u8(5);
            w.u32(c.0);
        }
        SimValue::Buffer(b) => {
            w.u8(6);
            w.u32(b.0);
        }
        SimValue::Connection(c) => {
            w.u8(7);
            w.u32(c.0);
        }
        SimValue::Deferred { signal, index } => {
            w.u8(8);
            w.u32(signal.0);
            w.usize(*index);
        }
    }
}

fn r_value(r: &mut Reader) -> Result<SimValue, SimError> {
    Ok(match r.u8()? {
        0 => SimValue::Unit,
        1 => SimValue::Int(r.i64()?),
        2 => SimValue::Float(r.f64()?),
        3 => SimValue::Tensor(r_tensor(r)?),
        4 => SimValue::Signal(SignalId(r.u32()?)),
        5 => SimValue::Component(CompId(r.u32()?)),
        6 => SimValue::Buffer(BufId(r.u32()?)),
        7 => SimValue::Connection(ConnId(r.u32()?)),
        8 => SimValue::Deferred {
            signal: SignalId(r.u32()?),
            index: r.usize()?,
        },
        t => return Err(err(&format!("unknown value tag {t}"))),
    })
}

fn w_opt_value(w: &mut Writer, v: &Option<SimValue>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w_value(w, x);
        }
    }
}

fn r_opt_value(r: &mut Reader) -> Result<Option<SimValue>, SimError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r_value(r)?)),
        t => Err(err(&format!("bad option tag {t}"))),
    }
}

fn w_tensor(w: &mut Writer, t: &Tensor) {
    w.seq_len(t.shape.len());
    for &d in &t.shape {
        w.usize(d);
    }
    match &t.data {
        TensorData::Int(v) => {
            w.u8(0);
            w.seq_len(v.len());
            for &x in v.iter() {
                w.i64(x);
            }
        }
        TensorData::Float(v) => {
            w.u8(1);
            w.seq_len(v.len());
            for &x in v.iter() {
                w.f64(x);
            }
        }
    }
}

fn r_tensor(r: &mut Reader) -> Result<Tensor, SimError> {
    let rank = r.seq_len(8)?;
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(r.usize()?);
    }
    let data = match r.u8()? {
        0 => {
            let n = r.seq_len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            TensorData::from_ints(v)
        }
        1 => {
            let n = r.seq_len(8)?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            TensorData::from_floats(v)
        }
        t => return Err(err(&format!("unknown tensor-data tag {t}"))),
    };
    // Element count must match the shape: engine indexing trusts it.
    let elems: usize = shape.iter().try_fold(1usize, |acc, &d| {
        acc.checked_mul(d)
            .ok_or_else(|| err("tensor shape overflows the address space"))
    })?;
    let len = match &data {
        TensorData::Int(v) => v.len(),
        TensorData::Float(v) => v.len(),
    };
    if elems != len {
        return Err(err("tensor data length does not match its shape"));
    }
    Ok(Tensor { shape, data })
}

fn w_signal_state(w: &mut Writer, s: &SignalState) {
    match s {
        SignalState::Pending {
            remaining,
            time_acc,
            any_mode,
            dependents,
        } => {
            w.u8(0);
            w.usize(*remaining);
            w.u64(*time_acc);
            w.boolean(*any_mode);
            w.seq_len(dependents.len());
            for d in dependents {
                w.u32(d.0);
            }
        }
        SignalState::Resolved { time, payload } => {
            w.u8(1);
            w.u64(*time);
            w.seq_len(payload.len());
            for v in payload {
                w_value(w, v);
            }
        }
    }
}

fn r_signal_state(r: &mut Reader) -> Result<SignalState, SimError> {
    Ok(match r.u8()? {
        0 => {
            let remaining = r.usize()?;
            let time_acc = r.u64()?;
            let any_mode = r.boolean()?;
            let n = r.seq_len(4)?;
            let mut dependents = Vec::with_capacity(n);
            for _ in 0..n {
                dependents.push(SignalId(r.u32()?));
            }
            SignalState::Pending {
                remaining,
                time_acc,
                any_mode,
                dependents,
            }
        }
        1 => {
            let time = r.u64()?;
            let n = r.seq_len(1)?;
            let mut payload = Vec::with_capacity(n);
            for _ in 0..n {
                payload.push(r_value(r)?);
            }
            SignalState::Resolved { time, payload }
        }
        t => return Err(err(&format!("unknown signal-state tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Engine-state codecs
// ---------------------------------------------------------------------------

fn w_event(w: &mut Writer, e: &PendingEvent) {
    match &e.kind {
        EventKind::Launch { op, env } => {
            w.u8(0);
            w.usize(op.index());
            w.seq_len(env.len());
            for v in env {
                w_opt_value(w, v);
            }
        }
        EventKind::Memcpy { src, dst, conn } => {
            w.u8(1);
            w.u32(src.0);
            w.u32(dst.0);
            w.opt_u32(conn.map(|c| c.0));
        }
    }
    w.u32(e.dep.0);
    w.u32(e.done.0);
}

fn r_event(r: &mut Reader) -> Result<PendingEvent, SimError> {
    let kind = match r.u8()? {
        0 => {
            let op = equeue_ir::OpId::from_index(r.usize()?);
            let n = r.seq_len(1)?;
            let mut env = Vec::with_capacity(n);
            for _ in 0..n {
                env.push(r_opt_value(r)?);
            }
            EventKind::Launch { op, env }
        }
        1 => EventKind::Memcpy {
            src: BufId(r.u32()?),
            dst: BufId(r.u32()?),
            conn: r.opt_u32()?.map(ConnId),
        },
        t => return Err(err(&format!("unknown event tag {t}"))),
    };
    Ok(PendingEvent {
        kind,
        dep: SignalId(r.u32()?),
        done: SignalId(r.u32()?),
    })
}

fn w_loop_state(w: &mut Writer, s: &LoopState) {
    w.seq_len(s.ivs.len());
    for &iv in &s.ivs {
        w.u32(iv);
    }
    for vec in [&s.lowers, &s.uppers, &s.steps, &s.current] {
        w.seq_len(vec.len());
        for &x in vec {
            w.i64(x);
        }
    }
}

fn r_loop_state(r: &mut Reader) -> Result<LoopState, SimError> {
    let n = r.seq_len(4)?;
    let mut ivs = Vec::with_capacity(n);
    for _ in 0..n {
        ivs.push(r.u32()?);
    }
    let mut vecs = Vec::with_capacity(4);
    for _ in 0..4 {
        let m = r.seq_len(8)?;
        if m != n {
            return Err(err("loop-state dimension mismatch"));
        }
        let mut v = Vec::with_capacity(m);
        for _ in 0..m {
            v.push(r.i64()?);
        }
        vecs.push(v);
    }
    let current = vecs.pop().unwrap_or_default();
    let steps = vecs.pop().unwrap_or_default();
    let uppers = vecs.pop().unwrap_or_default();
    let lowers = vecs.pop().unwrap_or_default();
    Ok(LoopState {
        ivs,
        lowers,
        uppers,
        steps,
        current,
    })
}

fn w_frame(w: &mut Writer, f: &Frame) {
    w.seq_len(f.env.len());
    for v in &f.env {
        w_opt_value(w, v);
    }
    w.seq_len(f.stack.len());
    for s in &f.stack {
        w.usize(s.block.index());
        w.usize(s.idx);
        match &s.looping {
            None => w.u8(0),
            Some(ls) => {
                w.u8(1);
                w_loop_state(w, ls);
            }
        }
    }
    w.u32(f.done.0);
    w.u32(f.scope);
}

fn r_frame(r: &mut Reader) -> Result<Frame, SimError> {
    let n = r.seq_len(1)?;
    let mut env = Vec::with_capacity(n);
    for _ in 0..n {
        env.push(r_opt_value(r)?);
    }
    let n = r.seq_len(1)?;
    let mut stack = Vec::with_capacity(n);
    for _ in 0..n {
        let block = equeue_ir::BlockId::from_index(r.usize()?);
        let idx = r.usize()?;
        let looping = match r.u8()? {
            0 => None,
            1 => Some(r_loop_state(r)?),
            t => return Err(err(&format!("bad option tag {t}"))),
        };
        stack.push(Scope {
            block,
            idx,
            looping,
        });
    }
    Ok(Frame {
        env,
        stack,
        done: SignalId(r.u32()?),
        scope: r.u32()?,
    })
}

fn w_profile(w: &mut Writer, p: &ProfileSnap) {
    w.u64(p.default_cycles);
    w.seq_len(p.per_op.len());
    for (name, cycles) in &p.per_op {
        w.string(name);
        w.u64(*cycles);
    }
}

fn r_profile(r: &mut Reader) -> Result<ProfileSnap, SimError> {
    let default_cycles = r.u64()?;
    let n = r.seq_len(1)?;
    let mut per_op = Vec::with_capacity(n);
    for _ in 0..n {
        per_op.push((r.string()?, r.u64()?));
    }
    Ok(ProfileSnap {
        default_cycles,
        per_op,
    })
}

fn w_proc(w: &mut Writer, p: &ProcSnap) {
    w.u32(p.comp);
    w.u64(p.clock);
    w_profile(w, &p.profile);
    w.seq_len(p.queue.len());
    for e in &p.queue {
        w_event(w, e);
    }
    match &p.frame {
        None => w.u8(0),
        Some(f) => {
            w.u8(1);
            w_frame(w, f);
        }
    }
}

fn r_proc(r: &mut Reader) -> Result<ProcSnap, SimError> {
    let comp = r.u32()?;
    let clock = r.u64()?;
    let profile = r_profile(r)?;
    let n = r.seq_len(1)?;
    let mut queue = Vec::with_capacity(n);
    for _ in 0..n {
        queue.push(r_event(r)?);
    }
    let frame = match r.u8()? {
        0 => None,
        1 => Some(r_frame(r)?),
        t => return Err(err(&format!("bad option tag {t}"))),
    };
    Ok(ProcSnap {
        comp,
        clock,
        profile,
        queue,
        frame,
    })
}

// ---------------------------------------------------------------------------
// Machine codecs
// ---------------------------------------------------------------------------

fn w_behavior(w: &mut Writer, b: &BehaviorSnapshot) {
    match b {
        BehaviorSnapshot::Sram { cycles_per_access } => {
            w.u8(0);
            w.u64(*cycles_per_access);
        }
        BehaviorSnapshot::Register => w.u8(1),
        BehaviorSnapshot::Dram {
            latency,
            cycles_per_access,
        } => {
            w.u8(2);
            w.u64(*latency);
            w.u64(*cycles_per_access);
        }
        BehaviorSnapshot::Cache {
            sets,
            ways,
            line_elems,
            hit_cycles,
            miss_cycles,
            tags,
            hits,
            misses,
        } => {
            w.u8(3);
            w.usize(*sets);
            w.usize(*ways);
            w.usize(*line_elems);
            w.u64(*hit_cycles);
            w.u64(*miss_cycles);
            w.seq_len(tags.len());
            for set in tags {
                w.seq_len(set.len());
                for &t in set {
                    w.usize(t);
                }
            }
            w.u64(*hits);
            w.u64(*misses);
        }
        _ => w.u8(4),
    }
}

fn r_behavior(r: &mut Reader) -> Result<BehaviorSnapshot, SimError> {
    Ok(match r.u8()? {
        0 => BehaviorSnapshot::Sram {
            cycles_per_access: r.u64()?,
        },
        1 => BehaviorSnapshot::Register,
        2 => BehaviorSnapshot::Dram {
            latency: r.u64()?,
            cycles_per_access: r.u64()?,
        },
        3 => {
            let sets = r.usize()?;
            let ways = r.usize()?;
            let line_elems = r.usize()?;
            let hit_cycles = r.u64()?;
            let miss_cycles = r.u64()?;
            let n = r.seq_len(8)?;
            let mut tags = Vec::with_capacity(n);
            for _ in 0..n {
                let m = r.seq_len(8)?;
                let mut set = Vec::with_capacity(m);
                for _ in 0..m {
                    set.push(r.usize()?);
                }
                tags.push(set);
            }
            BehaviorSnapshot::Cache {
                sets,
                ways,
                line_elems,
                hit_cycles,
                miss_cycles,
                tags,
                hits: r.u64()?,
                misses: r.u64()?,
            }
        }
        4 => BehaviorSnapshot::Opaque,
        t => return Err(err(&format!("unknown behavior tag {t}"))),
    })
}

fn w_machine(w: &mut Writer, m: &MachineSnap) {
    w.seq_len(m.components.len());
    for c in &m.components {
        w.string(&c.name);
        match &c.kind {
            CompKindSnap::Processor { kind, profile } => {
                w.u8(0);
                w.string(kind);
                w_profile(w, profile);
            }
            CompKindSnap::Memory(mem) => {
                w.u8(1);
                w.string(&mem.kind);
                w.u64(mem.capacity_elems);
                w.u32(mem.data_bits);
                w.u32(mem.banks);
                w.u64(mem.used_elems);
                w_behavior(w, &mem.behavior);
                w.seq_len(mem.ports.len());
                for &p in &mem.ports {
                    w.u64(p);
                }
                w.u64(mem.counters.bytes_read);
                w.u64(mem.counters.bytes_written);
                w.u64(mem.counters.reads);
                w.u64(mem.counters.writes);
                w.f64(mem.energy_per_access_pj);
            }
            CompKindSnap::Dma => w.u8(2),
            CompKindSnap::Composite(children) => {
                w.u8(3);
                w.seq_len(children.len());
                for (name, id) in children {
                    w.string(name);
                    w.u32(*id);
                }
            }
        }
    }
    w.seq_len(m.buffers.len());
    for b in &m.buffers {
        w.u32(b.mem.0);
        w.seq_len(b.shape.len());
        for &d in &b.shape {
            w.usize(d);
        }
        w.usize(b.elem_bytes);
        w.usize(b.base_addr);
        w.boolean(b.live);
        w_tensor(w, &b.data);
    }
    w.seq_len(m.connections.len());
    for c in &m.connections {
        w.string(&c.name);
        w.u8(match c.kind {
            ConnKind::Streaming => 0,
            ConnKind::Window => 1,
        });
        w.u64(c.bytes_per_cycle);
        w.u64(c.read_free);
        w.u64(c.write_free);
        w.seq_len(c.transfers.len());
        for t in &c.transfers {
            w.u64(t.start);
            w.u64(t.end);
            w.u64(t.bytes);
            w.u8(match t.kind {
                AccessKind::Read => 0,
                AccessKind::Write => 1,
            });
        }
    }
}

fn r_machine(r: &mut Reader) -> Result<MachineSnap, SimError> {
    let n = r.seq_len(1)?;
    let mut components = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let kind = match r.u8()? {
            0 => CompKindSnap::Processor {
                kind: r.string()?,
                profile: r_profile(r)?,
            },
            1 => {
                let kind = r.string()?;
                let capacity_elems = r.u64()?;
                let data_bits = r.u32()?;
                let banks = r.u32()?;
                let used_elems = r.u64()?;
                let behavior = r_behavior(r)?;
                let m = r.seq_len(8)?;
                let mut ports = Vec::with_capacity(m);
                for _ in 0..m {
                    ports.push(r.u64()?);
                }
                let counters = MemCounters {
                    bytes_read: r.u64()?,
                    bytes_written: r.u64()?,
                    reads: r.u64()?,
                    writes: r.u64()?,
                };
                CompKindSnap::Memory(MemSnap {
                    kind,
                    capacity_elems,
                    data_bits,
                    banks,
                    used_elems,
                    behavior,
                    ports,
                    counters,
                    energy_per_access_pj: r.f64()?,
                })
            }
            2 => CompKindSnap::Dma,
            3 => {
                let m = r.seq_len(1)?;
                let mut children = Vec::with_capacity(m);
                for _ in 0..m {
                    children.push((r.string()?, r.u32()?));
                }
                CompKindSnap::Composite(children)
            }
            t => return Err(err(&format!("unknown component tag {t}"))),
        };
        components.push(CompSnap { name, kind });
    }
    let n = r.seq_len(1)?;
    let mut buffers = Vec::with_capacity(n);
    for _ in 0..n {
        let mem = CompId(r.u32()?);
        let rank = r.seq_len(8)?;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.usize()?);
        }
        let elem_bytes = r.usize()?;
        let base_addr = r.usize()?;
        let live = r.boolean()?;
        let data = r_tensor(r)?;
        buffers.push(Buffer {
            mem,
            shape,
            elem_bytes,
            base_addr,
            live,
            data,
        });
    }
    let n = r.seq_len(1)?;
    let mut connections = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.string()?;
        let kind = match r.u8()? {
            0 => ConnKind::Streaming,
            1 => ConnKind::Window,
            t => return Err(err(&format!("unknown connection tag {t}"))),
        };
        let bytes_per_cycle = r.u64()?;
        let read_free = r.u64()?;
        let write_free = r.u64()?;
        let m = r.seq_len(8 + 8 + 8 + 1)?;
        let mut transfers = Vec::with_capacity(m);
        for _ in 0..m {
            transfers.push(Transfer {
                start: r.u64()?,
                end: r.u64()?,
                bytes: r.u64()?,
                kind: match r.u8()? {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    t => return Err(err(&format!("unknown access tag {t}"))),
                },
            });
        }
        connections.push(ConnSnap {
            name,
            kind,
            bytes_per_cycle,
            read_free,
            write_free,
            transfers,
        });
    }
    Ok(MachineSnap {
        components,
        buffers,
        connections,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Snapshot {
        Snapshot {
            requested_cut: 10,
            actual_cut: 12,
            completed: false,
            capture_backend: Backend::Fused,
            fingerprint: ModuleFingerprint {
                num_ops: 3,
                num_blocks: 2,
                num_values: 5,
            },
            now: 9,
            horizon: 12,
            wakes: 4,
            ops_interpreted: 7,
            events_spawned: 2,
            live_tensor_bytes: 64,
            peak_live_tensor_bytes: 128,
            fused_trace_entries: 1,
            idle_steps: 0,
            seq: 6,
            host_mem: Some(1),
            heap: vec![(12, 5, 0)],
            signals: vec![
                SignalState::Resolved {
                    time: 3,
                    payload: vec![SimValue::Int(-4), SimValue::Float(1.5)],
                },
                SignalState::Pending {
                    remaining: 2,
                    time_acc: 7,
                    any_mode: false,
                    dependents: vec![SignalId(0)],
                },
            ],
            procs: vec![ProcSnap {
                comp: 0,
                clock: 9,
                profile: ProfileSnap {
                    default_cycles: 1,
                    per_op: vec![("mac".into(), 2)],
                },
                queue: vec![PendingEvent {
                    kind: EventKind::Memcpy {
                        src: BufId(0),
                        dst: BufId(0),
                        conn: None,
                    },
                    dep: SignalId(0),
                    done: SignalId(1),
                }],
                frame: None,
            }],
            machine: MachineSnap {
                components: vec![CompSnap {
                    name: "HostMem".into(),
                    kind: CompKindSnap::Memory(MemSnap {
                        kind: "Register".into(),
                        capacity_elems: 1024,
                        data_bits: 32,
                        banks: 1,
                        used_elems: 4,
                        behavior: BehaviorSnapshot::Register,
                        ports: vec![0],
                        counters: MemCounters {
                            bytes_read: 16,
                            bytes_written: 16,
                            reads: 1,
                            writes: 1,
                        },
                        energy_per_access_pj: 0.5,
                    }),
                }],
                buffers: vec![Buffer {
                    mem: CompId(0),
                    shape: vec![2, 2],
                    elem_bytes: 4,
                    base_addr: 0,
                    live: true,
                    data: Tensor {
                        shape: vec![2, 2],
                        data: TensorData::from_ints(vec![1, 2, 3, 4]),
                    },
                }],
                connections: vec![ConnSnap {
                    name: "c0".into(),
                    kind: ConnKind::Streaming,
                    bytes_per_cycle: 4,
                    read_free: 8,
                    write_free: 9,
                    transfers: vec![Transfer {
                        start: 2,
                        end: 6,
                        bytes: 16,
                        kind: AccessKind::Write,
                    }],
                }],
            },
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let snap = tiny();
        let bytes = snap.encode();
        let decoded = Snapshot::decode(&bytes).expect("decode");
        assert_eq!(decoded.encode(), bytes);
        assert_eq!(decoded.requested_cut(), 10);
        assert_eq!(decoded.actual_cut(), 12);
        assert!(!decoded.completed());
        assert_eq!(decoded.capture_backend(), Backend::Fused);
    }

    #[test]
    fn every_truncation_fails_typed() {
        let bytes = tiny().encode();
        for n in 0..bytes.len() {
            match Snapshot::decode(&bytes[..n]) {
                Err(SimError::Snapshot(_)) => {}
                other => panic!("truncation at {n} gave {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_fails_typed() {
        let bytes = tiny().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x41;
            match Snapshot::decode(&bad) {
                Err(SimError::Snapshot(_)) => {}
                other => panic!("flip at {i} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = tiny().encode();
        assert!(matches!(Snapshot::decode(&[]), Err(SimError::Snapshot(_))));
        // Corrupt the version but re-stamp the checksum: the version check
        // itself must fire.
        bytes[4] = 0xEE;
        let body_len = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        match Snapshot::decode(&bytes) {
            Err(SimError::Snapshot(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }
}
