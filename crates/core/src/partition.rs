//! Compile-time conflict partition for the group-sharded engine.
//!
//! Mirrors `equeue-analysis`'s `ConflictPass` inside the engine crate (core
//! cannot depend on the analysis crate — the dependency points the other
//! way), so `Plan::build` can bake the independent-group partition into
//! every compiled module. Nodes are the implicit host (index 0) plus every
//! `create_proc`/`create_dma` op in op order; two nodes conflict when their
//! statically-resolved resource footprints (memories, connections, host
//! memory) intersect; the connected components of the conflict relation are
//! the *independent groups* the sharded runtime may step concurrently.
//!
//! The mirror must stay bit-identical to `ConflictPass` — the analysis
//! crate's differential test compares the two group-by-group — so the
//! resolution rules below (capture-chasing `resolve_def`, the conservative
//! opaque/unresolved degradations, union-find ordering) are copied from it
//! verbatim rather than improved.
//!
//! On top of the partition this module computes a *shard-purity* verdict
//! per launch site: a launch is pure when everything a shard would execute
//! on its behalf provably stays inside the launch target's group — nested
//! launches and memcpys target group members, linalg kernels hit
//! group-owned memories, and the body never allocates, deallocates, or
//! elaborates the machine (those assign global buffer/component ids whose
//! order a shard would permute). Pure launches are the only ones the
//! parallel runtime offloads; everything else runs on the sequential path
//! unchanged.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use equeue_dialect::{launch_view, memcpy_view, read_view, write_view};
use equeue_ir::{BlockId, Module, OpId, ValueDef, ValueId};

use crate::engine::{OpCode, OpInfo};

/// Depth cap for recursive walks, mirroring the analysis crate: malformed
/// IR may contain region/capture chains the arena invariants no longer
/// bound.
const MAX_DEPTH: usize = 128;

/// A statically-identified shared resource (mirror of `ConflictPass`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Res {
    /// A device memory (`create_mem` op index).
    Mem(usize),
    /// A connection (`create_connection` op index).
    Conn(usize),
    /// The host's implicit memory (`memref.alloc` buffers).
    HostMem,
}

/// Where a buffer value ultimately lives (mirror of the analysis crate's
/// `BufferOrigin`).
enum BufOrigin {
    /// Allocated in the memory created by this `create_mem` op.
    Mem(OpId),
    /// Host memory (`memref.alloc`).
    Host,
    /// Not statically resolvable.
    Unknown,
}

/// The independent-group partition of a compiled module, with the purity
/// verdicts the sharded runtime consumes.
#[derive(Debug, Clone, Default)]
pub struct Partition {
    /// Connected components of the conflict relation: each group sorted,
    /// groups sorted by first member (host's group is the one containing
    /// node 0). Identical to `ConflictPass`'s `groups`.
    groups: Vec<Vec<usize>>,
    /// Group id of each node.
    group_of_node: Vec<u32>,
    /// `create_proc`/`create_dma` op index → node index.
    node_of_create_op: HashMap<usize, usize>,
    /// `create_mem` op index → group of the nodes that touch it (absent
    /// when nothing statically touches the memory).
    group_of_mem_op: HashMap<usize, u32>,
    /// `create_connection` op index → group of its touchers.
    group_of_conn_op: HashMap<usize, u32>,
    /// Launch op index → target group, for shard-pure launches only.
    pure_launch: HashMap<usize, u32>,
    /// Whether any node footprint failed to resolve (every node conflicts
    /// with every other: the whole module is one group).
    degraded: bool,
}

impl Partition {
    /// The independent groups, in `ConflictPass` order: node 0 is the
    /// host, nodes 1.. are `create_proc`/`create_dma` ops in op order.
    pub fn groups(&self) -> &[Vec<usize>] {
        &self.groups
    }

    /// Number of conflict-graph nodes (host + processors + DMAs).
    pub fn num_nodes(&self) -> usize {
        self.group_of_node.len()
    }

    /// The group containing the implicit host node.
    pub fn host_group(&self) -> u32 {
        self.group_of_node.first().copied().unwrap_or(0)
    }

    /// Whether conservative degradation collapsed everything into a single
    /// group (unresolvable launch target or memcpy DMA).
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Group of the processor/DMA created by the op at `op_idx`.
    pub(crate) fn group_of_create_op(&self, op_idx: usize) -> Option<u32> {
        self.node_of_create_op
            .get(&op_idx)
            .map(|&n| self.group_of_node[n])
    }

    /// Group of the memory created by the op at `op_idx`, when statically
    /// touched by exactly one group.
    pub(crate) fn group_of_mem_op(&self, op_idx: usize) -> Option<u32> {
        self.group_of_mem_op.get(&op_idx).copied()
    }

    /// Group of the connection created by the op at `op_idx`.
    pub(crate) fn group_of_conn_op(&self, op_idx: usize) -> Option<u32> {
        self.group_of_conn_op.get(&op_idx).copied()
    }

    /// The target group of a shard-pure launch site, or `None` when the
    /// launch (or anything it transitively runs) may escape its group.
    pub(crate) fn pure_launch(&self, op_idx: usize) -> Option<u32> {
        self.pure_launch.get(&op_idx).copied()
    }

    /// Number of shard-pure launch sites (diagnostics/tests).
    pub fn pure_launch_count(&self) -> usize {
        self.pure_launch.len()
    }

    /// The shard-pure launch sites as `(launch op index, target group)`,
    /// sorted by op index — a deterministic listing for diagnostics (the
    /// backing map iterates in hash order).
    pub fn pure_launches(&self) -> Vec<(usize, u32)> {
        let mut v: Vec<_> = self.pure_launch.iter().map(|(&op, &g)| (op, g)).collect();
        v.sort_unstable();
        v
    }

    /// Builds the partition for a module whose ops were decoded into
    /// `ops` (the `Plan`'s side table — node enumeration must match the
    /// prepass facts, which are decode-based).
    pub(crate) fn build(module: &Module, ops: &[OpInfo]) -> Partition {
        // Node enumeration: host first, then create_proc/create_dma in op
        // order — exactly `PrepassFacts::procs` over `live_ops()`.
        let mut node_of_proc = HashMap::new();
        let mut n = 1usize;
        for op in module.live_ops() {
            let i = op.index();
            let Some(info) = ops.get(i) else { continue };
            if matches!(info.code, OpCode::CreateProc { .. } | OpCode::CreateDma) {
                node_of_proc.insert(i, n);
                n += 1;
            }
        }

        let mut b = Builder {
            module,
            footprints: vec![BTreeSet::new(); n],
            opaque: vec![false; n],
            node_of_proc,
            unresolved: false,
            purity: Vec::new(),
            stack: Vec::new(),
            silent_mem_uses: Vec::new(),
            silent_unresolved: false,
        };
        b.visit_block(module.top_block(), 0, 0);

        // An unattributable event could touch anything: every node becomes
        // opaque, collapsing the graph into one group.
        if b.unresolved {
            for o in &mut b.opaque {
                *o = true;
            }
        }

        // Union-find over the (implicit) conflict edges.
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for a in 0..n {
            for c in a + 1..n {
                let conflict = b.opaque[a]
                    || b.opaque[c]
                    || b.footprints[a]
                        .intersection(&b.footprints[c])
                        .next()
                        .is_some();
                if conflict {
                    let (ra, rc) = (find(&mut parent, a), find(&mut parent, c));
                    if ra != rc {
                        parent[ra.max(rc)] = ra.min(rc);
                    }
                }
            }
        }
        let mut groups_map: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let r = find(&mut parent, i);
            groups_map.entry(r).or_default().push(i);
        }
        let groups: Vec<Vec<usize>> = groups_map.into_values().collect();
        let mut group_of_node = vec![0u32; n];
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                group_of_node[m] = g as u32;
            }
        }

        // Resource → group maps, and whether each group touches host
        // memory or contains an opaque node.
        let mut group_of_mem_op = HashMap::new();
        let mut group_of_conn_op = HashMap::new();
        let mut group_touches_host = vec![false; groups.len()];
        let mut group_opaque = vec![false; groups.len()];
        for (node, &g) in group_of_node.iter().enumerate() {
            if b.opaque[node] {
                group_opaque[g as usize] = true;
            }
            for res in &b.footprints[node] {
                match res {
                    Res::Mem(m) => {
                        group_of_mem_op.insert(*m, g);
                    }
                    Res::Conn(c) => {
                        group_of_conn_op.insert(*c, g);
                    }
                    Res::HostMem => group_touches_host[g as usize] = true,
                }
            }
        }

        // Cross-group invasion: a group whose memory is mutated without a
        // footprint (linalg, dealloc) by a node *outside* the group can be
        // reached by the sequential path while a shard of the group is
        // speculating — and those mutations cannot be replayed exactly, so
        // the whole group is excluded from offloading.
        let mut invaded = vec![false; groups.len()];
        for &(m, node) in &b.silent_mem_uses {
            if let Some(&gm) = group_of_mem_op.get(&m) {
                if group_of_node.get(node) != Some(&gm) {
                    invaded[gm as usize] = true;
                }
            }
        }

        // Purity verdicts: everything the shard would run must provably
        // stay inside the launch target's group, and that group must be
        // fully resolvable, host-free, and invasion-free.
        let host_group = group_of_node[0];
        let mut pure_launch = HashMap::new();
        for p in &b.purity {
            if p.impure || b.silent_unresolved {
                continue;
            }
            let g = group_of_node[p.target_node];
            if g == host_group
                || group_opaque[g as usize]
                || group_touches_host[g as usize]
                || invaded[g as usize]
            {
                continue;
            }
            let nodes_ok = p.node_constraints.iter().all(|&c| group_of_node[c] == g);
            let mems_ok = p
                .mem_constraints
                .iter()
                .all(|m| group_of_mem_op.get(m) == Some(&g));
            if nodes_ok && mems_ok {
                pure_launch.insert(p.op, g);
            }
        }

        Partition {
            groups,
            group_of_node,
            node_of_create_op: b.node_of_proc,
            group_of_mem_op,
            group_of_conn_op,
            pure_launch,
            degraded: b.unresolved,
        }
    }
}

/// Per-launch-site purity bookkeeping collected during the walk. The
/// constraints are group-membership obligations checked after union-find.
struct LaunchPurity {
    /// The launch op index.
    op: usize,
    /// Resolved target node.
    target_node: usize,
    /// Definitely not offloadable (elaboration/host-memory/unresolvable
    /// ops in the body).
    impure: bool,
    /// Nodes (nested launch targets, memcpy DMAs) that must share the
    /// target's group.
    node_constraints: Vec<usize>,
    /// `create_mem` op indexes (linalg kernel operands) that must belong
    /// to the target's group.
    mem_constraints: Vec<usize>,
}

struct Builder<'m> {
    module: &'m Module,
    footprints: Vec<BTreeSet<Res>>,
    opaque: Vec<bool>,
    node_of_proc: HashMap<usize, usize>,
    unresolved: bool,
    purity: Vec<LaunchPurity>,
    /// Indexes into `purity` for the launch sites enclosing the current
    /// block — a constraint applies to every enclosing site.
    stack: Vec<usize>,
    /// `(create_mem op index, node)` pairs for ops that mutate a memory
    /// *without* a `ConflictPass` footprint entry (linalg kernels and
    /// deallocs). These are the only channels through which an actor
    /// outside a group can reach the group's state at runtime, so a group
    /// containing a memory used this way by a foreign node is never
    /// offloadable (the speculative merge could not replay such a
    /// cross-group interleaving exactly).
    silent_mem_uses: Vec<(usize, usize)>,
    /// A linalg/dealloc buffer operand failed to resolve: it could reach
    /// any memory, so no group is offloadable.
    silent_unresolved: bool,
}

impl<'m> Builder<'m> {
    /// Bounds-checked op lookup (skips erased and out-of-range ids).
    fn op_checked(&self, op: OpId) -> Option<&equeue_ir::Operation> {
        if op.index() >= self.module.num_ops() {
            return None;
        }
        let data = self.module.op(op);
        (!data.erased).then_some(data)
    }

    /// Resolves a value to its ultimate defining op, looking through
    /// `equeue.launch` body arguments to the captured value in the parent
    /// scope (verbatim mirror of the analysis crate's `resolve_def`).
    fn resolve_def(&self, value: ValueId) -> Option<OpId> {
        let mut v = value;
        for _ in 0..MAX_DEPTH {
            if v.index() >= self.module.num_values() {
                return None;
            }
            match self.module.value(v).def {
                ValueDef::OpResult { op, .. } => {
                    return self.op_checked(op).map(|_| op);
                }
                ValueDef::BlockArg { block, index } => {
                    if block.index() >= self.module.num_blocks() {
                        return None;
                    }
                    let region = self.module.block(block).parent_region;
                    if region.index() >= self.module.num_regions() {
                        return None;
                    }
                    let parent = self.module.region(region).parent_op?;
                    let pdata = self.op_checked(parent)?;
                    if pdata.name != "equeue.launch" {
                        return None;
                    }
                    let lv = launch_view(self.module, parent).ok()?;
                    v = *lv.captures.get(index)?;
                }
            }
        }
        None
    }

    /// Resolves a buffer-typed value to its allocation site's memory.
    fn buffer_origin(&self, value: ValueId) -> BufOrigin {
        let Some(def) = self.resolve_def(value) else {
            return BufOrigin::Unknown;
        };
        let Some(data) = self.op_checked(def) else {
            return BufOrigin::Unknown;
        };
        match data.name.as_str() {
            "equeue.alloc" => {
                let Some(&mem) = data.operands.first() else {
                    return BufOrigin::Unknown;
                };
                match self.resolve_def(mem) {
                    Some(m)
                        if self
                            .op_checked(m)
                            .is_some_and(|d| d.name == "equeue.create_mem") =>
                    {
                        BufOrigin::Mem(m)
                    }
                    _ => BufOrigin::Unknown,
                }
            }
            "memref.alloc" => BufOrigin::Host,
            _ => BufOrigin::Unknown,
        }
    }

    /// Records one buffer use by `node`, degrading to opaque on
    /// unresolvable buffers.
    fn touch_buffer(&mut self, node: usize, buffer: ValueId) {
        match self.buffer_origin(buffer) {
            BufOrigin::Mem(m) => {
                self.footprints[node].insert(Res::Mem(m.index()));
            }
            BufOrigin::Host => {
                self.footprints[node].insert(Res::HostMem);
            }
            BufOrigin::Unknown => self.opaque[node] = true,
        }
    }

    fn touch_conn(&mut self, node: usize, conn: Option<ValueId>) {
        let Some(c) = conn else { return };
        match self.resolve_def(c) {
            Some(def)
                if self
                    .op_checked(def)
                    .is_some_and(|d| d.name == "equeue.create_connection") =>
            {
                self.footprints[node].insert(Res::Conn(def.index()));
            }
            _ => self.opaque[node] = true,
        }
    }

    // ---- purity recording ------------------------------------------------

    /// Marks every enclosing launch site impure.
    fn mark_impure(&mut self) {
        for &i in &self.stack {
            self.purity[i].impure = true;
        }
    }

    /// Requires `node` to share the group of every enclosing launch.
    fn constrain_node(&mut self, node: usize) {
        for &i in &self.stack {
            self.purity[i].node_constraints.push(node);
        }
    }

    /// Requires the memory created at `mem_op` to belong to the group of
    /// every enclosing launch.
    fn constrain_mem(&mut self, mem_op: usize) {
        for &i in &self.stack {
            self.purity[i].mem_constraints.push(mem_op);
        }
    }

    /// Requires a buffer operand's backing memory to belong to the group
    /// of every enclosing launch (linalg kernels mutate buffer state
    /// without a `ConflictPass` footprint entry).
    fn constrain_buffer(&mut self, buffer: ValueId) {
        if self.stack.is_empty() {
            return;
        }
        match self.buffer_origin(buffer) {
            BufOrigin::Mem(m) => self.constrain_mem(m.index()),
            BufOrigin::Host | BufOrigin::Unknown => self.mark_impure(),
        }
    }

    /// Records a footprint-free memory mutation (linalg kernel operand or
    /// dealloc) by `owner`, for the cross-group invasion check.
    fn note_silent_use(&mut self, owner: usize, buffer: ValueId) {
        match self.buffer_origin(buffer) {
            BufOrigin::Mem(m) => self.silent_mem_uses.push((m.index(), owner)),
            // Host memory: the host's group is never offloadable anyway.
            BufOrigin::Host => {}
            BufOrigin::Unknown => self.silent_unresolved = true,
        }
    }

    /// Walks `block` attributing resource uses to `owner` exactly like
    /// `ConflictPass`, while collecting the purity constraints of every
    /// enclosing launch site.
    fn visit_block(&mut self, block: BlockId, owner: usize, depth: usize) {
        if depth > MAX_DEPTH || block.index() >= self.module.num_blocks() {
            return;
        }
        let ops = self.module.block(block).ops.clone();
        for op in ops {
            let Some(data) = self.op_checked(op) else {
                continue;
            };
            match data.name.as_str() {
                "equeue.launch" => {
                    let Ok(lv) = launch_view(self.module, op) else {
                        self.unresolved = true;
                        self.mark_impure();
                        continue;
                    };
                    let target = self
                        .resolve_def(lv.proc)
                        .and_then(|d| self.node_of_proc.get(&d.index()).copied());
                    match target {
                        Some(node) => {
                            self.constrain_node(node);
                            let idx = self.purity.len();
                            self.purity.push(LaunchPurity {
                                op: op.index(),
                                target_node: node,
                                impure: false,
                                node_constraints: Vec::new(),
                                mem_constraints: Vec::new(),
                            });
                            self.stack.push(idx);
                            self.visit_block(lv.body, node, depth + 1);
                            self.stack.pop();
                            // A nested launch's constraints also bind every
                            // enclosing site: fold them outward.
                            if !self.stack.is_empty() {
                                let LaunchPurity {
                                    impure,
                                    node_constraints,
                                    mem_constraints,
                                    ..
                                } = &self.purity[idx];
                                let (imp, nc, mc) =
                                    (*impure, node_constraints.clone(), mem_constraints.clone());
                                if imp {
                                    self.mark_impure();
                                }
                                for n in nc {
                                    self.constrain_node(n);
                                }
                                for m in mc {
                                    self.constrain_mem(m);
                                }
                            }
                        }
                        None => {
                            self.unresolved = true;
                            self.mark_impure();
                            // Still walk the body (attributed to host) so
                            // nested launches get their own attribution.
                            self.visit_block(lv.body, 0, depth + 1);
                        }
                    }
                }
                "equeue.memcpy" => {
                    if let Ok(mv) = memcpy_view(self.module, op) {
                        let node = self
                            .resolve_def(mv.dma)
                            .and_then(|d| self.node_of_proc.get(&d.index()).copied());
                        match node {
                            Some(nd) => {
                                self.constrain_node(nd);
                                self.touch_buffer(nd, mv.src);
                                self.touch_buffer(nd, mv.dst);
                                self.touch_conn(nd, mv.conn);
                            }
                            None => {
                                self.unresolved = true;
                                self.mark_impure();
                            }
                        }
                    } else {
                        self.unresolved = true;
                        self.mark_impure();
                    }
                }
                "equeue.read" => {
                    if let Ok(rv) = read_view(self.module, op) {
                        self.touch_buffer(owner, rv.buffer);
                        self.touch_conn(owner, rv.conn);
                    } else {
                        self.opaque[owner] = true;
                    }
                }
                "equeue.write" => {
                    if let Ok(wv) = write_view(self.module, op) {
                        self.touch_buffer(owner, wv.buffer);
                        self.touch_conn(owner, wv.conn);
                    } else {
                        self.opaque[owner] = true;
                    }
                }
                "affine.load" => {
                    if let Some(&buf) = data.operands.first() {
                        self.touch_buffer(owner, buf);
                    }
                }
                "affine.store" => {
                    if let Some(&buf) = data.operands.get(1) {
                        self.touch_buffer(owner, buf);
                    }
                }
                "equeue.dealloc" | "memref.dealloc" => {
                    // Dealloc inside a shard would permute buffer-id reuse;
                    // dealloc of a group's buffer from *outside* the group
                    // is a footprint-free mutation the merge cannot replay.
                    let buf = data.operands.first().copied();
                    self.mark_impure();
                    match buf {
                        Some(b) => self.note_silent_use(owner, b),
                        None => self.silent_unresolved = true,
                    }
                }
                // ---- purity-only cases (no ConflictPass footprint) ----
                "equeue.alloc"
                | "memref.alloc"
                | "equeue.create_proc"
                | "equeue.create_mem"
                | "equeue.create_dma"
                | "equeue.create_comp"
                | "equeue.add_comp"
                | "equeue.get_comp"
                | "equeue.create_connection" => {
                    // Allocation, deallocation, and machine elaboration
                    // inside a shard would permute the global buffer- and
                    // component-id assignment order relative to the
                    // sequential interleaving (ids are observable in the
                    // report's buffer dump): not offloadable.
                    self.mark_impure();
                }
                "linalg.matmul" | "linalg.conv2d" => {
                    let bufs: Vec<Option<ValueId>> =
                        (0..3).map(|i| data.operands.get(i).copied()).collect();
                    for buf in bufs {
                        match buf {
                            Some(b) => {
                                self.constrain_buffer(b);
                                self.note_silent_use(owner, b);
                            }
                            None => {
                                self.mark_impure();
                                self.silent_unresolved = true;
                            }
                        }
                    }
                }
                "linalg.fill" => {
                    let buf = data.operands.get(1).copied();
                    match buf {
                        Some(b) => {
                            self.constrain_buffer(b);
                            self.note_silent_use(owner, b);
                        }
                        None => {
                            self.mark_impure();
                            self.silent_unresolved = true;
                        }
                    }
                }
                _ => {
                    // Descend into non-launch regions (loops) with the same
                    // owner.
                    let regions = data.regions.clone();
                    for region in regions {
                        if region.index() >= self.module.num_regions() {
                            continue;
                        }
                        let blocks = self.module.region(region).blocks.clone();
                        for b in blocks {
                            self.visit_block(b, owner, depth + 1);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Plan;
    use crate::library::SimLibrary;
    use equeue_dialect::{kinds, AffineBuilder, ArithBuilder, EqueueBuilder};
    use equeue_ir::{Module, OpBuilder, Type};

    /// Two processors with private SRAMs running disjoint launch trees.
    fn two_tree_module() -> Module {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let mut dones = vec![];
        for _ in 0..2 {
            let pe = b.create_proc(kinds::ARM_R5);
            let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
            let buf = b.alloc(mem, &[64], Type::I32);
            let l = b.launch(start, pe, &[buf], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                let (_, bi, i) = ib.affine_for(0, 8, 1);
                {
                    let mut kb = OpBuilder::at_end(ib.module_mut(), bi);
                    let v = kb.affine_load(l.body_args[0], vec![i]);
                    let w = kb.addi(v, v);
                    kb.affine_store(w, l.body_args[0], vec![i]);
                    kb.affine_yield();
                }
                let mut ib = OpBuilder::at_end(&mut m, l.body);
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        b.await_all(dones);
        m
    }

    #[test]
    fn independent_trees_are_separate_groups_and_pure() {
        let m = two_tree_module();
        let plan = Plan::build(&m, &SimLibrary::standard());
        let p = &plan.partition;
        // host + two singleton proc groups.
        assert_eq!(p.groups().len(), 3);
        assert_eq!(p.num_nodes(), 3);
        assert!(!p.degraded());
        // Both launch sites offloadable, each to its own (non-host) group.
        assert_eq!(p.pure_launch_count(), 2);
    }

    #[test]
    fn shared_memory_merges_groups() {
        // Same shape, but both trees store into one shared SRAM.
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let mem = b.create_mem(kinds::SRAM, &[128], 32, 4);
        let buf = b.alloc(mem, &[64], Type::I32);
        let mut dones = vec![];
        for _ in 0..2 {
            let pe = b.create_proc(kinds::ARM_R5);
            let l = b.launch(start, pe, &[buf], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                let (_, bi, i) = ib.affine_for(0, 8, 1);
                {
                    let mut kb = OpBuilder::at_end(ib.module_mut(), bi);
                    let v = kb.affine_load(l.body_args[0], vec![i]);
                    kb.affine_store(v, l.body_args[0], vec![i]);
                    kb.affine_yield();
                }
                let mut ib = OpBuilder::at_end(&mut m, l.body);
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        b.await_all(dones);

        let plan = Plan::build(&m, &SimLibrary::standard());
        let p = &plan.partition;
        // host alone, both procs fused by the shared SRAM.
        assert_eq!(p.groups().len(), 2);
        // Still pure: each tree stays inside the (shared) non-host group.
        assert_eq!(p.pure_launch_count(), 2);
    }
}
