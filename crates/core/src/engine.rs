//! The generic timed discrete-event simulation engine (§IV).
//!
//! The engine executes an EQueue program directly. It follows the paper's
//! four-stage loop, realised as an event-driven scheduler:
//!
//! 1. **Set up entry** — every processor holds at most one active *frame*
//!    (an executing launch block) plus a FIFO *event queue* of pending
//!    `launch`/`memcpy` events.
//! 2. **Check event queue** — when a processor is woken, the head of its
//!    queue is issued if (and only if) its dependency signal has resolved.
//! 3. **Schedule operation** — interpreting an op inside a frame queries
//!    the component models (processor profiles, memory behaviours,
//!    connection bandwidth) and *reserves* time on each device's schedule
//!    queue; contention shows up as stalls.
//! 4. **Finish operation** — completion times resolve dependency signals,
//!    which cascade through `control_and`/`control_or` combinators and wake
//!    any processors blocked in `await` or at their queue head.
//!
//! The engine is also a *hybrid-dialect interpreter* (Fig. 1): `linalg`
//! ops execute analytically, `affine` loops execute iteration by iteration,
//! and `arith` ops compute real values — so one engine simulates a program
//! at every lowering stage.
//!
//! # Hot-path design: the layout prepass
//!
//! Before the clock starts, a one-shot **layout prepass** ([`Plan::build`])
//! compiles the module into an interpreter-friendly form, in the spirit of
//! compiled-simulation systems (CVC, GSIM): specialise data layout and
//! decode work *once*, not once per event.
//!
//! * Every SSA value is numbered into a **dense slot** within its *frame
//!   scope* (the innermost enclosing `equeue.launch` body, or the top
//!   region). A running frame's environment is a `Vec<Option<SimValue>>`
//!   indexed by slot — no hashing on any value read or write.
//! * Every op is pre-decoded into an [`OpCode`]: operand/result slots,
//!   parsed attribute views (`launch`/`memcpy`/`read`/`write` segments,
//!   loop bounds, constants, external-op cycle counts) — so the inner loop
//!   dispatches on a plain enum and never touches strings or attribute
//!   maps. Ops that fail to decode become [`OpCode::Invalid`] and only
//!   error if actually executed, preserving the lazy semantics of the
//!   original interpreter.
//! * Each `equeue.launch` gets a pre-computed **capture map**: exactly the
//!   values its body (transitively) references, as parent-slot → child-slot
//!   pairs. Spawning an event copies just those — with copy-on-write
//!   tensors ([`crate::TensorData`]), each copy is a pointer bump.

use crate::error::{LimitExceeded, LimitKind, Progress};
use crate::interp::{apply_binary, apply_cmpi, conv2d_int, matmul_int, BinOp};
use crate::library::{MemSpec, SimLibrary};
use crate::machine::{
    AccessKind, Component, ComponentKind, Composite, Connection, Machine, Memory, ProcProfile,
    Processor, RegisterBehavior,
};
use crate::profile::SimReport;
use crate::sharded::{append_signal_suffix, remap_value, InFlight, ParState, ShardOut, Stashed};
use crate::signal::{SignalState, SignalTable};
use crate::snapshot::{
    err as snap_err, CompKindSnap, CompSnap, ConnSnap, MachineSnap, MemSnap, ModuleFingerprint,
    ProcSnap, ProfileSnap, Snapshot,
};
use crate::trace::{Trace, TraceCat};
use crate::value::{BufId, CompId, SignalId, SimValue, Tensor, TensorData};
pub use crate::{CancelToken, RunLimits, SimError};
use equeue_dialect::{
    conv2d_dims, launch_view, memcpy_view, read_view, write_view, ConnKind, ConvDims,
};
use equeue_ir::{AttrMap, BlockId, Module, OpId, RegionId, Type, ValueId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

/// Scheduler wakes per epoch: the cadence at which the engine polls the
/// cancel token and the wall-clock deadline (a power of two, so the check is
/// a mask). Cancellation latency is bounded by one epoch.
pub(crate) const WAKE_EPOCH: u64 = 1024;
/// Interpreted-op cadence for the same polls, bounding zero-time op bursts
/// (tight loops that never touch the scheduler heap).
pub(crate) const OP_EPOCH: u64 = 4096;

/// Which execution backend interprets launch bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Fused threaded-code execution (the default): static affine loop
    /// bodies are pre-compiled at [`Plan::build`] time into dispatch-free
    /// traces (see [`crate::fused`]); everything else — and every loop the
    /// trace builder declines — runs on the interpreter. Counters
    /// (cycles/events/ops) are bit-identical to [`Backend::Interp`].
    /// Traces only engage when tracing is off; a trace-enabled run records
    /// per-op events and therefore interprets op by op.
    #[default]
    Fused,
    /// Pure op-by-op interpretation — the escape hatch (`--backend interp`
    /// in the bench harness) and the reference for differential testing.
    Interp,
}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Record an operation-level Chrome trace (disable for large sweeps).
    /// When off, the engine skips all trace bookkeeping — no event
    /// allocation and no string formatting on the hot path.
    pub trace: bool,
    /// Resource budgets for this run (cycles, events, live tensor bytes,
    /// wall clock). Violations surface as [`SimError::Limit`].
    pub limits: RunLimits,
    /// Cooperative cancellation: when the token fires, the run stops within
    /// one epoch with [`SimError::Cancelled`] carrying partial statistics.
    pub cancel: Option<CancelToken>,
    /// Execution backend. [`Backend::Fused`] and [`Backend::Interp`]
    /// produce bit-identical cycles, events, ops, and buffer contents; they
    /// differ only in wall-clock speed.
    pub backend: Backend,
    /// Cycle boundary at which [`crate::CompiledModule::snapshot`] pauses
    /// the run and captures a [`crate::Snapshot`]: the engine stops before
    /// processing the first event at or after this cycle. Only consulted by
    /// `CompiledModule::snapshot` — [`simulate`], [`simulate_with`], and
    /// [`crate::CompiledModule::simulate`] ignore it, and
    /// [`crate::CompiledModule::resume`] ignores it too (a resumed run
    /// always runs to completion).
    pub snapshot_at: Option<u64>,
    /// Worker threads for intra-run parallelism over the ConflictPass
    /// partition (see `docs/parallel-engine.md`). `1` (the default) is
    /// exactly the sequential engine. Higher values let the engine offload
    /// eligible independent launch groups to worker threads; counters
    /// (cycles, events, ops, buffers, traffic) stay bit-identical at any
    /// value. `0` is treated as `1`.
    pub threads: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            trace: true,
            limits: RunLimits::default(),
            cancel: None,
            backend: Backend::default(),
            snapshot_at: None,
            threads: 1,
        }
    }
}

/// Simulates `module` with the standard library and default options.
///
/// # Errors
///
/// See [`SimError`].
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder};
/// use equeue_dialect::{EqueueBuilder, kinds};
/// use equeue_core::simulate;
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let pe = b.create_proc(kinds::MAC);
/// let start = b.control_start();
/// let launch = b.launch(start, pe, &[], vec![]);
/// let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
/// body.ext_op("mac", vec![], vec![]);
/// body.ret(vec![]);
/// let done = launch.done;
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// b.await_all(vec![done]);
/// let report = simulate(&m)?;
/// assert_eq!(report.cycles, 1);
/// # Ok::<(), equeue_core::SimError>(())
/// ```
pub fn simulate(module: &Module) -> Result<SimReport, SimError> {
    simulate_with(module, &SimLibrary::standard(), &SimOptions::default())
}

/// Simulates `module` with an explicit library and options.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_with(
    module: &Module,
    library: &SimLibrary,
    options: &SimOptions,
) -> Result<SimReport, SimError> {
    let start = Instant::now();
    let plan = Plan::build(module, library);
    run_with_plan(module, &plan, library, options, start)
}

/// Executes a module against an already-built [`Plan`]: the compile-once /
/// run-many entry point behind [`crate::CompiledModule`]. All mutable state
/// lives in the per-run [`Engine`]; `module`, `plan`, and `library` are only
/// read, so concurrent runs over one plan are safe.
pub(crate) fn run_with_plan(
    module: &Module,
    plan: &Plan,
    library: &SimLibrary,
    options: &SimOptions,
    start: Instant,
) -> Result<SimReport, SimError> {
    let mut engine = Engine::new(module, plan, library, options, start);
    engine.run()?;
    Ok(build_report(&mut engine, start))
}

/// Assembles the final [`SimReport`] from a finished engine. Shared by the
/// plain and resumed entry points: counters are run totals (a resumed run's
/// counters continue from the snapshot), while `execution_time` covers only
/// the window since `start` (the resumed portion, for a resume).
fn build_report(engine: &mut Engine, start: Instant) -> SimReport {
    let mut report = SimReport {
        cycles: engine.horizon,
        execution_time: start.elapsed(),
        events_processed: engine.wakes,
        events_spawned: engine.events_spawned,
        peak_live_tensor_bytes: engine.peak_live_tensor_bytes,
        fused_trace_entries: engine.fused_trace_entries,
        shard_offloads: engine.shard_offloads,
        ops_interpreted: engine.ops_interpreted,
        trace: std::mem::take(&mut engine.trace),
        ..Default::default()
    };
    report.collect(&engine.machine);
    report
}

/// Whether a run may arm the intra-run parallel state (see
/// `docs/parallel-engine.md`). Parallelism is an opt-in speculation layer
/// over the sequential engine: it engages only when nothing observable
/// could diverge — no tracing (shards do not record trace events), no
/// cancellation (a mid-speculation cancel would report merged counters the
/// sequential run never reaches), stock limits (a custom `max_events`
/// budget interacts with merged-counter jumps: the limit error's `Progress`
/// payload would name a different wake count), and a partition that found
/// at least one offloadable launch.
fn par_eligible(plan: &Plan, options: &SimOptions) -> bool {
    let stock = RunLimits::default();
    options.threads > 1
        && !options.trace
        && options.cancel.is_none()
        && options.limits.max_cycles == stock.max_cycles
        && options.limits.max_events == stock.max_events
        && options.limits.max_live_tensor_bytes == stock.max_live_tensor_bytes
        && options.limits.wall_deadline.is_none()
        && !plan.partition.degraded()
        && plan.partition.pure_launch_count() > 0
}

/// Runs `module` up to `options.snapshot_at` and captures a [`Snapshot`]:
/// the entry point behind [`crate::CompiledModule::snapshot`].
///
/// The engine pauses before processing the first event at or after the cut
/// (under the fused backend, at the first trace exit at or after it). If the
/// program completes earlier, the snapshot records the terminal state and is
/// marked [`completed`](Snapshot::completed).
pub(crate) fn snapshot_with_plan(
    module: &Module,
    plan: &Plan,
    library: &SimLibrary,
    options: &SimOptions,
    start: Instant,
) -> Result<Snapshot, SimError> {
    let Some(cut) = options.snapshot_at else {
        return Err(snap_err(
            "SimOptions::snapshot_at is not set (nothing to capture)",
        ));
    };
    let mut engine = Engine::new(module, plan, library, options, start);
    engine.snapshot_at = Some(cut);
    engine.run()?;
    Ok(engine.capture(cut))
}

/// Restores a [`Snapshot`] and runs it to completion: the entry point behind
/// [`crate::CompiledModule::resume`]. `start` should be the resume time —
/// the wall-clock budget restarts from it, while cycle/event budgets
/// continue from the snapshot's counters.
pub(crate) fn resume_with_plan(
    module: &Module,
    plan: &Plan,
    library: &SimLibrary,
    options: &SimOptions,
    start: Instant,
    snap: &Snapshot,
) -> Result<SimReport, SimError> {
    let mut engine = Engine::from_snapshot(module, plan, library, options, start, snap)?;
    engine.run()?;
    Ok(build_report(&mut engine, start))
}

/// Validates every id a restored [`SimValue`] references, so a resumed
/// engine never indexes out of range on snapshot-supplied data.
fn check_value(
    v: &SimValue,
    nsig: usize,
    ncomp: usize,
    nbuf: usize,
    nconn: usize,
) -> Result<(), SimError> {
    let ok = match v {
        SimValue::Signal(s) => (s.0 as usize) < nsig,
        SimValue::Deferred { signal, .. } => (signal.0 as usize) < nsig,
        SimValue::Component(c) => (c.0 as usize) < ncomp,
        SimValue::Buffer(b) => (b.0 as usize) < nbuf,
        SimValue::Connection(c) => (c.0 as usize) < nconn,
        _ => true,
    };
    if ok {
        Ok(())
    } else {
        Err(snap_err("id out of range in a captured value"))
    }
}

/// Validates a restored queue event against the plan and arena sizes.
fn check_event(
    ev: &PendingEvent,
    plan: &Plan,
    nsig: usize,
    ncomp: usize,
    nbuf: usize,
    nconn: usize,
) -> Result<(), SimError> {
    if (ev.dep.0 as usize) >= nsig || (ev.done.0 as usize) >= nsig {
        return Err(snap_err("queued event references an unknown signal"));
    }
    match &ev.kind {
        EventKind::Launch { op, env } => {
            let Some(OpCode::Launch(info)) = plan.ops.get(op.index()).map(|o| &o.code) else {
                return Err(snap_err("queued launch does not name a launch op"));
            };
            if env.len() != info.frame_len {
                return Err(snap_err("queued launch environment has the wrong size"));
            }
            for v in env.iter().flatten() {
                check_value(v, nsig, ncomp, nbuf, nconn)?;
            }
        }
        EventKind::Memcpy { src, dst, conn } => {
            if (src.0 as usize) >= nbuf || (dst.0 as usize) >= nbuf {
                return Err(snap_err("queued memcpy references an unknown buffer"));
            }
            if conn.is_some_and(|c| (c.0 as usize) >= nconn) {
                return Err(snap_err("queued memcpy references an unknown connection"));
            }
        }
    }
    Ok(())
}

/// Validates a restored frame: scope layout, block stack, loop state, and
/// every captured value.
fn check_frame(
    frame: &Frame,
    module: &Module,
    plan: &Plan,
    nsig: usize,
    ncomp: usize,
    nbuf: usize,
    nconn: usize,
) -> Result<(), SimError> {
    let Some(layout) = plan.scopes.get(frame.scope as usize) else {
        return Err(snap_err("frame references an unknown scope"));
    };
    if frame.env.len() != layout.len {
        return Err(snap_err(
            "frame environment does not match its scope layout",
        ));
    }
    if (frame.done.0 as usize) >= nsig {
        return Err(snap_err("frame done-signal out of range"));
    }
    for v in frame.env.iter().flatten() {
        check_value(v, nsig, ncomp, nbuf, nconn)?;
    }
    for scope in &frame.stack {
        if scope.block.index() >= module.num_blocks() {
            return Err(snap_err("frame block out of range"));
        }
        if let Some(state) = &scope.looping {
            if state.ivs.iter().any(|&iv| (iv as usize) >= frame.env.len()) {
                return Err(snap_err("loop induction slot out of range"));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The layout prepass
// ---------------------------------------------------------------------------

/// A dense index into a frame's environment vector.
pub(crate) type Slot = u32;

/// Pre-decoded spawn recipe for one `equeue.launch`.
#[derive(Debug)]
pub(crate) struct LaunchInfo {
    /// Dependency signal operand.
    dep: Slot,
    /// Target processor operand.
    proc: Slot,
    /// The body's entry block.
    body: BlockId,
    /// The child frame scope.
    scope: u32,
    /// Environment size of the child frame.
    frame_len: usize,
    /// Free variables the body (transitively) references:
    /// `(parent slot, child slot)`. Values absent in the parent frame are
    /// skipped at spawn, like the original interpreter.
    captures: Vec<(Slot, Slot)>,
    /// Explicit capture operands bound to body block args:
    /// `(parent slot, child slot)`.
    arg_binds: Vec<(Slot, Slot)>,
}

/// One op, pre-decoded: operand/result slots plus parsed attributes.
/// Decoding happens once per module in [`Plan::build`]; execution dispatches
/// on this enum without touching op names or attribute maps.
#[derive(Debug)]
pub(crate) enum OpCode {
    /// Erased op, or an op unreachable by execution: skip.
    Erased,
    // ---- structure specification ----
    CreateProc {
        kind: String,
    },
    CreateMem {
        kind: String,
        shape: Vec<usize>,
        data_bits: u32,
        banks: u32,
        ports: Option<usize>,
        attrs: AttrMap,
    },
    CreateDma,
    CreateComp {
        names: Vec<String>,
        children: Vec<Slot>,
    },
    AddComp {
        names: Vec<String>,
        target: Slot,
        children: Vec<Slot>,
    },
    GetComp {
        target: Slot,
        child: String,
    },
    CreateConnection {
        kind: ConnKind,
        bandwidth: u64,
    },
    // ---- data movement ----
    Alloc {
        mem: Slot,
        shape: Vec<usize>,
        elem_bytes: usize,
        is_int: bool,
    },
    MemrefAlloc {
        shape: Vec<usize>,
        elem_bytes: usize,
        is_int: bool,
    },
    Dealloc {
        buf: Slot,
    },
    Read {
        buffer: Slot,
        indices: Vec<Slot>,
        conn: Option<Slot>,
    },
    Write {
        value: Slot,
        buffer: Slot,
        indices: Vec<Slot>,
        conn: Option<Slot>,
    },
    AffineLoad {
        buffer: Slot,
        indices: Vec<Slot>,
    },
    AffineStore {
        value: Slot,
        buffer: Slot,
        indices: Vec<Slot>,
    },
    // ---- events and control ----
    Memcpy {
        dep: Slot,
        src: Slot,
        dst: Slot,
        dma: Slot,
        conn: Option<Slot>,
    },
    Launch(Box<LaunchInfo>),
    ControlStart,
    Control {
        and: bool,
        deps: Vec<Slot>,
    },
    Await {
        deps: Vec<Slot>,
    },
    Return {
        values: Vec<Slot>,
    },
    /// `equeue.op`; `cycles` is `None` when the signature has no library
    /// implementation and no explicit override — an error *if executed*.
    ExtOp {
        sig: String,
        cycles: Option<u64>,
    },
    // ---- loops ----
    For {
        lower: i64,
        upper: i64,
        step: i64,
        body: BlockId,
        iv: Slot,
    },
    Parallel {
        lowers: Vec<i64>,
        uppers: Vec<i64>,
        steps: Vec<i64>,
        body: BlockId,
        ivs: Vec<Slot>,
    },
    Yield,
    // ---- linalg ----
    Conv2d {
        dims: ConvDims,
        ifmap: Slot,
        weights: Slot,
        ofmap: Slot,
    },
    Matmul {
        a: Slot,
        b: Slot,
        c: Slot,
    },
    Fill {
        scalar: Slot,
        buffer: Slot,
    },
    // ---- arith ----
    Constant(SimValue),
    Cmpi {
        pred: String,
        lhs: Slot,
        rhs: Slot,
    },
    Select {
        cond: Slot,
        on_true: Slot,
        on_false: Slot,
    },
    /// A binary `arith` op. `kind` is the pre-decoded operator for the
    /// scalar fast path; `None` means an op name `apply_binary` will
    /// reject (kept so the error fires at execution, like everything
    /// else). `name` feeds tracing, profile fallback, and the
    /// tensor/error slow path.
    Binary {
        kind: Option<BinOp>,
        name: String,
        lhs: Slot,
        rhs: Slot,
        index_typed: bool,
    },
    // ---- failures, deferred to execution time ----
    /// The op failed to decode (malformed views/attrs, or an operand with
    /// no materialisable definition). Raises [`SimError::Layout`] if
    /// executed.
    Invalid {
        op: String,
        msg: String,
    },
    /// An op name the engine does not model. Raises `Unsupported` if
    /// executed.
    Unsupported(String),
}

/// Pre-decoded form of one op.
#[derive(Debug)]
pub(crate) struct OpInfo {
    pub(crate) code: OpCode,
    /// Result slots, in result order.
    pub(crate) results: Vec<Slot>,
}

/// Value numbering of one frame scope.
#[derive(Debug)]
struct ScopeLayout {
    /// Environment length (number of slots).
    len: usize,
    /// Slot → value, for diagnostics only.
    values: Vec<ValueId>,
}

/// The prepass output: scope layouts plus a per-op side table. Immutable
/// once built — a plan can back any number of simulations, sequentially or
/// from several threads at once (see [`crate::CompiledModule`]).
#[derive(Debug)]
pub(crate) struct Plan {
    scopes: Vec<ScopeLayout>,
    /// Indexed by `OpId::index()`. Readable crate-wide so the prepass-facts
    /// view ([`crate::PrepassFacts`]) can walk the decoded ops.
    pub(crate) ops: Vec<OpInfo>,
    /// Fused loop traces, indexed by the loop *body*'s `BlockId::index()`;
    /// `None` for blocks that are not a fusible `affine.for` body. Built
    /// unconditionally (it is cheap and pure); whether a run consults it is
    /// decided per run by [`SimOptions::backend`].
    pub(crate) fused: Vec<Option<Box<crate::fused::FusedLoop>>>,
    /// Why each non-fused `affine.for` body declined trace formation, same
    /// indexing as `fused`. Diagnostics only — execution never reads it.
    pub(crate) fuse_declines: Vec<Option<crate::fused::FuseDecline>>,
    /// The compile-time conflict partition (independent groups + per-launch
    /// shard-purity verdicts) the parallel runtime keys off.
    pub(crate) partition: crate::partition::Partition,
}

/// Scope discovery scratch state.
struct ScopeTmp {
    root: RegionId,
    blocks: Vec<BlockId>,
    ops: Vec<OpId>,
    children: Vec<usize>,
    /// Values defined in the scope (block args + op results), in program
    /// order.
    defined: Vec<ValueId>,
    /// Operand occurrences (with duplicates).
    used: Vec<ValueId>,
}

impl Plan {
    /// The first structurally-invalid decoded op, if any: `(name, message)`.
    /// Used by [`crate::CompiledModule::compile`] to reject malformed
    /// modules eagerly; the lazy [`crate::simulate_with`] path never calls
    /// it.
    pub(crate) fn first_invalid(&self) -> Option<(&str, &str)> {
        self.ops.iter().find_map(|info| match &info.code {
            OpCode::Invalid { op, msg } => Some((op.as_str(), msg.as_str())),
            _ => None,
        })
    }

    /// The one-shot layout prepass. Infallible: malformed ops decode to
    /// [`OpCode::Invalid`] and only fail if executed. Linear in the module
    /// size (dense arrays indexed by value id, no per-event work).
    pub(crate) fn build(module: &Module, lib: &SimLibrary) -> Plan {
        // -- 1. Scope discovery: the top region plus every launch body.
        let mut tmp: Vec<ScopeTmp> = vec![ScopeTmp {
            root: module.top_region(),
            blocks: vec![],
            ops: vec![],
            children: vec![],
            defined: vec![],
            used: vec![],
        }];
        let mut scope_of_root: HashMap<RegionId, usize> = HashMap::new();
        scope_of_root.insert(module.top_region(), 0);
        let mut i = 0;
        while i < tmp.len() {
            let root = tmp[i].root;
            let (mut blocks, mut ops, mut child_regions) = (vec![], vec![], vec![]);
            collect_scope(module, root, &mut blocks, &mut ops, &mut child_regions);
            for r in child_regions {
                let idx = tmp.len();
                scope_of_root.insert(r, idx);
                tmp[i].children.push(idx);
                tmp.push(ScopeTmp {
                    root: r,
                    blocks: vec![],
                    ops: vec![],
                    children: vec![],
                    defined: vec![],
                    used: vec![],
                });
            }
            tmp[i].blocks = blocks;
            tmp[i].ops = ops;
            i += 1;
        }
        let n = tmp.len();

        // -- 2. Defined/used per scope. Every value is defined in at most
        // one scope; `def_scope` is a dense module-wide map of it.
        const NO_SCOPE: u32 = u32::MAX;
        let mut def_scope: Vec<u32> = vec![NO_SCOPE; module.num_values()];
        for (s, t) in tmp.iter_mut().enumerate() {
            for &b in &t.blocks {
                for &a in &module.block(b).args {
                    t.defined.push(a);
                    def_scope[a.index()] = s as u32;
                }
            }
            for &op in &t.ops {
                let data = module.op(op);
                for &r in &data.results {
                    t.defined.push(r);
                    def_scope[r.index()] = s as u32;
                }
                t.used.extend(data.operands.iter().copied());
            }
        }

        // -- 3. Free sets, bottom-up (children have higher indices): a
        // value is free in a scope if the scope — or any launch nested in
        // it — uses it without defining it. Free vars of children must get
        // slots here too, so the child's spawn can capture them from this
        // frame.
        let mut free: Vec<Vec<ValueId>> = vec![vec![]; n];
        for s in (0..n).rev() {
            let mut f: Vec<ValueId> = tmp[s]
                .used
                .iter()
                .copied()
                .filter(|v| def_scope[v.index()] != s as u32)
                .collect();
            for &c in &tmp[s].children {
                f.extend(free[c].iter().filter(|v| def_scope[v.index()] != s as u32));
            }
            f.sort_unstable();
            f.dedup();
            free[s] = f;
        }

        // -- 4. Slot assignment: defined ∪ free, ordered by ValueId for
        // determinism. The sorted layout doubles as the slot map (binary
        // search at decode time — no per-scope hash maps).
        let mut scopes: Vec<ScopeLayout> = Vec::with_capacity(n);
        for s in 0..n {
            let mut vals: Vec<ValueId> = Vec::with_capacity(tmp[s].defined.len() + free[s].len());
            vals.extend(tmp[s].defined.iter().copied());
            vals.extend(free[s].iter().copied());
            vals.sort_unstable();
            vals.dedup();
            scopes.push(ScopeLayout {
                len: vals.len(),
                values: vals,
            });
        }

        // -- 5. Op decode. Ops outside every scope (inside erased ops)
        // stay `Erased`: they can never execute.
        let mut ops: Vec<OpInfo> = (0..module.num_ops())
            .map(|_| OpInfo {
                code: OpCode::Erased,
                results: vec![],
            })
            .collect();
        for (s, t) in tmp.iter().enumerate() {
            for &op in &t.ops {
                ops[op.index()] = decode_op(module, lib, op, s, &scopes, &free, &scope_of_root);
            }
        }

        // -- 6. Fused loop traces: compile static affine loop bodies into
        // dispatch-free instruction tables (see `crate::fused`). Purely
        // derived from the decoded ops; loops the builder declines simply
        // have no table entry and run on the interpreter.
        let (fused, fuse_declines) = crate::fused::build_fused(module, &ops);

        // -- 7. Conflict partition: independent groups over procs/DMAs plus
        // per-launch shard-purity verdicts (see `crate::partition`).
        let partition = crate::partition::Partition::build(module, &ops);
        Plan {
            scopes,
            ops,
            fused,
            fuse_declines,
            partition,
        }
    }
}

/// Collects the blocks and ops of one frame scope: descends into nested
/// regions (loops) but **not** into launch bodies, which start scopes of
/// their own and are appended to `child_regions`.
fn collect_scope(
    module: &Module,
    region: RegionId,
    blocks: &mut Vec<BlockId>,
    ops: &mut Vec<OpId>,
    child_regions: &mut Vec<RegionId>,
) {
    for &b in &module.region(region).blocks {
        blocks.push(b);
        for &op in &module.block(b).ops {
            let data = module.op(op);
            if data.erased {
                continue;
            }
            ops.push(op);
            if data.name == "equeue.launch" && !data.regions.is_empty() {
                child_regions.push(data.regions[0]);
                for &r in &data.regions[1..] {
                    collect_scope(module, r, blocks, ops, child_regions);
                }
            } else {
                for &r in &data.regions {
                    collect_scope(module, r, blocks, ops, child_regions);
                }
            }
        }
    }
}

/// Decodes one op of scope `s` into its [`OpInfo`].
#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn decode_op(
    module: &Module,
    lib: &SimLibrary,
    op: OpId,
    s: usize,
    scopes: &[ScopeLayout],
    free: &[Vec<ValueId>],
    scope_of_root: &HashMap<RegionId, usize>,
) -> OpInfo {
    let data = module.op(op);
    // Slot of one value (binary search in the sorted layout); an operand
    // defined by nothing executable (e.g. a result of an erased op) has no
    // slot and poisons the decode.
    let slot = |v: ValueId| -> Result<Slot, String> {
        scopes[s]
            .values
            .binary_search(&v)
            .map(|i| i as Slot)
            .map_err(|_| format!("value %{v} has no materialisable definition"))
    };
    let slots_of =
        |vs: &[ValueId]| -> Result<Vec<Slot>, String> { vs.iter().map(|&v| slot(v)).collect() };
    // Checked accessors: a wrong-arity op must decode to `OpCode::Invalid`
    // (failing only if executed), never panic the prepass.
    let operand = |i: usize| -> Result<ValueId, String> {
        data.operands
            .get(i)
            .copied()
            .ok_or_else(|| format!("op '{}' missing operand {i}", data.name))
    };
    let operands_from = |i: usize| -> &[ValueId] { data.operands.get(i..).unwrap_or(&[]) };
    let result0 = || -> Result<ValueId, String> {
        data.results
            .first()
            .copied()
            .ok_or_else(|| format!("op '{}' missing its result", data.name))
    };
    let results: Vec<Slot> = match slots_of(&data.results) {
        Ok(r) => r,
        Err(e) => {
            return OpInfo {
                code: OpCode::Invalid {
                    op: data.name.clone(),
                    msg: e,
                },
                results: vec![],
            }
        }
    };

    let code = (|| -> Result<OpCode, String> {
        let attr_str = |name: &str| -> Result<String, String> {
            data.attrs
                .str(name)
                .map(str::to_string)
                .ok_or_else(|| format!("op '{}' missing attribute '{name}'", data.name))
        };
        Ok(match data.name.as_str() {
            "equeue.create_proc" => OpCode::CreateProc {
                kind: attr_str("kind")?,
            },
            "equeue.create_mem" => {
                let shape = data
                    .attrs
                    .shape("shape")
                    .ok_or("create_mem missing shape")?;
                OpCode::CreateMem {
                    kind: attr_str("kind")?,
                    shape,
                    data_bits: data.attrs.int("data_bits").unwrap_or(32) as u32,
                    banks: data.attrs.int("banks").unwrap_or(1).max(1) as u32,
                    ports: data.attrs.int("ports").map(|v| v.max(1) as usize),
                    attrs: data.attrs.clone(),
                }
            }
            "equeue.create_dma" => OpCode::CreateDma,
            "equeue.create_comp" | "equeue.add_comp" => {
                let names: Vec<String> = data
                    .attrs
                    .get("names")
                    .and_then(|a| a.as_str_array())
                    .map(|s| s.to_vec())
                    .ok_or_else(|| format!("{} missing names", data.name))?;
                if data.name == "equeue.create_comp" {
                    OpCode::CreateComp {
                        names,
                        children: slots_of(&data.operands)?,
                    }
                } else {
                    OpCode::AddComp {
                        names,
                        target: slot(operand(0)?)?,
                        children: slots_of(operands_from(1))?,
                    }
                }
            }
            "equeue.get_comp" => OpCode::GetComp {
                target: slot(operand(0)?)?,
                child: attr_str("name")?,
            },
            "equeue.create_connection" => {
                let kind_s = attr_str("kind")?;
                let kind = ConnKind::from_str(&kind_s)
                    .ok_or_else(|| format!("bad connection kind {kind_s}"))?;
                let bw = data.attrs.int("bandwidth").unwrap_or(0).max(0) as u64;
                OpCode::CreateConnection {
                    kind,
                    bandwidth: bw,
                }
            }
            "equeue.alloc" => {
                let rt = module.value_type(result0()?);
                let (shape, elem) = match rt {
                    Type::Buffer { shape, elem } => (shape.clone(), (**elem).clone()),
                    other => return Err(format!("alloc result must be a buffer, got {other}")),
                };
                OpCode::Alloc {
                    mem: slot(operand(0)?)?,
                    shape,
                    elem_bytes: elem.elem_byte_width().unwrap_or(4),
                    is_int: elem.is_integer(),
                }
            }
            "memref.alloc" => {
                let rt = module.value_type(result0()?);
                let (shape, elem) = match rt {
                    Type::MemRef { shape, elem } => (shape.clone(), (**elem).clone()),
                    other => return Err(format!("memref.alloc result {other}")),
                };
                OpCode::MemrefAlloc {
                    shape,
                    elem_bytes: elem.elem_byte_width().unwrap_or(4),
                    is_int: elem.is_integer(),
                }
            }
            "equeue.dealloc" | "memref.dealloc" => OpCode::Dealloc {
                buf: slot(operand(0)?)?,
            },
            "equeue.read" => {
                let view = read_view(module, op)?;
                OpCode::Read {
                    buffer: slot(view.buffer)?,
                    indices: slots_of(&view.indices)?,
                    conn: view.conn.map(slot).transpose()?,
                }
            }
            "equeue.write" => {
                let view = write_view(module, op)?;
                OpCode::Write {
                    value: slot(view.value)?,
                    buffer: slot(view.buffer)?,
                    indices: slots_of(&view.indices)?,
                    conn: view.conn.map(slot).transpose()?,
                }
            }
            "affine.load" => OpCode::AffineLoad {
                buffer: slot(operand(0)?)?,
                indices: slots_of(operands_from(1))?,
            },
            "affine.store" => OpCode::AffineStore {
                value: slot(operand(0)?)?,
                buffer: slot(operand(1)?)?,
                indices: slots_of(operands_from(2))?,
            },
            "equeue.memcpy" => {
                let view = memcpy_view(module, op)?;
                OpCode::Memcpy {
                    dep: slot(view.dep)?,
                    src: slot(view.src)?,
                    dst: slot(view.dst)?,
                    dma: slot(view.dma)?,
                    conn: view.conn.map(slot).transpose()?,
                }
            }
            "equeue.launch" => {
                let view = launch_view(module, op).map_err(|e| format!("{e} (launch op)"))?;
                let body_region = data.regions.first().ok_or("launch needs a body region")?;
                let child = *scope_of_root
                    .get(body_region)
                    .ok_or("launch body region is not a scope")?;
                let child_slot = |v: ValueId| -> Result<Slot, String> {
                    scopes[child]
                        .values
                        .binary_search(&v)
                        .map(|i| i as Slot)
                        .map_err(|_| format!("value %{v} missing from launch scope"))
                };
                // Free-variable capture map: parent slot → child slot.
                let captures: Vec<(Slot, Slot)> = free[child]
                    .iter()
                    .map(|&v| Ok((slot(v)?, child_slot(v)?)))
                    .collect::<Result<_, String>>()?;
                // Explicit captures bound to body block args.
                let args = &module.block(view.body).args;
                let arg_binds: Vec<(Slot, Slot)> = view
                    .captures
                    .iter()
                    .zip(args.iter())
                    .map(|(&cap, &arg)| Ok((slot(cap)?, child_slot(arg)?)))
                    .collect::<Result<_, String>>()?;
                OpCode::Launch(Box::new(LaunchInfo {
                    dep: slot(view.dep)?,
                    proc: slot(view.proc)?,
                    body: view.body,
                    scope: child as u32,
                    frame_len: scopes[child].len,
                    captures,
                    arg_binds,
                }))
            }
            "equeue.control_start" => OpCode::ControlStart,
            "equeue.control_and" | "equeue.control_or" => OpCode::Control {
                and: data.name == "equeue.control_and",
                deps: slots_of(&data.operands)?,
            },
            "equeue.await" => OpCode::Await {
                deps: slots_of(&data.operands)?,
            },
            "equeue.return" => OpCode::Return {
                values: slots_of(&data.operands)?,
            },
            "equeue.op" => {
                let sig = attr_str("signature")?;
                // An explicit `cycles` attribute overrides the library, so
                // generators can emit parameterised macro-ops; otherwise
                // the signature must be implemented in the simulator
                // library (§III-E). Unknown signatures only fail when
                // executed.
                let cycles = match data.attrs.int("cycles") {
                    Some(c) => Some(c.max(0) as u64),
                    None => lib.ext_op(&sig).map(|e| e.cycles),
                };
                OpCode::ExtOp { sig, cycles }
            }
            "affine.for" => {
                let region = *data.regions.first().ok_or("affine.for needs a region")?;
                let body = *module
                    .region(region)
                    .blocks
                    .first()
                    .ok_or("affine.for empty region")?;
                let iv = *module
                    .block(body)
                    .args
                    .first()
                    .ok_or("affine.for body needs an iv")?;
                let step = data.attrs.int("step").unwrap_or(1);
                // A non-positive step can never reach the upper bound; it
                // would spin the interpreter forever, so reject it here.
                if step <= 0 {
                    return Err(format!("affine.for step must be positive, got {step}"));
                }
                OpCode::For {
                    lower: data.attrs.int("lower").unwrap_or(0),
                    upper: data.attrs.int("upper").unwrap_or(0),
                    step,
                    body,
                    iv: slot(iv)?,
                }
            }
            "affine.parallel" => {
                let region = *data
                    .regions
                    .first()
                    .ok_or("affine.parallel needs a region")?;
                let body = *module
                    .region(region)
                    .blocks
                    .first()
                    .ok_or("affine.parallel empty region")?;
                let lowers = data.attrs.int_array("lowers").unwrap_or(&[]).to_vec();
                let uppers = data.attrs.int_array("uppers").unwrap_or(&[]).to_vec();
                let steps = data.attrs.int_array("steps").unwrap_or(&[]).to_vec();
                let ivs = slots_of(&module.block(body).args.clone())?;
                // Mismatched bound arrays would index out of range during
                // iteration; non-positive steps would never terminate.
                if lowers.len() != uppers.len()
                    || lowers.len() != steps.len()
                    || lowers.len() != ivs.len()
                {
                    return Err(format!(
                        "affine.parallel bounds mismatch: {} lowers, {} uppers, {} steps, {} ivs",
                        lowers.len(),
                        uppers.len(),
                        steps.len(),
                        ivs.len()
                    ));
                }
                if let Some(s) = steps.iter().find(|&&s| s <= 0) {
                    return Err(format!("affine.parallel step must be positive, got {s}"));
                }
                OpCode::Parallel {
                    lowers,
                    uppers,
                    steps,
                    body,
                    ivs,
                }
            }
            "affine.yield" => OpCode::Yield,
            "linalg.conv2d" => OpCode::Conv2d {
                dims: conv2d_dims(module, op)?,
                ifmap: slot(operand(0)?)?,
                weights: slot(operand(1)?)?,
                ofmap: slot(operand(2)?)?,
            },
            "linalg.matmul" => OpCode::Matmul {
                a: slot(operand(0)?)?,
                b: slot(operand(1)?)?,
                c: slot(operand(2)?)?,
            },
            "linalg.fill" => OpCode::Fill {
                scalar: slot(operand(0)?)?,
                buffer: slot(operand(1)?)?,
            },
            "arith.constant" => {
                let rt = module.value_type(result0()?);
                OpCode::Constant(if rt.is_float() {
                    SimValue::Float(data.attrs.float("value").unwrap_or(0.0))
                } else {
                    SimValue::Int(data.attrs.int("value").unwrap_or(0))
                })
            }
            "arith.cmpi" => OpCode::Cmpi {
                pred: attr_str("predicate")?,
                lhs: slot(operand(0)?)?,
                rhs: slot(operand(1)?)?,
            },
            "arith.select" => OpCode::Select {
                cond: slot(operand(0)?)?,
                on_true: slot(operand(1)?)?,
                on_false: slot(operand(2)?)?,
            },
            name if name.starts_with("arith.") => {
                if data.operands.len() != 2 {
                    return Err(format!("'{name}' needs exactly two operands"));
                }
                // Index-typed arithmetic is address generation, which the
                // memory pipeline absorbs; it costs no datapath cycles.
                let index_typed = *module.value_type(result0()?) == Type::Index;
                OpCode::Binary {
                    kind: BinOp::from_name(name),
                    name: name.to_string(),
                    lhs: slot(operand(0)?)?,
                    rhs: slot(operand(1)?)?,
                    index_typed,
                }
            }
            other => OpCode::Unsupported(other.to_string()),
        })
    })();

    match code {
        Ok(code) => OpInfo { code, results },
        Err(e) => OpInfo {
            code: OpCode::Invalid {
                op: data.name.clone(),
                msg: e,
            },
            results,
        },
    }
}

// ---------------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------------

/// A pending event in a processor's event queue. `pub(crate)` + `Clone` so
/// the snapshot codec can serialise and restore queues verbatim.
#[derive(Debug, Clone)]
pub(crate) enum EventKind {
    Launch {
        op: OpId,
        env: Vec<Option<SimValue>>,
    },
    Memcpy {
        src: BufId,
        dst: BufId,
        conn: Option<crate::value::ConnId>,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct PendingEvent {
    pub(crate) kind: EventKind,
    pub(crate) dep: SignalId,
    pub(crate) done: SignalId,
}

/// Loop bookkeeping for `affine.for` / `affine.parallel` scopes.
#[derive(Debug, Clone)]
pub(crate) struct LoopState {
    pub(crate) ivs: Vec<Slot>,
    pub(crate) lowers: Vec<i64>,
    pub(crate) uppers: Vec<i64>,
    pub(crate) steps: Vec<i64>,
    pub(crate) current: Vec<i64>,
}

impl LoopState {
    /// Advances the innermost dimension; returns `false` when exhausted.
    /// Saturating: bounds near `i64::MAX` terminate instead of overflowing.
    fn advance(&mut self) -> bool {
        let mut d = self.current.len();
        loop {
            if d == 0 {
                return false;
            }
            d -= 1;
            self.current[d] = self.current[d].saturating_add(self.steps[d]);
            if self.current[d] < self.uppers[d] {
                for later in d + 1..self.current.len() {
                    self.current[later] = self.lowers[later];
                }
                return true;
            }
        }
    }

    fn live(&self) -> bool {
        self.current.iter().zip(&self.uppers).all(|(c, u)| c < u)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Scope {
    pub(crate) block: BlockId,
    pub(crate) idx: usize,
    pub(crate) looping: Option<LoopState>,
}

/// An executing launch body: a dense slot-indexed environment plus a block
/// stack. `scope` names the frame's [`ScopeLayout`] (diagnostics).
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub(crate) env: Vec<Option<SimValue>>,
    pub(crate) stack: Vec<Scope>,
    pub(crate) done: SignalId,
    pub(crate) scope: u32,
}

/// Cycle counts for the hottest op classes, resolved from a
/// [`ProcProfile`] once at processor creation so the inner loop never
/// hashes op-name strings.
#[derive(Debug, Clone)]
pub(crate) struct HotCycles {
    pub(crate) load: u64,
    pub(crate) store: u64,
    pub(crate) cmpi: u64,
    pub(crate) select: u64,
    pub(crate) arith: [u64; BinOp::COUNT],
}

impl HotCycles {
    pub(crate) fn from_profile(p: &ProcProfile) -> Self {
        let mut arith = [0u64; BinOp::COUNT];
        for (i, op) in BinOp::ALL.into_iter().enumerate() {
            arith[i] = p.cycles(op.name());
        }
        HotCycles {
            load: p.cycles("affine.load"),
            store: p.cycles("affine.store"),
            cmpi: p.cycles("arith.cmpi"),
            select: p.cycles("arith.select"),
            arith,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct ProcRuntime {
    pub(crate) comp: CompId,
    pub(crate) queue: VecDeque<PendingEvent>,
    pub(crate) frame: Option<Frame>,
    pub(crate) clock: u64,
    pub(crate) profile: ProcProfile,
    pub(crate) hot: HotCycles,
}

/// A small inline buffer for buffer subscripts (tensor ranks are tiny);
/// spills to the heap only past 8 dimensions.
#[derive(Debug, Default)]
struct IndexBuf {
    inline: [usize; 8],
    len: usize,
    spill: Vec<usize>,
}

impl IndexBuf {
    fn push(&mut self, v: usize) {
        if self.len < self.inline.len() {
            self.inline[self.len] = v;
            self.len += 1;
        } else {
            if self.spill.is_empty() {
                self.spill.extend_from_slice(&self.inline[..self.len]);
            }
            self.spill.push(v);
            self.len += 1;
        }
    }

    fn as_slice(&self) -> &[usize] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }
}

/// What happened when a frame stepped one op.
pub(crate) enum Step {
    /// Keep stepping (zero time passed).
    Continue,
    /// Time passed; yield to the scheduler until `clock`.
    Yield,
    /// The frame is blocked on a signal (already subscribed).
    Blocked,
    /// The frame completed.
    Finished,
}

pub(crate) struct Engine<'m> {
    module: &'m Module,
    plan: &'m Plan,
    lib: &'m SimLibrary,
    pub(crate) options: SimOptions,
    pub(crate) machine: Machine,
    signals: SignalTable,
    /// Per-signal waiter lists: processors whose queue head waits on the
    /// signal, or whose frame is blocked in an `await` on it. Indexed by
    /// signal id (grown lazily). Not serialised — rebuilt from the proc
    /// states on snapshot resume (`rebuild_waiters`).
    waiters: Vec<Vec<usize>>,
    pub(crate) procs: Vec<ProcRuntime>,
    proc_of_comp: HashMap<CompId, usize>,
    /// Pending wakes `(time, seq, proc, born)`. Ordering is `(time, seq)`
    /// — `seq` is unique, so the trailing fields never tie-break. `born`
    /// is the engine time at which the wake was *scheduled*: pure
    /// metadata the group-sharded merge uses to order same-time entries
    /// against a shard's resolution point (see `par_settle`). It is not
    /// serialised into snapshots; resumed runs synthesise `born = time`,
    /// which is harmless because they are always sequential.
    pub(crate) heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    seq: u64,
    pub(crate) now: u64,
    pub(crate) horizon: u64,
    pub(crate) wakes: u64,
    pub(crate) ops_interpreted: u64,
    /// Events pushed onto processor queues (launches + memcpys issued).
    /// Reported so static spawn-count estimates can be validated against
    /// actual runs; never consulted by limits or scheduling.
    events_spawned: u64,
    /// Bytes of simultaneously-live tensor storage (for
    /// `max_live_tensor_bytes`).
    live_tensor_bytes: u64,
    /// High-water mark of `live_tensor_bytes` over the run (reported; the
    /// static resource-estimation pass upper-bounds it).
    peak_live_tensor_bytes: u64,
    /// Successful fused-trace entries (the fusibility report's runtime
    /// ground truth; `0` under `Backend::Interp`).
    fused_trace_entries: u64,
    /// Loop-bookkeeping iterations that executed no op (empty bodies);
    /// bounded alongside `max_events` so degenerate loops cannot spin the
    /// interpreter forever. Not reported — purely a safety counter.
    pub(crate) idle_steps: u64,
    /// Absolute wall-clock deadline (run start + `wall_deadline`).
    pub(crate) deadline: Option<Instant>,
    trace: Trace,
    host_mem: Option<CompId>,
    /// Whether fused loop traces may run this run (backend is
    /// [`Backend::Fused`] and tracing is off).
    fused_on: bool,
    /// Per-run fused-trace scratch (registers, costs, skip set).
    pub(crate) fused: crate::fused::FusedScratch,
    /// When armed (`Some(cut)`), the scheduler pauses before processing the
    /// first event at or after cycle `cut` so [`Engine::capture`] can
    /// serialise the state. Armed only by the snapshot entry point — plain
    /// runs never set it. Read by the fused backend to cap trace barriers.
    pub(crate) snapshot_at: Option<u64>,
    /// Set when [`Engine::run`] returned because it reached `snapshot_at`
    /// (as opposed to draining the heap / completing the program).
    snapshot_due: bool,
    /// Intra-run parallel state. `None` means this run is sequential —
    /// the default, and the only mode for traced, cancellable,
    /// custom-limit, snapshotting, or resumed runs (see `par_eligible`).
    par: Option<crate::sharded::ParState>,
    /// Runtime component id → partition group. Maintained only while
    /// `par` is armed; bound when the component's create op executes.
    comp_group: HashMap<u32, u32>,
    /// Runtime connection id → partition group (same lifecycle).
    conn_group: HashMap<u32, u32>,
    /// Shard engines watch their root done signal: `watch_pop` records the
    /// engine time at which it resolved — the resolution's position in the
    /// global pop order, which the merge's speculation window needs (the
    /// resolve *time* only bounds the timestamp the signal carries) — and
    /// `watch_born` the `ctx_born` of the resolving context, the same
    /// position's tie-breaker at equal times.
    watch: Option<SignalId>,
    watch_pop: Option<u64>,
    watch_born: Option<u64>,
    /// The `born` of the wake currently being processed: the engine time
    /// at which the popped entry (or its inline-wake continuation) was
    /// scheduled. Together `(now, ctx_born)` locate the current context
    /// in the sequential pop order precisely enough to order it against
    /// a shard's `(rp, rb)` resolution point at equal times.
    pub(crate) ctx_born: u64,
    /// Shard offloads started (reported; see [`SimReport::shard_offloads`]).
    shard_offloads: u64,
}

impl<'m> Engine<'m> {
    fn new(
        module: &'m Module,
        plan: &'m Plan,
        lib: &'m SimLibrary,
        options: &SimOptions,
        start: Instant,
    ) -> Self {
        let deadline = options.limits.wall_deadline.map(|d| start + d);
        let par = par_eligible(plan, options).then(|| ParState::new(options.threads));
        let mut engine = Engine {
            module,
            plan,
            lib,
            options: options.clone(),
            machine: Machine::new(),
            signals: SignalTable::new(),
            waiters: vec![],
            procs: vec![],
            proc_of_comp: HashMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            horizon: 0,
            wakes: 0,
            ops_interpreted: 0,
            events_spawned: 0,
            live_tensor_bytes: 0,
            peak_live_tensor_bytes: 0,
            fused_trace_entries: 0,
            idle_steps: 0,
            deadline,
            trace: if options.trace {
                Trace::new()
            } else {
                Trace::disabled()
            },
            host_mem: None,
            // A trace-enabled run records per-op events, so it interprets
            // op by op; fused traces engage only with tracing off.
            fused_on: options.backend == Backend::Fused && !options.trace,
            fused: crate::fused::FusedScratch::new(plan.fused.len()),
            snapshot_at: None,
            snapshot_due: false,
            par,
            comp_group: HashMap::new(),
            conn_group: HashMap::new(),
            watch: None,
            watch_pop: None,
            watch_born: None,
            ctx_born: 0,
            shard_offloads: 0,
        };
        // The implicit host processor interprets the top block at time 0;
        // all its ops are free (orchestration, not datapath).
        let host = engine
            .machine
            .add_processor("Host", ProcProfile::uniform(0));
        let host_idx = engine.add_proc_runtime(host, ProcProfile::uniform(0));
        let done = engine.signals.fresh();
        engine.procs[host_idx].frame = Some(Frame {
            env: vec![None; plan.scopes[0].len],
            stack: vec![Scope {
                block: module.top_block(),
                idx: 0,
                looping: None,
            }],
            done,
            scope: 0,
        });
        engine.schedule(0, host_idx);
        engine
    }

    fn add_proc_runtime(&mut self, comp: CompId, profile: ProcProfile) -> usize {
        let idx = self.procs.len();
        self.procs.push(ProcRuntime {
            comp,
            queue: VecDeque::new(),
            frame: None,
            clock: 0,
            hot: HotCycles::from_profile(&profile),
            profile,
        });
        self.proc_of_comp.insert(comp, idx);
        idx
    }

    fn schedule(&mut self, time: u64, proc: usize) {
        let t = time.max(self.now);
        self.heap.push(Reverse((t, self.seq, proc, self.now)));
        self.seq += 1;
    }

    /// Serialises the complete engine state into a [`Snapshot`]. Called
    /// after [`Engine::run`] returned with `snapshot_at` armed — either
    /// paused at the cut, or finished early (then the snapshot records the
    /// terminal state).
    fn capture(&self, requested: u64) -> Snapshot {
        let mut heap: Vec<(u64, u64, u32)> = self
            .heap
            .iter()
            .map(|&Reverse((t, s, p, _))| (t, s, p as u32))
            .collect();
        heap.sort_unstable();
        let actual_cut = heap.first().map_or(self.horizon, |&(t, _, _)| t);
        let components = self
            .machine
            .components
            .iter()
            .map(|c| CompSnap {
                name: c.name.clone(),
                kind: match &c.kind {
                    ComponentKind::Processor(p) => CompKindSnap::Processor {
                        kind: p.kind.clone(),
                        profile: ProfileSnap::capture(&p.profile),
                    },
                    ComponentKind::Memory(m) => CompKindSnap::Memory(MemSnap {
                        kind: m.kind.clone(),
                        capacity_elems: m.capacity_elems as u64,
                        data_bits: m.data_bits,
                        banks: m.banks,
                        used_elems: m.used_elems as u64,
                        behavior: m.behavior.snapshot_behavior(),
                        ports: m.ports.clone(),
                        counters: m.counters,
                        energy_per_access_pj: m.energy_per_access_pj,
                    }),
                    ComponentKind::Dma => CompKindSnap::Dma,
                    ComponentKind::Composite(comp) => CompKindSnap::Composite(
                        comp.children
                            .iter()
                            .map(|(n, id)| (n.clone(), id.0))
                            .collect(),
                    ),
                },
            })
            .collect();
        let connections = self
            .machine
            .connections
            .iter()
            .map(|c| {
                let (read_free, write_free) = c.channel_state();
                ConnSnap {
                    name: c.name.clone(),
                    kind: c.kind,
                    bytes_per_cycle: c.bytes_per_cycle,
                    read_free,
                    write_free,
                    transfers: c.transfers.clone(),
                }
            })
            .collect();
        Snapshot {
            requested_cut: requested,
            actual_cut,
            completed: !self.snapshot_due,
            capture_backend: self.options.backend,
            fingerprint: ModuleFingerprint {
                num_ops: self.module.num_ops() as u64,
                num_blocks: self.module.num_blocks() as u64,
                num_values: self.module.num_values() as u64,
            },
            now: self.now,
            horizon: self.horizon,
            wakes: self.wakes,
            ops_interpreted: self.ops_interpreted,
            events_spawned: self.events_spawned,
            live_tensor_bytes: self.live_tensor_bytes,
            peak_live_tensor_bytes: self.peak_live_tensor_bytes,
            fused_trace_entries: self.fused_trace_entries,
            idle_steps: self.idle_steps,
            seq: self.seq,
            host_mem: self.host_mem.map(|c| c.0),
            heap,
            signals: self.signals.signals.clone(),
            procs: self
                .procs
                .iter()
                .map(|p| ProcSnap {
                    comp: p.comp.0,
                    clock: p.clock,
                    profile: ProfileSnap::capture(&p.profile),
                    queue: p.queue.iter().cloned().collect(),
                    frame: p.frame.clone(),
                })
                .collect(),
            machine: MachineSnap {
                components,
                buffers: self.machine.buffers.clone(),
                connections,
            },
        }
    }

    /// Rebuilds a runnable engine from a decoded [`Snapshot`], validating
    /// every cross-reference so adversarial or mismatched snapshots fail
    /// with [`SimError::Snapshot`] instead of panicking later. The wall
    /// deadline restarts from `start`; cycle/event budgets continue from the
    /// snapshot's counters.
    fn from_snapshot(
        module: &'m Module,
        plan: &'m Plan,
        lib: &'m SimLibrary,
        options: &SimOptions,
        start: Instant,
        snap: &Snapshot,
    ) -> Result<Self, SimError> {
        let fp = ModuleFingerprint {
            num_ops: module.num_ops() as u64,
            num_blocks: module.num_blocks() as u64,
            num_values: module.num_values() as u64,
        };
        if snap.fingerprint != fp {
            return Err(snap_err(
                "snapshot was captured from a different module (fingerprint mismatch)",
            ));
        }
        let nsig = snap.signals.len();
        let ncomp = snap.machine.components.len();
        let nbuf = snap.machine.buffers.len();
        let nconn = snap.machine.connections.len();
        let nproc = snap.procs.len();
        for s in &snap.signals {
            match s {
                SignalState::Pending { dependents, .. } => {
                    if dependents.iter().any(|d| (d.0 as usize) >= nsig) {
                        return Err(snap_err("signal dependent out of range"));
                    }
                }
                SignalState::Resolved { payload, .. } => {
                    for v in payload {
                        check_value(v, nsig, ncomp, nbuf, nconn)?;
                    }
                }
            }
        }
        // Rebuild the hardware model.
        let mut machine = Machine::new();
        for c in &snap.machine.components {
            let kind = match &c.kind {
                CompKindSnap::Processor { kind, profile } => ComponentKind::Processor(Processor {
                    kind: kind.clone(),
                    profile: profile.restore(),
                }),
                CompKindSnap::Memory(m) => {
                    if m.ports.is_empty() {
                        return Err(snap_err("memory with no access ports"));
                    }
                    let capacity_elems = usize::try_from(m.capacity_elems)
                        .map_err(|_| snap_err("memory capacity exceeds the address space"))?;
                    let used_elems = usize::try_from(m.used_elems)
                        .map_err(|_| snap_err("memory usage exceeds the address space"))?;
                    let behavior = match m.behavior.rebuild() {
                        Some(b) => b,
                        // Opaque custom model: re-create it from the library
                        // factory (exact only for stateless models — see
                        // `MemoryBehavior::snapshot_behavior`).
                        None => lib.make_memory(&MemSpec {
                            kind: m.kind.clone(),
                            capacity_elems,
                            data_bits: m.data_bits,
                            banks: m.banks,
                            attrs: AttrMap::new(),
                        }),
                    };
                    ComponentKind::Memory(Memory {
                        kind: m.kind.clone(),
                        capacity_elems,
                        data_bits: m.data_bits,
                        banks: m.banks,
                        used_elems,
                        behavior,
                        ports: m.ports.clone(),
                        counters: m.counters,
                        energy_per_access_pj: m.energy_per_access_pj,
                    })
                }
                CompKindSnap::Dma => ComponentKind::Dma,
                CompKindSnap::Composite(children) => {
                    if children.iter().any(|(_, id)| (*id as usize) >= ncomp) {
                        return Err(snap_err("composite child out of range"));
                    }
                    ComponentKind::Composite(Composite {
                        children: children
                            .iter()
                            .map(|(n, id)| (n.clone(), CompId(*id)))
                            .collect(),
                    })
                }
            };
            machine.components.push(Component {
                name: c.name.clone(),
                kind,
            });
        }
        for b in &snap.machine.buffers {
            let mem_ok = matches!(
                machine.components.get(b.mem.0 as usize),
                Some(Component {
                    kind: ComponentKind::Memory(_),
                    ..
                })
            );
            if !mem_ok {
                return Err(snap_err("buffer owned by a non-memory component"));
            }
        }
        machine.buffers = snap.machine.buffers.clone();
        for c in &snap.machine.connections {
            let mut conn = Connection::new(c.name.clone(), c.kind, c.bytes_per_cycle);
            conn.restore_channels(c.read_free, c.write_free);
            conn.transfers = c.transfers.clone();
            machine.connections.push(conn);
        }
        // Rebuild processor runtimes.
        let mut procs = Vec::with_capacity(nproc);
        let mut proc_of_comp = HashMap::new();
        for p in &snap.procs {
            if (p.comp as usize) >= ncomp {
                return Err(snap_err("processor component out of range"));
            }
            for ev in &p.queue {
                check_event(ev, plan, nsig, ncomp, nbuf, nconn)?;
            }
            if let Some(frame) = &p.frame {
                check_frame(frame, module, plan, nsig, ncomp, nbuf, nconn)?;
            }
            let profile = p.profile.restore();
            proc_of_comp.insert(CompId(p.comp), procs.len());
            procs.push(ProcRuntime {
                comp: CompId(p.comp),
                queue: p.queue.iter().cloned().collect(),
                frame: p.frame.clone(),
                clock: p.clock,
                hot: HotCycles::from_profile(&profile),
                profile,
            });
        }
        if snap.heap.iter().any(|&(_, _, p)| (p as usize) >= nproc) {
            return Err(snap_err("scheduled event targets an unknown processor"));
        }
        if let Some(hm) = snap.host_mem {
            let ok = matches!(
                machine.components.get(hm as usize),
                Some(Component {
                    kind: ComponentKind::Memory(_),
                    ..
                })
            );
            if !ok {
                return Err(snap_err("host scratch memory is not a memory"));
            }
        }
        let heap = snap
            .heap
            .iter()
            // `born` is not serialised; synthesise `born = time`. Resumed
            // runs are sequential-only, so the field is never consulted.
            .map(|&(t, s, p)| Reverse((t, s, p as usize, t)))
            .collect();
        let mut engine = Engine {
            module,
            plan,
            lib,
            options: options.clone(),
            machine,
            signals: SignalTable::from_states(snap.signals.clone()),
            waiters: vec![],
            procs,
            proc_of_comp,
            heap,
            seq: snap.seq,
            now: snap.now,
            horizon: snap.horizon,
            wakes: snap.wakes,
            ops_interpreted: snap.ops_interpreted,
            events_spawned: snap.events_spawned,
            live_tensor_bytes: snap.live_tensor_bytes,
            peak_live_tensor_bytes: snap.peak_live_tensor_bytes,
            fused_trace_entries: snap.fused_trace_entries,
            idle_steps: snap.idle_steps,
            deadline: options.limits.wall_deadline.map(|d| start + d),
            trace: if options.trace {
                Trace::new()
            } else {
                Trace::disabled()
            },
            host_mem: snap.host_mem.map(CompId),
            fused_on: options.backend == Backend::Fused && !options.trace,
            fused: crate::fused::FusedScratch::new(plan.fused.len()),
            snapshot_at: None,
            snapshot_due: false,
            // Resumed runs are sequential-only: the create-op → group
            // bindings were not captured, so offload gates cannot be
            // re-established mid-run.
            par: None,
            comp_group: HashMap::new(),
            conn_group: HashMap::new(),
            watch: None,
            watch_pop: None,
            watch_born: None,
            ctx_born: 0,
            shard_offloads: 0,
        };
        engine.rebuild_waiters();
        Ok(engine)
    }

    /// Reconstructs the per-signal waiter lists from the processor states
    /// after a snapshot restore. The runtime invariant is: a processor is
    /// registered on a signal iff (a) it is idle and its queue head's
    /// dependency is that signal, unresolved, or (b) its frame is blocked
    /// in an `await` whose first unresolved dependency is that signal —
    /// and in either case no wake for it is pending in the heap (a pending
    /// wake re-discovers the block and re-registers when it pops, exactly
    /// as the live engine does).
    fn rebuild_waiters(&mut self) {
        let scheduled: std::collections::HashSet<usize> =
            self.heap.iter().map(|&Reverse((_, _, p, _))| p).collect();
        for p in 0..self.procs.len() {
            if scheduled.contains(&p) {
                continue;
            }
            let target = match &self.procs[p].frame {
                None => match self.procs[p].queue.front() {
                    Some(head) if self.signals.resolve_time(head.dep).is_none() => Some(head.dep),
                    _ => None,
                },
                Some(frame) => self.blocked_await_dep(frame),
            };
            if let Some(sig) = target {
                self.subscribe(sig, p);
            }
        }
    }

    /// The first unresolved dependency of the `await` op a frame is parked
    /// on, if its current op is an await. Lookup failures (possible only in
    /// adversarial snapshots) yield `None`; such frames surface as a
    /// deadlock instead of progressing, which is a typed error, not UB.
    fn blocked_await_dep(&self, frame: &Frame) -> Option<SignalId> {
        let scope = frame.stack.last()?;
        let ops = &self.module.block(scope.block).ops;
        let op = *ops.get(scope.idx)?;
        let OpCode::Await { deps } = &self.plan.ops[op.index()].code else {
            return None;
        };
        for &d in deps {
            match self.lookup_signal(frame, d) {
                Ok(sig) if self.signals.resolve_time(sig).is_none() => return Some(sig),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
        None
    }

    /// Registers `p` as a waiter on `sig` (deduplicated).
    fn subscribe(&mut self, sig: SignalId, p: usize) {
        let i = sig.0 as usize;
        if self.waiters.len() <= i {
            self.waiters.resize_with(i + 1, Vec::new);
        }
        let list = &mut self.waiters[i];
        if !list.contains(&p) {
            list.push(p);
        }
    }

    pub(crate) fn bump_horizon(&mut self, t: u64) {
        if t > self.horizon {
            self.horizon = t;
        }
    }

    /// Partial statistics at the current point of execution (carried by
    /// limit/cancellation errors).
    fn progress(&self, t: u64) -> Progress {
        Progress {
            cycles: self.horizon.max(t),
            events: self.wakes,
            ops: self.ops_interpreted,
        }
    }

    fn limit_err(&self, kind: LimitKind, limit: u64, t: u64) -> SimError {
        SimError::Limit(LimitExceeded {
            kind,
            limit,
            progress: self.progress(t),
        })
    }

    /// Epoch-cadence polls: cancellation and the wall-clock deadline. Kept
    /// off the per-wake fast path — callers gate on the epoch masks.
    #[cold]
    fn check_epoch(&self, t: u64) -> Result<(), SimError> {
        if let Some(c) = &self.options.cancel {
            if c.is_cancelled() {
                return Err(SimError::Cancelled(self.progress(t)));
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() >= d {
                let ms = self
                    .options
                    .limits
                    .wall_deadline
                    .map_or(0, |w| w.as_millis() as u64);
                return Err(self.limit_err(LimitKind::WallClock, ms, t));
            }
        }
        Ok(())
    }

    /// The per-wake budget check, inlined into both scheduler loops (the
    /// heap pop and the inline-wake fast path in `step_frame`). The cheap
    /// counter comparisons run every wake; the epoch poll fires on
    /// `wakes % WAKE_EPOCH == 1`, so a pre-cancelled run stops on its very
    /// first wake.
    #[inline]
    fn check_budget(&self, t: u64) -> Result<(), SimError> {
        let lim = &self.options.limits;
        if self.wakes > lim.max_events {
            return Err(self.limit_err(LimitKind::Events, lim.max_events, t));
        }
        if t > lim.max_cycles {
            return Err(self.limit_err(LimitKind::Cycles, lim.max_cycles, t));
        }
        if self.wakes & (WAKE_EPOCH - 1) == 1 {
            self.check_epoch(t)?;
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), SimError> {
        // Snapshot runs arm `snapshot_at` after construction; they must
        // stay sequential (shard offloads would blur the cut boundary).
        if self.snapshot_at.is_some() {
            self.par = None;
        }
        if self.par.is_some() {
            std::thread::scope(|scope| self.run_main(Some(scope)))
        } else {
            self.run_main(None)
        }
    }

    fn run_main<'s, 'e>(
        &mut self,
        scope: Option<&'s std::thread::Scope<'s, 'e>>,
    ) -> Result<(), SimError>
    where
        'm: 'e,
    {
        self.run_loop(scope)?;
        if self.snapshot_due {
            return Ok(());
        }
        // Everything drained: check for stuck work.
        let mut stuck = vec![];
        for (i, proc) in self.procs.iter().enumerate() {
            if proc.frame.is_some() && i != 0 {
                stuck.push(format!(
                    "{} has an unfinished frame",
                    self.machine.name(proc.comp)
                ));
            }
            if !proc.queue.is_empty() {
                stuck.push(format!(
                    "{} has {} unissued events",
                    self.machine.name(proc.comp),
                    proc.queue.len()
                ));
            }
        }
        if let Some(host) = &self.procs[0].frame {
            // The host frame must have run to completion too.
            if !host.stack.is_empty() {
                stuck.push("host program did not finish".into());
            }
        }
        if stuck.is_empty() {
            Ok(())
        } else {
            Err(SimError::Deadlock(stuck.join("; ")))
        }
    }

    /// The scheduler pop loop. With `par` armed, each iteration first
    /// settles speculation (applying or aborting shards whose sequential
    /// resolution point has passed), then either offloads the next heap
    /// entry to a worker thread or processes it sequentially.
    fn run_loop<'s, 'e>(
        &mut self,
        scope: Option<&'s std::thread::Scope<'s, 'e>>,
    ) -> Result<(), SimError>
    where
        'm: 'e,
    {
        loop {
            if self.par.is_some() {
                self.par_settle();
            }
            let Some(&Reverse((t, s, p, born))) = self.heap.peek() else {
                // `par_settle` with an empty heap drains all speculation
                // (aborts re-fill the heap), so an empty heap here means
                // the run is complete.
                return Ok(());
            };
            if self.snapshot_at.is_some_and(|cut| t >= cut) {
                // Snapshot boundary: every event strictly before the cut has
                // been processed. Leave the event untouched (its wake is
                // counted by the resumed run's pop, keeping wake counts
                // bit-identical with an uninterrupted run) and pause.
                self.snapshot_due = true;
                return Ok(());
            }
            if let Some(sc) = scope {
                if self.shard_root(p) {
                    // A wake targeting the root processor of an active shard
                    // (unreachable by construction: the root's only pending
                    // work is the offloaded event itself). Dropping it
                    // uncounted preserves the shard's own count of the pop.
                    self.heap.pop();
                    continue;
                }
                if self.try_offload(sc, t, s, p, born) {
                    continue;
                }
            }
            self.heap.pop();
            self.now = t;
            self.ctx_born = born;
            self.wakes += 1;
            self.check_budget(t)?;
            self.wake(p, t)?;
        }
    }

    // ---- intra-run parallelism (see docs/parallel-engine.md) --------------
    //
    // Exactness invariant: at every point where a shard's effects become
    // visible to the sequential path, they are byte-identical to what the
    // sequential path would have computed itself. The coordinator offloads
    // only *shard-pure* launches (see `crate::partition`), stashes the
    // result until the sequential clock passes the launch's resolution
    // point, and aborts (re-running sequentially) whenever the window
    // between resolution and observation is ambiguous.

    /// Whether `p` is the root processor of an active shard. Its only
    /// pending work is the offloaded event itself, so any heap entry for
    /// it is the root entry's residue and must be dropped uncounted.
    fn shard_root(&self, p: usize) -> bool {
        let Some(par) = &self.par else { return false };
        par.in_flight.iter().any(|f| f.entry.2 == p) || par.stashed.iter().any(|s| s.entry.2 == p)
    }

    /// Hook on every signal-state read: if `sig` is an active shard's done
    /// signal, the sequential path is observing the speculation window.
    #[inline]
    fn observe_signal(&mut self, sig: SignalId) {
        if let Some(par) = &self.par {
            if !par.in_flight.is_empty() || !par.stashed.is_empty() {
                self.observe_cold(sig);
            }
        }
    }

    #[cold]
    fn observe_cold(&mut self, sig: SignalId) {
        let Some(par) = &mut self.par else { return };
        if let Some(i) = par.in_flight.iter().position(|f| f.done == sig) {
            // Observed while still running: join now (blocking — the
            // observer cannot proceed without knowing the resolution
            // point) and decide like any other observed stash.
            let f = par.in_flight.remove(i);
            match f.rx.recv() {
                Ok(Ok(out)) => self.settle_observed(Stashed {
                    group: f.group,
                    done: f.done,
                    entry: f.entry,
                    out,
                }),
                _ => self.abort_shard(f.entry),
            }
            return;
        }
        let Some(par) = &mut self.par else { return };
        if let Some(i) = par.stashed.iter().position(|s| s.done == sig) {
            let st = par.stashed.remove(i);
            self.settle_observed(st);
        }
    }

    /// Decides the fate of a shard whose done signal the current context
    /// is observing, by ordering the observation `(now, ctx_born)` against
    /// the resolution point `(rp, rb)` in the sequential pop order:
    ///
    /// - observer first → *keep*: the sequential run would also see
    ///   Pending at this pop, so the stash stays invisible;
    /// - resolution first → *apply mid-pop*: the sequential run would
    ///   already see the signal resolved, so merging here (before the
    ///   observer reads the state) is exactly lazy visibility — provided
    ///   the merge window is clean (`rt >= c_fin`: every observer clamps
    ///   its clock to `rt`, so no later interaction can reach the group
    ///   below a member's merged clock);
    /// - exact tie → *abort*: the order depends on scheduling-call order
    ///   inside one context, which the merge cannot reconstruct.
    fn settle_observed(&mut self, st: Stashed) {
        let ctx = (self.now, self.ctx_born);
        let res = (st.out.rp, st.out.rb);
        if ctx < res {
            if let Some(par) = &mut self.par {
                par.stashed.push(st);
            }
            return;
        }
        if res < ctx && st.out.rt >= self.shard_c_fin(st.group, &st.out) {
            self.apply_shard(st.group, st.done, st.out);
        } else {
            self.abort_shard(st.entry);
        }
    }

    /// Hook before any mutation of a component's schedule/port state: if
    /// the component belongs to a group with an active shard, the
    /// coordinator is invading the shard's state and the speculation must
    /// be discarded.
    #[inline]
    fn shard_conflict(&mut self, comp: CompId) {
        if let Some(par) = &self.par {
            if !par.in_flight.is_empty() || !par.stashed.is_empty() {
                self.shard_conflict_cold(comp);
            }
        }
    }

    #[cold]
    fn shard_conflict_cold(&mut self, comp: CompId) {
        let Some(&g) = self.comp_group.get(&comp.0) else {
            return;
        };
        let Some(par) = &mut self.par else { return };
        if let Some(i) = par.in_flight.iter().position(|f| f.group == g) {
            let f = par.in_flight.remove(i);
            // Wait for the worker to finish (its state is discarded), then
            // replay the root sequentially.
            let _ = f.rx.recv();
            self.abort_shard(f.entry);
            return;
        }
        let Some(par) = &mut self.par else { return };
        if let Some(i) = par.stashed.iter().position(|s| s.group == g) {
            let st = par.stashed.remove(i);
            self.abort_shard(st.entry);
        }
    }

    /// Binds a freshly created processor/DMA component to its partition
    /// group (only while `par` is armed; the maps stay empty otherwise).
    fn bind_group_comp(&mut self, comp: CompId, op: OpId) {
        if self.par.is_some() {
            if let Some(g) = self.plan.partition.group_of_create_op(op.index()) {
                self.comp_group.insert(comp.0, g);
            }
        }
    }

    /// Conflict hook for linalg kernels: the ConflictPass has no footprint
    /// for them (defense in depth — the partition's silent-invasion
    /// exclusion already bars offloading any group such a kernel could
    /// reach from outside).
    #[inline]
    fn shard_conflict_buffers(&mut self, bufs: &[BufId]) {
        if let Some(par) = &self.par {
            if !par.in_flight.is_empty() || !par.stashed.is_empty() {
                for &b in bufs {
                    if let Some(mem) = self.machine.buffers.get(b.0 as usize).map(|bf| bf.mem) {
                        self.shard_conflict_cold(mem);
                    }
                }
            }
        }
    }

    /// Discards a speculation: the consumed root heap entry is re-pushed
    /// verbatim (the root event is still at the front of its processor's
    /// queue — offload consumes only the heap entry), and the entry is
    /// denied further offloads so the replay runs sequentially.
    fn abort_shard(&mut self, entry: (u64, u64, usize, u64)) {
        if let Some(par) = &mut self.par {
            par.denied.insert((entry.0, entry.1));
        }
        self.heap.push(Reverse(entry));
    }

    /// Joins a worker (blocking) and stashes its result; worker errors
    /// abort — the sequential replay reproduces the error with exact
    /// progress counters. The settle scan and the observation hooks
    /// decide when the stash becomes visible.
    fn settle_joined(&mut self, f: InFlight) {
        match f.rx.recv() {
            Ok(Ok(out)) => {
                if let Some(par) = &mut self.par {
                    par.stashed.push(Stashed {
                        group: f.group,
                        done: f.done,
                        entry: f.entry,
                        out,
                    });
                }
            }
            _ => self.abort_shard(f.entry),
        }
    }

    /// Non-blocking join: moves every finished worker's result into the
    /// stash (worker errors abort immediately), so `rp`/`rb` are known to
    /// the settle scan *before* the pop that would observe them.
    fn par_join_finished(&mut self) {
        loop {
            let Some(par) = &mut self.par else { return };
            let mut joined: Option<(usize, Option<ShardOut>)> = None;
            for (i, f) in par.in_flight.iter().enumerate() {
                match f.rx.try_recv() {
                    Ok(Ok(out)) => {
                        joined = Some((i, Some(out)));
                        break;
                    }
                    Ok(Err(_)) | Err(std::sync::mpsc::TryRecvError::Disconnected) => {
                        joined = Some((i, None));
                        break;
                    }
                    Err(std::sync::mpsc::TryRecvError::Empty) => {}
                }
            }
            let Some((i, out)) = joined else { return };
            let f = par.in_flight.remove(i);
            match out {
                Some(out) => par.stashed.push(Stashed {
                    group: f.group,
                    done: f.done,
                    entry: f.entry,
                    out,
                }),
                None => self.abort_shard(f.entry),
            }
        }
    }

    /// The time after which the coordinator may freely interact with the
    /// shard's group again: the max of the shard's final clock, the root
    /// resolve time, and every group member's final processor clock (an
    /// idle processor with a high clock still clamps and drops wakes below
    /// it, so applying earlier could diverge from the sequential order).
    fn shard_c_fin(&self, group: u32, out: &ShardOut) -> u64 {
        let mut c = out.t_fin.max(out.rt);
        for proc in &out.procs {
            if self.comp_group.get(&proc.comp.0) == Some(&group) {
                c = c.max(proc.clock);
            }
        }
        c
    }

    /// Whether anything can still react to `sig` resolving: a registered
    /// waiter or a pending combinator dependent.
    fn signal_has_audience(&self, sig: SignalId) -> bool {
        if self
            .waiters
            .get(sig.0 as usize)
            .is_some_and(|w| !w.is_empty())
        {
            return true;
        }
        matches!(
            self.signals.signals.get(sig.0 as usize),
            Some(SignalState::Pending { dependents, .. }) if !dependents.is_empty()
        )
    }

    /// Applies or aborts stashed shards whose sequential resolution point
    /// `(rp, rb)` the scheduler is about to pass, and joins workers (non-
    /// blocking each iteration; blocking when the heap drains). Called at
    /// the top of every scheduler iteration while `par` is armed.
    fn par_settle(&mut self) {
        loop {
            self.par_join_finished();
            let next = self.heap.peek().map(|&Reverse((t, _, _, born))| (t, born));
            // Scan the stash for due entries; apply/abort the minimum-key
            // one and rescan (an apply can reschedule waiters and change
            // the heap head).
            loop {
                let Some(par) = &self.par else { return };
                let mut best: Option<(u64, u64, u64, usize, bool)> = None;
                for (i, st) in par.stashed.iter().enumerate() {
                    let res = (st.out.rp, st.out.rb);
                    let apply = match next {
                        // The next pop precedes the resolution in the
                        // sequential order: the stash stays invisible (an
                        // observation there correctly sees Pending).
                        Some(ctx) if ctx < res => continue,
                        // Exact positional tie: the order depends on
                        // scheduling-call order inside one context, which
                        // the merge cannot reconstruct. Abort before the
                        // pop so the sequential replay decides.
                        Some(ctx) if ctx == res => false,
                        // Resolution first (or the heap is drained): the
                        // stash must become visible now.
                        next_ctx => {
                            let c_fin = self.shard_c_fin(st.group, &st.out);
                            if self.signal_has_audience(st.done) {
                                // Waiters wake at >= rt, so the window is
                                // clean only if rt covers every merged
                                // group clock.
                                st.out.rt >= c_fin
                            } else {
                                // Silent: defer while upcoming pops land
                                // inside the (rp, c_fin] window (the
                                // conflict/observe hooks guard it); apply
                                // once the window is clear.
                                if next_ctx.is_some_and(|(t, _)| t <= c_fin) {
                                    continue;
                                }
                                true
                            }
                        }
                    };
                    let key = (st.out.rp, st.out.rb, st.entry.1);
                    if best
                        .map(|(rp, rb, s, _, _)| key < (rp, rb, s))
                        .unwrap_or(true)
                    {
                        best = Some((key.0, key.1, key.2, i, apply));
                    }
                }
                let Some((_, _, _, i, apply)) = best else {
                    break;
                };
                let Some(par) = &mut self.par else { return };
                let st = par.stashed.remove(i);
                if apply {
                    self.apply_shard(st.group, st.done, st.out);
                } else {
                    self.abort_shard(st.entry);
                }
                // The settle may have changed the heap head; recompute.
                let new_head = self.heap.peek().map(|&Reverse((t, _, _, born))| (t, born));
                if new_head != next {
                    break;
                }
            }
            let new_head = self.heap.peek().map(|&Reverse((t, _, _, born))| (t, born));
            if new_head != next {
                continue; // head moved: rescan with the new horizon
            }
            if new_head.is_some() {
                return;
            }
            // Heap empty: the only possible progress is joining a worker.
            let Some(par) = &mut self.par else { return };
            if par.in_flight.is_empty() {
                return;
            }
            let f = par.in_flight.remove(0);
            self.settle_joined(f);
        }
    }

    /// Merges a finished shard into the coordinator: group-owned machine
    /// state and processor runtimes are copied back wholesale, the shard's
    /// new signals are appended as a remapped suffix, the root done signal
    /// resolves through the normal cascade (waking coordinator-side
    /// waiters), and the counters fold in.
    fn apply_shard(&mut self, group: u32, done: SignalId, out: ShardOut) {
        let ShardOut {
            machine,
            signals,
            procs,
            sig_base,
            rt,
            mut payload,
            wakes,
            ops_interpreted,
            events_spawned,
            idle_steps,
            fused_trace_entries,
            horizon,
            ..
        } = out;
        // Shards never elaborate or allocate, so indices align 1:1 and
        // every list is bounded by the coordinator's length.
        for (i, comp) in machine.components.into_iter().enumerate() {
            if i < self.machine.components.len() && self.comp_group.get(&(i as u32)) == Some(&group)
            {
                self.machine.components[i] = comp;
            }
        }
        for (i, buf) in machine.buffers.into_iter().enumerate() {
            if i < self.machine.buffers.len() && self.comp_group.get(&buf.mem.0) == Some(&group) {
                self.machine.buffers[i] = buf;
            }
        }
        for (i, conn) in machine.connections.into_iter().enumerate() {
            if i < self.machine.connections.len()
                && self.conn_group.get(&(i as u32)) == Some(&group)
            {
                self.machine.connections[i] = conn;
            }
        }
        for (i, proc) in procs.into_iter().enumerate() {
            if i < self.procs.len() && self.comp_group.get(&proc.comp.0) == Some(&group) {
                self.procs[i] = proc;
            }
        }
        let delta = append_signal_suffix(&mut self.signals, signals, sig_base);
        for v in &mut payload {
            remap_value(v, sig_base, delta);
        }
        self.resolve_signal(done, rt, payload);
        self.wakes += wakes;
        self.ops_interpreted += ops_interpreted;
        self.events_spawned += events_spawned;
        self.idle_steps += idle_steps;
        self.fused_trace_entries += fused_trace_entries;
        self.bump_horizon(horizon);
    }

    /// Attempts to offload the heap head `(t, s, p, born)` to a worker
    /// thread.
    /// Returns `true` when the entry was consumed (the caller continues
    /// its loop without popping). Every gate below is required for the
    /// exactness argument in `docs/parallel-engine.md`.
    fn try_offload<'s, 'e>(
        &mut self,
        scope: &'s std::thread::Scope<'s, 'e>,
        t: u64,
        s: u64,
        p: usize,
        born: u64,
    ) -> bool
    where
        'm: 'e,
    {
        let Some(par) = &self.par else { return false };
        if !par.has_slot() || par.denied.contains(&(t, s)) {
            return false;
        }
        // The target must be idle with exactly the root event queued, and
        // its clock must not clamp the wake time.
        let proc = &self.procs[p];
        if proc.frame.is_some() || proc.queue.len() != 1 || proc.clock > t {
            return false;
        }
        let Some(head) = proc.queue.front() else {
            return false;
        };
        let EventKind::Launch { op, ref env } = head.kind else {
            return false;
        };
        let Some(group) = self.plan.partition.pure_launch(op.index()) else {
            return false;
        };
        // Multi-result launches publish Deferred payload slots the parent
        // can read without any signal observation; restrict speculation to
        // launches whose only result is the done signal.
        if self.plan.ops[op.index()].results.len() > 1 {
            return false;
        }
        if par.group_active(group) {
            return false;
        }
        let dep = head.dep;
        let done = head.done;
        if self.signals.resolve_time(dep).is_none() {
            return false;
        }
        // The done signal must be virgin: unresolved, with no waiters or
        // combinator dependents yet (an audience at offload time would
        // observe the resolution mid-window).
        if self.signals.is_resolved(done) || self.signal_has_audience(done) {
            return false;
        }
        // Every captured value must be materialized: an unresolved Signal
        // or missing Deferred payload inside the env could resolve during
        // the speculation window, which the shard would miss.
        for v in env.iter().flatten() {
            let materialized = match v {
                SimValue::Signal(sig) => self.signals.resolve_time(*sig).is_some(),
                SimValue::Deferred { signal, index } => {
                    self.signals.payload(*signal).get(*index).is_some()
                }
                _ => true,
            };
            if !materialized {
                return false;
            }
        }
        // Every other processor of the group must be fully quiescent, with
        // no pending heap entries (the shard clone starts them idle).
        for (i, other) in self.procs.iter().enumerate() {
            if i == p || self.comp_group.get(&other.comp.0) != Some(&group) {
                continue;
            }
            if other.frame.is_some() || !other.queue.is_empty() {
                return false;
            }
        }
        let mut group_procs: Vec<usize> = vec![p];
        for (i, other) in self.procs.iter().enumerate() {
            if i != p && self.comp_group.get(&other.comp.0) == Some(&group) {
                group_procs.push(i);
            }
        }
        if self
            .heap
            .iter()
            .any(|&Reverse((_, hs, hp, _))| group_procs.contains(&hp) && !(hp == p && hs == s))
        {
            return false;
        }
        // Opaque custom memory behaviors cannot be cloned exactly.
        let Some(machine) = self.machine.try_clone() else {
            return false;
        };
        let sig_base = self.signals.len();
        let shard = self.shard_engine(machine, t, p, born);
        // Consume only the heap entry: the root event stays queued, so the
        // shard's clone pops it itself (bit-identical wake counting), and
        // an abort replays it by re-pushing the entry.
        self.heap.pop();
        let (tx, rx) = std::sync::mpsc::channel();
        let entry = (t, s, p, born);
        scope.spawn(move || {
            let _ = tx.send(shard.run_shard(done, sig_base));
        });
        self.shard_offloads += 1;
        if let Some(par) = &mut self.par {
            par.in_flight.push(InFlight {
                group,
                done,
                entry,
                rx,
            });
        }
        true
    }

    /// Builds the worker engine for an offload: the full cloned state with
    /// a heap containing only the root entry, zeroed counters (the merge
    /// folds the deltas back), and an event budget bounded by the
    /// coordinator's remaining budget.
    fn shard_engine(&self, machine: Machine, t: u64, p: usize, born: u64) -> Engine<'m> {
        let mut options = self.options.clone();
        options.threads = 1;
        let stock = RunLimits::default();
        let used = self.wakes.max(self.idle_steps);
        options.limits.max_events = stock.max_events.saturating_sub(used).max(1);
        Engine {
            module: self.module,
            plan: self.plan,
            lib: self.lib,
            options,
            machine,
            signals: self.signals.clone(),
            waiters: vec![],
            procs: self.procs.clone(),
            proc_of_comp: self.proc_of_comp.clone(),
            // The root entry keeps its coordinator `born`, so the shard's
            // `(rp, rb)` resolution point is the sequential one.
            heap: std::iter::once(Reverse((t, 0, p, born))).collect(),
            seq: 1,
            now: 0,
            horizon: 0,
            wakes: 0,
            ops_interpreted: 0,
            events_spawned: 0,
            live_tensor_bytes: 0,
            peak_live_tensor_bytes: 0,
            fused_trace_entries: 0,
            idle_steps: 0,
            deadline: None,
            trace: Trace::disabled(),
            host_mem: self.host_mem,
            fused_on: self.fused_on,
            fused: crate::fused::FusedScratch::new(self.plan.fused.len()),
            snapshot_at: None,
            snapshot_due: false,
            par: None,
            comp_group: HashMap::new(),
            conn_group: HashMap::new(),
            watch: None,
            watch_pop: None,
            watch_born: None,
            ctx_born: 0,
            shard_offloads: 0,
        }
    }

    /// Worker-side entry: run the shard to drain and package the result.
    /// The shard watches its root done signal to record `rp`, the engine
    /// time at which it resolved (its position in the pop order).
    fn run_shard(mut self, done: SignalId, sig_base: usize) -> Result<ShardOut, SimError> {
        self.watch = Some(done);
        self.run_loop(None)?;
        let (Some(rt), Some(rp), Some(rb)) = (
            self.signals.resolve_time(done),
            self.watch_pop,
            self.watch_born,
        ) else {
            return Err(SimError::Deadlock(
                "shard drained without resolving its root launch".into(),
            ));
        };
        let payload = self.signals.payload(done).to_vec();
        Ok(ShardOut {
            machine: self.machine,
            signals: self.signals,
            procs: self.procs,
            sig_base,
            rt,
            rp,
            rb,
            t_fin: self.now,
            payload,
            wakes: self.wakes,
            ops_interpreted: self.ops_interpreted,
            events_spawned: self.events_spawned,
            idle_steps: self.idle_steps,
            fused_trace_entries: self.fused_trace_entries,
            horizon: self.horizon,
        })
    }

    /// Wakes processor `p` at time `t` and steps it as far as possible.
    fn wake(&mut self, p: usize, t: u64) -> Result<(), SimError> {
        // A processor whose local clock is ahead of the wake time is
        // mid-operation: this wake is a spurious one from a signal
        // cascade. Stepping now would let the processor reserve shared
        // schedule queues ahead of same-time requesters on other
        // processors. Dropping the wake is safe: every state transition
        // that leaves a processor with pending work schedules a wake at
        // (or after) its clock — `advance` at the new clock, and signal
        // resolution at `max(resolve_time, clock)`.
        if self.procs[p].clock > t {
            return Ok(());
        }
        if self.procs[p].clock < t {
            self.procs[p].clock = t;
        }
        loop {
            if self.procs[p].frame.is_none() {
                // Stage 2: check the event queue head.
                let Some(head) = self.procs[p].queue.front() else {
                    return Ok(());
                };
                let dep = head.dep;
                self.observe_signal(dep);
                match self.signals.resolve_time(dep) {
                    None => {
                        // Dependency pending: register as a waiter so the
                        // signal's resolution cascade re-wakes exactly this
                        // processor (stage 4).
                        self.subscribe(dep, p);
                        return Ok(());
                    }
                    Some(dep_time) => {
                        if dep_time > self.procs[p].clock {
                            self.procs[p].clock = dep_time;
                        }
                        let Some(event) = self.procs[p].queue.pop_front() else {
                            return Ok(()); // unreachable: front() was Some
                        };
                        self.issue_event(p, event)?;
                        // issue_event may have finished instantly (memcpy) or
                        // installed a frame; loop to continue stepping.
                        continue;
                    }
                }
            }
            // Step the active frame (a burst of ops; see `step_frame`).
            match self.step_frame(p)? {
                Step::Continue => continue,
                Step::Yield => {
                    let clock = self.procs[p].clock;
                    self.schedule(clock, p);
                    return Ok(());
                }
                Step::Blocked => return Ok(()),
                Step::Finished => continue,
            }
        }
    }

    /// Starts a pending event on processor `p` (stage 3 for events).
    fn issue_event(&mut self, p: usize, event: PendingEvent) -> Result<(), SimError> {
        match event.kind {
            EventKind::Launch { op, env } => {
                let OpCode::Launch(info) = &self.plan.ops[op.index()].code else {
                    return Err(SimError::Runtime("launch event for a non-launch op".into()));
                };
                self.procs[p].frame = Some(Frame {
                    env,
                    stack: vec![Scope {
                        block: info.body,
                        idx: 0,
                        looping: None,
                    }],
                    done: event.done,
                    scope: info.scope,
                });
                Ok(())
            }
            EventKind::Memcpy { src, dst, conn } => {
                let clock = self.procs[p].clock;
                let end = self.do_memcpy(p, src, dst, conn, clock)?;
                self.procs[p].clock = end;
                self.resolve_signal(event.done, end, vec![]);
                Ok(())
            }
        }
    }

    /// Executes a DMA copy: read `src`, move through `conn`, write `dst`.
    /// Returns the finish time. The three legs are pipelined, so the copy
    /// takes the max of their latencies (plus any schedule-queue stalls).
    fn do_memcpy(
        &mut self,
        p: usize,
        src: BufId,
        dst: BufId,
        conn: Option<crate::value::ConnId>,
        start: u64,
    ) -> Result<u64, SimError> {
        let (src_mem, bytes, elems, src_addr) = {
            let b = self.machine.buffer(src);
            (b.mem, b.bytes() as u64, b.elems(), b.base_addr)
        };
        let (dst_mem, dst_elems, dst_addr) = {
            let b = self.machine.buffer(dst);
            (b.mem, b.elems(), b.base_addr)
        };
        if dst_elems != elems {
            return Err(SimError::Runtime(format!(
                "memcpy size mismatch: src {elems} elems, dst {dst_elems} elems"
            )));
        }
        let no_mem =
            || SimError::Runtime("internal: memcpy endpoint not backed by a memory".into());
        let (_, rd_end, _) = self.machine.memory_mut(src_mem).ok_or_else(no_mem)?.access(
            AccessKind::Read,
            src_addr,
            elems,
            bytes,
            start,
        );
        let (_, wr_end, _) = self.machine.memory_mut(dst_mem).ok_or_else(no_mem)?.access(
            AccessKind::Write,
            dst_addr,
            elems,
            bytes,
            start,
        );
        let mut end = rd_end.max(wr_end);
        if let Some(c) = conn {
            let (_, c_end) = self
                .machine
                .connection_mut(c)
                .reserve(AccessKind::Read, start, bytes);
            let (_, c_end2) =
                self.machine
                    .connection_mut(c)
                    .reserve(AccessKind::Write, start, bytes);
            end = end.max(c_end).max(c_end2);
        }
        // Move the data (an Arc bump under copy-on-write).
        let data = self.machine.buffer(src).data.clone();
        self.machine.buffer_mut(dst).data = data;
        if self.trace.is_enabled() {
            let tid = self.machine.name(self.procs[p].comp).to_string();
            self.trace.record(
                "equeue.memcpy",
                TraceCat::Operation,
                start,
                end - start,
                "DMA",
                &tid,
            );
        }
        self.bump_horizon(end);
        Ok(end)
    }

    /// Resolves a signal and wakes every processor registered as a waiter
    /// on a signal the resolution cascade fired (stage 4). Waiter lists
    /// replace the historical whole-table broadcast: only processors whose
    /// queue head or blocked await actually depends on a fired signal are
    /// scheduled. This is timing-equivalent — a resolution popping at
    /// `t_r` always carries `resolve_time >= t_r`, so resume times
    /// `max(resolve_time, clock)` never depended on the spurious clock
    /// bumps the broadcast produced — but drops the O(procs) wake storm
    /// per resolution (the fig12 sweep spends most of its 9.26 M wakes
    /// there). Waking in ascending processor order preserves heap sequence
    /// assignment for same-time ties.
    fn resolve_signal(&mut self, sig: SignalId, time: u64, payload: Vec<SimValue>) {
        let fired = self.signals.resolve(sig, time, payload);
        if let Some(w) = self.watch {
            // Shard engines record the engine time at which the watched
            // root done signal resolved (its position in the pop order).
            if self.watch_pop.is_none() && fired.contains(&w) {
                self.watch_pop = Some(self.now);
                self.watch_born = Some(self.ctx_born);
            }
        }
        self.bump_horizon(time);
        let mut woken: Vec<usize> = vec![];
        for f in &fired {
            if let Some(list) = self.waiters.get_mut(f.0 as usize) {
                for p in list.drain(..) {
                    if !woken.contains(&p) {
                        woken.push(p);
                    }
                }
            }
        }
        woken.sort_unstable();
        let rt = self.signals.resolve_time(sig).unwrap_or(time);
        for p in woken {
            let at = rt.max(self.procs[p].clock);
            self.schedule(at, p);
        }
    }

    // ---- value evaluation -------------------------------------------------

    /// "Used before definition" diagnostic for an empty slot.
    fn undef(&self, frame: &Frame, slot: Slot) -> SimError {
        let v = self.plan.scopes[frame.scope as usize].values[slot as usize];
        SimError::Runtime(format!("value %{v} used before definition in simulation"))
    }

    /// Reads a slot. `strict` controls [`SimValue::Deferred`] handling:
    /// strict lookups fail when the launch payload is not yet available,
    /// lazy ones (used when *spawning* events whose dependency guarantees
    /// the value exists by issue time) keep the `Deferred` marker.
    fn lookup_mode(&self, frame: &Frame, slot: Slot, strict: bool) -> Result<SimValue, SimError> {
        let val = frame.env[slot as usize]
            .as_ref()
            .ok_or_else(|| self.undef(frame, slot))?;
        if let SimValue::Deferred { signal, index } = *val {
            match self.signals.payload(signal).get(index) {
                Some(resolved) => return Ok(resolved.clone()),
                None if strict => {
                    return Err(SimError::Runtime(
                        "launch result used before the launch completed (missing await?)".into(),
                    ))
                }
                None => {}
            }
        }
        Ok(val.clone())
    }

    pub(crate) fn lookup(&self, frame: &Frame, slot: Slot) -> Result<SimValue, SimError> {
        self.lookup_mode(frame, slot, true)
    }

    fn lookup_lazy(&self, frame: &Frame, slot: Slot) -> Result<SimValue, SimError> {
        self.lookup_mode(frame, slot, false)
    }

    fn lookup_signal(&self, frame: &Frame, slot: Slot) -> Result<SignalId, SimError> {
        match self.lookup(frame, slot)? {
            SimValue::Signal(s) => Ok(s),
            other => Err(SimError::Type {
                expected: "a signal",
                got: other.to_string(),
            }),
        }
    }

    fn lookup_comp(&self, frame: &Frame, slot: Slot) -> Result<CompId, SimError> {
        match self.lookup(frame, slot)? {
            SimValue::Component(c) => Ok(c),
            other => Err(SimError::Type {
                expected: "a component",
                got: other.to_string(),
            }),
        }
    }

    fn lookup_buffer(&self, frame: &Frame, slot: Slot) -> Result<BufId, SimError> {
        match self.lookup(frame, slot)? {
            SimValue::Buffer(b) => Ok(b),
            other => Err(SimError::Type {
                expected: "a buffer",
                got: other.to_string(),
            }),
        }
    }

    fn lookup_conn(
        &self,
        frame: &Frame,
        slot: Option<Slot>,
    ) -> Result<Option<crate::value::ConnId>, SimError> {
        match slot {
            Some(s) => match self.lookup(frame, s)? {
                SimValue::Connection(id) => Ok(Some(id)),
                other => Err(SimError::Type {
                    expected: "a connection",
                    got: other.to_string(),
                }),
            },
            None => Ok(None),
        }
    }

    /// Evaluates subscript slots into a stack-allocated [`IndexBuf`] — no
    /// heap allocation on the per-access path.
    fn read_indices(
        &self,
        frame: &Frame,
        slots: &[Slot],
        out: &mut IndexBuf,
    ) -> Result<(), SimError> {
        for &s in slots {
            let v = self.lookup(frame, s)?;
            let i = v.as_int().ok_or_else(|| SimError::Type {
                expected: "an integer subscript",
                got: v.to_string(),
            })?;
            out.push(i.max(0) as usize);
        }
        Ok(())
    }

    // ---- frame stepping ----------------------------------------------------

    /// Interprets a *burst* of ops in `p`'s frame (stages 3 and 4 for
    /// in-frame operations): keeps stepping through zero-time ops, and
    /// through timed ops whenever no other event is due at or before this
    /// processor's advancing clock — those wakes would be the very next
    /// heap pop, so they are taken inline (still counted, so
    /// `events_processed` and the event-limit guard behave exactly as if
    /// each had gone through the heap). Returns `Yield` only when another
    /// processor must run first.
    fn step_frame(&mut self, p: usize) -> Result<Step, SimError> {
        let Some(mut frame) = self.procs[p].frame.take() else {
            return Ok(Step::Blocked); // unreachable: callers check the frame
        };
        let result = loop {
            match self.step_frame_inner(p, &mut frame) {
                Ok(Step::Continue) => {
                    // Zero-time op bursts never touch the scheduler loop, so
                    // poll cancellation/deadline on an op-count cadence too.
                    if self.ops_interpreted & (OP_EPOCH - 1) == 0 {
                        let clock = self.procs[p].clock;
                        if let Err(e) = self.check_epoch(clock) {
                            break Err(e);
                        }
                    }
                    continue;
                }
                Ok(Step::Yield) => {
                    let clock = self.procs[p].clock;
                    let contended = self
                        .heap
                        .peek()
                        .is_some_and(|&Reverse((t_top, _, _, _))| t_top <= clock);
                    // An armed snapshot cut behaves like contention: yield to
                    // the scheduler without counting a wake here — the
                    // resumed run's pop of the rescheduled wake counts it,
                    // exactly as the inline count would have.
                    let paused = self.snapshot_at.is_some_and(|cut| clock >= cut);
                    if contended || paused {
                        break Ok(Step::Yield);
                    }
                    // The virtual entry this inline wake stands for would
                    // have been scheduled at the pre-wake `now`.
                    self.ctx_born = self.now;
                    self.now = clock;
                    self.wakes += 1;
                    if let Err(e) = self.check_budget(clock) {
                        break Err(e);
                    }
                }
                other => break other,
            }
        };
        match &result {
            Ok(Step::Finished) => {
                // Frame dropped; done signal was resolved inside.
            }
            _ => self.procs[p].frame = Some(frame),
        }
        result
    }

    fn step_frame_inner(&mut self, p: usize, frame: &mut Frame) -> Result<Step, SimError> {
        // End-of-block handling: loops iterate, the root scope finishes.
        loop {
            let Some(scope) = frame.stack.last_mut() else {
                return self.finish_frame(p, frame, vec![]);
            };
            let block_len = self.module.block(scope.block).ops.len();
            if scope.idx < block_len {
                break;
            }
            match &mut scope.looping {
                Some(state) => {
                    if state.advance() && state.live() {
                        scope.idx = 0;
                        for (&iv, &val) in state.ivs.iter().zip(state.current.iter()) {
                            frame.env[iv as usize] = Some(SimValue::Int(val));
                        }
                    } else {
                        frame.stack.pop();
                    }
                    // A loop whose body runs no ops (empty block) burns no
                    // events and no cycles; bound these pure-bookkeeping
                    // spins so a huge trip count cannot hang the engine.
                    self.idle_steps += 1;
                    if self.idle_steps & (OP_EPOCH - 1) == 0 {
                        let clock = self.procs[p].clock;
                        if self.idle_steps > self.options.limits.max_events {
                            return Err(self.limit_err(
                                LimitKind::Events,
                                self.options.limits.max_events,
                                clock,
                            ));
                        }
                        self.check_epoch(clock)?;
                    }
                }
                None => {
                    frame.stack.pop();
                    if frame.stack.is_empty() {
                        return self.finish_frame(p, frame, vec![]);
                    }
                }
            }
        }

        // Fused-backend entry: when the current scope is a loop whose body
        // has a pre-compiled trace (and the run hasn't declined it), hand
        // the whole loop to the trace runner. It executes straight-line
        // instructions — bit-identical counters — and returns to the
        // event engine only at trace exits (contention, completion, limit
        // epochs). `Ok(None)` means the runtime preflight declined (e.g. a
        // cache-backed buffer): the run marks the block skipped and falls
        // through to the interpreter.
        if self.fused_on {
            let plan: &'m Plan = self.plan;
            if let Some(scope) = frame.stack.last() {
                if scope.looping.is_some() {
                    let bi = scope.block.index();
                    if let Some(f) = plan.fused.get(bi).and_then(|o| o.as_deref()) {
                        if !self.fused.skip[bi] {
                            if let Some(step) = self.run_fused(p, frame, f, bi)? {
                                self.fused_trace_entries += 1;
                                return Ok(step);
                            }
                        }
                    }
                }
            }
        }

        // The end-of-block loop above only breaks while the stack is
        // non-empty with `idx` in range.
        let Some(scope) = frame.stack.last_mut() else {
            return self.finish_frame(p, frame, vec![]);
        };
        let op = self.module.block(scope.block).ops[scope.idx];
        scope.idx += 1;
        if matches!(self.plan.ops[op.index()].code, OpCode::Erased) {
            return Ok(Step::Continue);
        }
        self.ops_interpreted += 1;
        self.exec_op(p, frame, op)
    }

    fn finish_frame(
        &mut self,
        p: usize,
        frame: &mut Frame,
        payload: Vec<SimValue>,
    ) -> Result<Step, SimError> {
        let clock = self.procs[p].clock;
        self.resolve_signal(frame.done, clock, payload);
        self.bump_horizon(clock);
        Ok(Step::Finished)
    }

    /// Binds an op's `index`-th result in the frame.
    fn bind(&self, frame: &mut Frame, info: &OpInfo, index: usize, value: SimValue) {
        frame.env[info.results[index] as usize] = Some(value);
    }

    /// Executes one pre-decoded op inside a frame. Returns how the
    /// scheduler should proceed.
    #[allow(clippy::too_many_lines)]
    fn exec_op(&mut self, p: usize, frame: &mut Frame, op: OpId) -> Result<Step, SimError> {
        // `plan` is a copy of the `&'m Plan` reference, so `info` borrows
        // the plan, not `self` — the machine/signal state stays mutable.
        let plan: &'m Plan = self.plan;
        let info = &plan.ops[op.index()];
        let clock = self.procs[p].clock;
        match &info.code {
            OpCode::Erased => Ok(Step::Continue),

            // ---- structure specification (elaboration, free) ----
            OpCode::CreateProc { kind } => {
                let profile = self.lib.proc_profile(kind);
                let comp = self.machine.add_processor(kind, profile.clone());
                self.add_proc_runtime(comp, profile);
                self.bind_group_comp(comp, op);
                self.bind(frame, info, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            OpCode::CreateMem {
                kind,
                shape,
                data_bits,
                banks,
                ports,
                attrs,
            } => {
                let capacity_elems = shape
                    .iter()
                    .try_fold(1usize, |acc, &d| acc.checked_mul(d))
                    .ok_or_else(|| {
                        SimError::Port(format!("memory shape {shape:?} capacity overflows"))
                    })?;
                let spec = MemSpec {
                    kind: kind.clone(),
                    capacity_elems,
                    data_bits: *data_bits,
                    banks: *banks,
                    attrs: attrs.clone(),
                };
                let behavior = self.lib.make_memory(&spec);
                let energy = spec
                    .attrs
                    .float("energy_pj")
                    .unwrap_or_else(|| self.lib.energy_per_access(kind));
                let comp = self.machine.add_memory_with_energy(
                    kind,
                    spec.capacity_elems,
                    *data_bits,
                    *banks,
                    ports.unwrap_or(self.lib.default_mem_ports),
                    behavior,
                    energy,
                );
                if self.par.is_some() {
                    if let Some(g) = self.plan.partition.group_of_mem_op(op.index()) {
                        self.comp_group.insert(comp.0, g);
                    }
                }
                self.bind(frame, info, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            OpCode::CreateDma => {
                let comp = self.machine.add_dma();
                self.add_proc_runtime(comp, SimLibrary::default_profile());
                self.bind_group_comp(comp, op);
                self.bind(frame, info, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            OpCode::CreateComp { names, children } => {
                if names.len() != children.len() {
                    return Err(SimError::Port(format!(
                        "create_comp has {} names for {} children",
                        names.len(),
                        children.len()
                    )));
                }
                let kids: Vec<CompId> = children
                    .iter()
                    .map(|&s| self.lookup_comp(frame, s))
                    .collect::<Result<_, _>>()?;
                let comp = self.machine.add_composite(names, &kids);
                self.bind(frame, info, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            OpCode::AddComp {
                names,
                target,
                children,
            } => {
                if names.len() != children.len() {
                    return Err(SimError::Port(format!(
                        "add_comp has {} names for {} children",
                        names.len(),
                        children.len()
                    )));
                }
                let target = self.lookup_comp(frame, *target)?;
                let kids: Vec<CompId> = children
                    .iter()
                    .map(|&s| self.lookup_comp(frame, s))
                    .collect::<Result<_, _>>()?;
                self.machine
                    .extend_composite(target, names, &kids)
                    .map_err(SimError::Port)?;
                Ok(Step::Continue)
            }
            OpCode::GetComp { target, child } => {
                let target = self.lookup_comp(frame, *target)?;
                let found = self.machine.child(target, child).ok_or_else(|| {
                    SimError::Port(format!(
                        "component '{}' has no child '{child}'",
                        self.machine.name(target)
                    ))
                })?;
                self.bind(frame, info, 0, SimValue::Component(found));
                Ok(Step::Continue)
            }
            OpCode::CreateConnection { kind, bandwidth } => {
                let conn = self.machine.add_connection(*kind, *bandwidth);
                if self.par.is_some() {
                    if let Some(g) = self.plan.partition.group_of_conn_op(op.index()) {
                        self.conn_group.insert(conn.0, g);
                    }
                }
                self.bind(frame, info, 0, SimValue::Connection(conn));
                Ok(Step::Continue)
            }

            // ---- data movement ----
            OpCode::Alloc {
                mem,
                shape,
                elem_bytes,
                is_int,
            } => {
                let mem = self.lookup_comp(frame, *mem)?;
                self.shard_conflict(mem);
                self.charge_tensor_bytes(shape, *elem_bytes, clock)?;
                let buf = self
                    .machine
                    .alloc_buffer(mem, shape.clone(), *elem_bytes, *is_int)
                    .map_err(SimError::Port)?;
                self.bind(frame, info, 0, SimValue::Buffer(buf));
                Ok(Step::Continue)
            }
            OpCode::MemrefAlloc {
                shape,
                elem_bytes,
                is_int,
            } => {
                self.charge_tensor_bytes(shape, *elem_bytes, clock)?;
                let host_mem = self.host_memory();
                let buf = self
                    .machine
                    .alloc_buffer(host_mem, shape.clone(), *elem_bytes, *is_int)
                    .map_err(SimError::Port)?;
                self.bind(frame, info, 0, SimValue::Buffer(buf));
                Ok(Step::Continue)
            }
            OpCode::Dealloc { buf } => {
                let buf = self.lookup_buffer(frame, *buf)?;
                if let Some(mem) = self.machine.buffers.get(buf.0 as usize).map(|b| b.mem) {
                    self.shard_conflict(mem);
                }
                let freed = self.machine.dealloc_buffer(buf);
                self.live_tensor_bytes = self.live_tensor_bytes.saturating_sub(freed as u64);
                Ok(Step::Continue)
            }
            OpCode::Read {
                buffer,
                indices,
                conn,
            } => {
                let buf = self.lookup_buffer(frame, *buffer)?;
                let mut idx = IndexBuf::default();
                self.read_indices(frame, indices, &mut idx)?;
                let conn = self.lookup_conn(frame, *conn)?;
                let (value, end) = self.access_buffer(
                    p,
                    AccessKind::Read,
                    buf,
                    idx.as_slice(),
                    None,
                    conn,
                    clock,
                )?;
                let value = value
                    .ok_or_else(|| SimError::Runtime("internal: read produced no value".into()))?;
                self.bind(frame, info, 0, value);
                self.advance(p, end)
            }
            OpCode::Write {
                value,
                buffer,
                indices,
                conn,
            } => {
                let value = self.lookup(frame, *value)?;
                let buf = self.lookup_buffer(frame, *buffer)?;
                let mut idx = IndexBuf::default();
                self.read_indices(frame, indices, &mut idx)?;
                let conn = self.lookup_conn(frame, *conn)?;
                let (_, end) = self.access_buffer(
                    p,
                    AccessKind::Write,
                    buf,
                    idx.as_slice(),
                    Some(value),
                    conn,
                    clock,
                )?;
                self.advance(p, end)
            }
            OpCode::AffineLoad { buffer, indices } => {
                let buf = self.lookup_buffer(frame, *buffer)?;
                let mut idx = IndexBuf::default();
                self.read_indices(frame, indices, &mut idx)?;
                let (value, _) = self.access_buffer(
                    p,
                    AccessKind::Read,
                    buf,
                    idx.as_slice(),
                    None,
                    None,
                    clock,
                )?;
                let value = value
                    .ok_or_else(|| SimError::Runtime("internal: load produced no value".into()))?;
                self.bind(frame, info, 0, value);
                let cycles = self.procs[p].hot.load;
                self.advance(p, clock + cycles)
            }
            OpCode::AffineStore {
                value,
                buffer,
                indices,
            } => {
                let value = self.lookup(frame, *value)?;
                let buf = self.lookup_buffer(frame, *buffer)?;
                let mut idx = IndexBuf::default();
                self.read_indices(frame, indices, &mut idx)?;
                self.access_buffer(
                    p,
                    AccessKind::Write,
                    buf,
                    idx.as_slice(),
                    Some(value),
                    None,
                    clock,
                )?;
                let cycles = self.procs[p].hot.store;
                self.advance(p, clock + cycles)
            }

            // ---- events and control ----
            OpCode::Memcpy {
                dep,
                src,
                dst,
                dma,
                conn,
            } => {
                let dep = self.lookup_signal(frame, *dep)?;
                let src = self.lookup_buffer(frame, *src)?;
                let dst = self.lookup_buffer(frame, *dst)?;
                let dma = self.lookup_comp(frame, *dma)?;
                self.shard_conflict(dma);
                let conn = self.lookup_conn(frame, *conn)?;
                let done = self.signals.fresh();
                self.bind(frame, info, 0, SimValue::Signal(done));
                let target = *self.proc_of_comp.get(&dma).ok_or_else(|| {
                    SimError::Port(format!(
                        "memcpy target '{}' is not an executor",
                        self.machine.name(dma)
                    ))
                })?;
                self.events_spawned += 1;
                self.procs[target].queue.push_back(PendingEvent {
                    kind: EventKind::Memcpy { src, dst, conn },
                    dep,
                    done,
                });
                self.schedule(clock, target);
                Ok(Step::Continue)
            }
            OpCode::Launch(l) => {
                let dep = self.lookup_signal(frame, l.dep)?;
                let proc_comp = self.lookup_comp(frame, l.proc)?;
                self.shard_conflict(proc_comp);
                // Snapshot exactly the values the body references (the
                // pre-computed capture map), then bind explicit captures
                // to block args. Copy-on-write makes each copy cheap.
                let mut env: Vec<Option<SimValue>> = vec![None; l.frame_len];
                for &(src, dst) in &l.captures {
                    if let Some(v) = &frame.env[src as usize] {
                        let v = if let SimValue::Deferred { signal, index } = *v {
                            self.signals
                                .payload(signal)
                                .get(index)
                                .cloned()
                                .unwrap_or(SimValue::Deferred { signal, index })
                        } else {
                            v.clone()
                        };
                        env[dst as usize] = Some(v);
                    }
                }
                for &(src, dst) in &l.arg_binds {
                    env[dst as usize] = Some(self.lookup_lazy(frame, src)?);
                }
                let done = self.signals.fresh();
                self.bind(frame, info, 0, SimValue::Signal(done));
                for i in 1..info.results.len() {
                    frame.env[info.results[i] as usize] = Some(SimValue::Deferred {
                        signal: done,
                        index: i - 1,
                    });
                }
                let target = *self.proc_of_comp.get(&proc_comp).ok_or_else(|| {
                    SimError::Port(format!(
                        "launch target '{}' is not an executor",
                        self.machine.name(proc_comp)
                    ))
                })?;
                self.events_spawned += 1;
                self.procs[target].queue.push_back(PendingEvent {
                    kind: EventKind::Launch { op, env },
                    dep,
                    done,
                });
                self.schedule(clock, target);
                Ok(Step::Continue)
            }
            OpCode::ControlStart => {
                let sig = self.signals.resolved_at(clock);
                self.bind(frame, info, 0, SimValue::Signal(sig));
                Ok(Step::Continue)
            }
            OpCode::Control { and, deps } => {
                let deps: Vec<SignalId> = deps
                    .iter()
                    .map(|&s| self.lookup_signal(frame, s))
                    .collect::<Result<_, _>>()?;
                for &d in &deps {
                    self.observe_signal(d);
                }
                let sig = if *and {
                    self.signals.new_and(&deps)
                } else {
                    self.signals.new_or(&deps)
                };
                self.bind(frame, info, 0, SimValue::Signal(sig));
                Ok(Step::Continue)
            }
            OpCode::Await { deps } => {
                let mut latest = clock;
                for &d in deps {
                    let sig = self.lookup_signal(frame, d)?;
                    self.observe_signal(sig);
                    match self.signals.resolve_time(sig) {
                        Some(t) => latest = latest.max(t),
                        None => {
                            // Re-run this await when the signal fires. The
                            // await restarts from its first dependency, so
                            // registering on the first unresolved one is
                            // enough — later ones are (re-)checked then.
                            self.subscribe(sig, p);
                            if let Some(scope) = frame.stack.last_mut() {
                                scope.idx -= 1;
                            }
                            return Ok(Step::Blocked);
                        }
                    }
                }
                self.procs[p].clock = latest;
                Ok(Step::Continue)
            }
            OpCode::Return { values } => {
                let payload: Vec<SimValue> = values
                    .iter()
                    .map(|&s| self.lookup(frame, s))
                    .collect::<Result<_, _>>()?;
                self.finish_frame(p, frame, payload)
            }
            OpCode::ExtOp { sig, cycles } => {
                let cycles = cycles.ok_or_else(|| {
                    SimError::Unsupported(format!(
                        "no simulator-library implementation for equeue.op signature '{sig}'"
                    ))
                })?;
                for i in 0..info.results.len() {
                    self.bind(frame, info, i, SimValue::Unit);
                }
                let end = clock.saturating_add(cycles);
                if self.trace.is_enabled() {
                    let tid = self.machine.name(self.procs[p].comp).to_string();
                    self.trace
                        .record(sig, TraceCat::Operation, clock, cycles, "Processor", &tid);
                }
                self.advance(p, end)
            }

            // ---- loops ----
            OpCode::For {
                lower,
                upper,
                step,
                body,
                iv,
            } => {
                if lower < upper {
                    frame.env[*iv as usize] = Some(SimValue::Int(*lower));
                    frame.stack.push(Scope {
                        block: *body,
                        idx: 0,
                        looping: Some(LoopState {
                            ivs: vec![*iv],
                            lowers: vec![*lower],
                            uppers: vec![*upper],
                            steps: vec![*step],
                            current: vec![*lower],
                        }),
                    });
                }
                Ok(Step::Continue)
            }
            OpCode::Parallel {
                lowers,
                uppers,
                steps,
                body,
                ivs,
            } => {
                // Interpreted sequentially at the Affine level; the
                // --parallel-to-equeue pass lowers it to true concurrency.
                let live = lowers.iter().zip(uppers).all(|(l, u)| l < u);
                if live {
                    for (&iv, &v) in ivs.iter().zip(lowers.iter()) {
                        frame.env[iv as usize] = Some(SimValue::Int(v));
                    }
                    frame.stack.push(Scope {
                        block: *body,
                        idx: 0,
                        looping: Some(LoopState {
                            ivs: ivs.clone(),
                            lowers: lowers.clone(),
                            uppers: uppers.clone(),
                            steps: steps.clone(),
                            current: lowers.clone(),
                        }),
                    });
                }
                Ok(Step::Continue)
            }
            OpCode::Yield => Ok(Step::Continue),

            // ---- linalg (analytic + functional) ----
            OpCode::Conv2d {
                dims,
                ifmap,
                weights,
                ofmap,
            } => self.exec_conv2d(p, frame, *dims, *ifmap, *weights, *ofmap),
            OpCode::Matmul { a, b, c } => self.exec_matmul(p, frame, *a, *b, *c),
            OpCode::Fill { scalar, buffer } => self.exec_fill(p, frame, *scalar, *buffer),

            // ---- arith ----
            OpCode::Constant(v) => {
                self.bind(frame, info, 0, v.clone());
                Ok(Step::Continue)
            }
            OpCode::Cmpi { pred, lhs, rhs } => {
                let a = self.lookup(frame, *lhs)?;
                let b = self.lookup(frame, *rhs)?;
                let v = apply_cmpi(pred, &a, &b).map_err(SimError::Runtime)?;
                self.bind(frame, info, 0, v);
                let cycles = self.procs[p].hot.cmpi;
                self.advance(p, clock + cycles)
            }
            OpCode::Select {
                cond,
                on_true,
                on_false,
            } => {
                let c = self.lookup(frame, *cond)?;
                let v = if c.as_int().unwrap_or(0) != 0 {
                    self.lookup(frame, *on_true)?
                } else {
                    self.lookup(frame, *on_false)?
                };
                self.bind(frame, info, 0, v);
                let cycles = self.procs[p].hot.select;
                self.advance(p, clock + cycles)
            }
            OpCode::Binary {
                kind,
                name,
                lhs,
                rhs,
                index_typed,
            } => {
                let a = self.lookup(frame, *lhs)?;
                let b = self.lookup(frame, *rhs)?;
                // Scalar fast path on the pre-decoded operator; tensors,
                // promotions, and unknown names take the generic route.
                let v = match (kind, &a, &b) {
                    (Some(op), SimValue::Int(x), SimValue::Int(y)) => {
                        SimValue::Int(op.int(*x, *y).map_err(SimError::Runtime)?)
                    }
                    (Some(op), SimValue::Float(x), SimValue::Float(y)) => {
                        SimValue::Float(op.float(*x, *y))
                    }
                    _ => apply_binary(name, &a, &b).map_err(SimError::Runtime)?,
                };
                self.bind(frame, info, 0, v);
                // Index-typed arithmetic is address generation, which the
                // memory pipeline absorbs; it costs no datapath cycles.
                let cycles = if *index_typed {
                    0
                } else {
                    match kind {
                        Some(op) => self.procs[p].hot.arith[*op as usize],
                        None => self.procs[p].profile.cycles(name),
                    }
                };
                if cycles > 0 && self.trace.is_enabled() {
                    let tid = self.machine.name(self.procs[p].comp).to_string();
                    self.trace
                        .record(name, TraceCat::Operation, clock, cycles, "Processor", &tid);
                }
                self.advance(p, clock + cycles)
            }

            OpCode::Invalid { op, msg } => Err(SimError::Layout {
                op: op.clone(),
                msg: msg.clone(),
            }),
            OpCode::Unsupported(name) => Err(SimError::Unsupported(format!(
                "op '{name}' is not simulatable"
            ))),
        }
    }

    /// A timed read/write of a buffer: reserves the memory's schedule queue
    /// and the optional connection, records traffic and trace, and applies
    /// the data effect. Returns `(read value, finish time)`.
    #[allow(clippy::too_many_arguments)]
    fn access_buffer(
        &mut self,
        p: usize,
        kind: AccessKind,
        buf: BufId,
        indices: &[usize],
        value: Option<SimValue>,
        conn: Option<crate::value::ConnId>,
        start: u64,
    ) -> Result<(Option<SimValue>, u64), SimError> {
        let (mem, elem_bytes, base_addr, total_elems, flat) = {
            let b = self.machine.buffer(buf);
            let flat = if indices.is_empty() {
                None
            } else {
                Some(
                    b.data
                        .try_flatten_index(indices)
                        .map_err(SimError::Runtime)?,
                )
            };
            (b.mem, b.elem_bytes, b.base_addr, b.elems(), flat)
        };
        let elems = if indices.is_empty() { total_elems } else { 1 };
        let bytes = (elems * elem_bytes) as u64;
        let addr = base_addr + flat.unwrap_or(0);
        // Fused latency + port reservation + traffic accounting: one
        // component borrow per access (see [`Memory::access`]); zero-latency
        // memories skip the port scan.
        let (mstart, mend, mem_cycles) = self
            .machine
            .memory_mut(mem)
            .ok_or_else(|| SimError::Runtime("internal: buffer not backed by a memory".into()))?
            .access(kind, addr, elems, bytes, start);
        let mut end = mend;
        let mut astart = if mem_cycles > 0 { mstart } else { start };
        if let Some(c) = conn {
            let (cstart, cend) = self
                .machine
                .connection_mut(c)
                .reserve_spanning(kind, start, bytes, mem_cycles);
            end = end.max(cend);
            astart = astart.max(cstart.min(end));
        }

        // Data effect.
        let out = match kind {
            AccessKind::Read => {
                let b = self.machine.buffer(buf);
                match flat {
                    None if total_elems == 1 => Some(element_value(&b.data, 0)),
                    // Copy-on-write: cloning the tensor is an Arc bump.
                    None => Some(SimValue::Tensor(b.data.clone())),
                    Some(flat) => Some(element_value(&b.data, flat)),
                }
            }
            AccessKind::Write => {
                let v = value
                    .ok_or_else(|| SimError::Runtime("internal: write without a value".into()))?;
                let b = self.machine.buffer_mut(buf);
                write_value(b, flat, v).map_err(SimError::Runtime)?;
                None
            }
        };

        // Trace: stall slot (schedule-queue wait) then the operation slot.
        if end > start && self.trace.is_enabled() {
            let tid = self.machine.name(self.procs[p].comp).to_string();
            if astart > start {
                self.trace.record(
                    "stall",
                    TraceCat::Stall,
                    start,
                    astart - start,
                    "Processor",
                    &tid,
                );
            }
            let opname = match kind {
                AccessKind::Read => "equeue.read",
                AccessKind::Write => "equeue.write",
            };
            self.trace.record(
                opname,
                TraceCat::Operation,
                astart,
                end - astart,
                "Processor",
                &tid,
            );
        }
        Ok((out, end))
    }

    fn exec_conv2d(
        &mut self,
        p: usize,
        frame: &mut Frame,
        dims: ConvDims,
        ifmap: Slot,
        weights: Slot,
        ofmap: Slot,
    ) -> Result<Step, SimError> {
        let ifmap = self.lookup_buffer(frame, ifmap)?;
        let weights = self.lookup_buffer(frame, weights)?;
        let ofmap = self.lookup_buffer(frame, ofmap)?;
        self.shard_conflict_buffers(&[ifmap, weights, ofmap]);
        // Structural validation before the functional kernel: the filter
        // must fit inside the input, and every operand buffer must hold
        // exactly the elements the dims describe — `conv2d_int` indexes
        // against these products.
        if dims.fh > dims.h || dims.fw > dims.w {
            return Err(SimError::Runtime(format!(
                "conv2d filter {}x{} larger than input {}x{}",
                dims.fh, dims.fw, dims.h, dims.w
            )));
        }
        let (eh, ew) = (dims.h - dims.fh + 1, dims.w - dims.fw + 1);
        let product = |parts: &[usize]| parts.iter().try_fold(1usize, |a, &d| a.checked_mul(d));
        let sizes = (
            product(&[dims.c, dims.h, dims.w]),
            product(&[dims.n, dims.c, dims.fh, dims.fw]),
            product(&[dims.n, eh, ew]),
            product(&[eh, ew, dims.n, dims.fh, dims.fw, dims.c]),
        );
        let (Some(ifmap_elems), Some(weight_elems), Some(ofmap_elems), Some(macs)) = sizes else {
            return Err(SimError::Runtime("conv2d dimensions overflow".into()));
        };
        // Functional result.
        let iv = int_data(&self.machine.buffer(ifmap).data)?;
        let wv = int_data(&self.machine.buffer(weights).data)?;
        let out_elems = self.machine.buffer(ofmap).elems();
        if iv.len() != ifmap_elems || wv.len() != weight_elems || out_elems != ofmap_elems {
            return Err(SimError::Runtime(format!(
                "conv2d operand sizes ({}, {}, {out_elems}) do not match dims \
                 ({ifmap_elems}, {weight_elems}, {ofmap_elems})",
                iv.len(),
                wv.len()
            )));
        }
        let mut ov = vec![0i64; ofmap_elems];
        conv2d_int(
            &iv, &wv, &mut ov, dims.c, dims.h, dims.w, dims.n, dims.fh, dims.fw,
        );
        set_int_data(&mut self.machine.buffer_mut(ofmap).data, ov);
        // Analytic timing: a naive scalar schedule costs
        // `linalg_cycles_per_mac` per MAC, streaming operands once.
        let clock = self.procs[p].clock;
        let cycles = (macs as u64).saturating_mul(self.lib.linalg_cycles_per_mac);
        for (buf, kind) in [
            (ifmap, AccessKind::Read),
            (weights, AccessKind::Read),
            (ofmap, AccessKind::Write),
        ] {
            let (mem, bytes) = {
                let b = self.machine.buffer(buf);
                (b.mem, b.bytes() as u64)
            };
            if let Some(m) = self.machine.memory_mut(mem) {
                m.count(kind, bytes);
            }
        }
        if self.trace.is_enabled() {
            let tid = self.machine.name(self.procs[p].comp).to_string();
            self.trace.record(
                "linalg.conv2d",
                TraceCat::Operation,
                clock,
                cycles,
                "Processor",
                &tid,
            );
        }
        self.advance(p, clock.saturating_add(cycles))
    }

    fn exec_matmul(
        &mut self,
        p: usize,
        frame: &mut Frame,
        a: Slot,
        b: Slot,
        c: Slot,
    ) -> Result<Step, SimError> {
        let a = self.lookup_buffer(frame, a)?;
        let b = self.lookup_buffer(frame, b)?;
        let c = self.lookup_buffer(frame, c)?;
        self.shard_conflict_buffers(&[a, b, c]);
        // Structural validation before the functional kernel: rank-2
        // operands with agreeing inner dimensions — `matmul_int` indexes
        // against these products.
        let rank2 = |buf: BufId| -> Result<(usize, usize), SimError> {
            let s = &self.machine.buffer(buf).shape;
            match s[..] {
                [rows, cols] => Ok((rows, cols)),
                _ => Err(SimError::Runtime(format!(
                    "matmul operand must be rank-2, got shape {s:?}"
                ))),
            }
        };
        let (m, k) = rank2(a)?;
        let (bk, n) = rank2(b)?;
        let (cm, cn) = rank2(c)?;
        if bk != k || cm != m || cn != n {
            return Err(SimError::Runtime(format!(
                "matmul shape mismatch: {m}x{k} * {bk}x{n} -> {cm}x{cn}"
            )));
        }
        let product = |parts: &[usize]| parts.iter().try_fold(1usize, |x, &d| x.checked_mul(d));
        let sizes = (
            product(&[m, k]),
            product(&[k, n]),
            product(&[m, n]),
            product(&[m, n, k]),
        );
        let (Some(a_elems), Some(b_elems), Some(out_elems), Some(mac_count)) = sizes else {
            return Err(SimError::Runtime("matmul dimensions overflow".into()));
        };
        let av = int_data(&self.machine.buffer(a).data)?;
        let bv = int_data(&self.machine.buffer(b).data)?;
        if av.len() != a_elems || bv.len() != b_elems {
            return Err(SimError::Runtime(format!(
                "matmul operand sizes ({}, {}) do not match shapes {m}x{k}, {k}x{n}",
                av.len(),
                bv.len()
            )));
        }
        let mut cv = vec![0i64; out_elems];
        matmul_int(&av, &bv, &mut cv, m, k, n);
        set_int_data(&mut self.machine.buffer_mut(c).data, cv);
        let clock = self.procs[p].clock;
        let cycles = (mac_count as u64).saturating_mul(self.lib.linalg_cycles_per_mac);
        if self.trace.is_enabled() {
            let tid = self.machine.name(self.procs[p].comp).to_string();
            self.trace.record(
                "linalg.matmul",
                TraceCat::Operation,
                clock,
                cycles,
                "Processor",
                &tid,
            );
        }
        self.advance(p, clock.saturating_add(cycles))
    }

    fn exec_fill(
        &mut self,
        p: usize,
        frame: &mut Frame,
        scalar: Slot,
        buffer: Slot,
    ) -> Result<Step, SimError> {
        let scalar = self.lookup(frame, scalar)?;
        let buf = self.lookup_buffer(frame, buffer)?;
        self.shard_conflict_buffers(&[buf]);
        let elems = self.machine.buffer(buf).elems();
        let b = self.machine.buffer_mut(buf);
        match (&mut b.data.data, &scalar) {
            (TensorData::Int(ints), s) => {
                let x = s
                    .as_int()
                    .ok_or_else(|| SimError::Runtime("fill type mismatch".into()))?;
                b.data.data = TensorData::from_ints(vec![x; ints.len()]);
            }
            (TensorData::Float(floats), s) => {
                let x = s
                    .as_float()
                    .ok_or_else(|| SimError::Runtime("fill type mismatch".into()))?;
                b.data.data = TensorData::from_floats(vec![x; floats.len()]);
            }
        }
        let clock = self.procs[p].clock;
        let cycles = elems as u64;
        self.advance(p, clock.saturating_add(cycles))
    }

    /// Advances the processor's clock to `end`; yields when time passed.
    fn advance(&mut self, p: usize, end: u64) -> Result<Step, SimError> {
        let clock = self.procs[p].clock;
        if end > clock {
            self.procs[p].clock = end;
            self.bump_horizon(end);
            Ok(Step::Yield)
        } else {
            Ok(Step::Continue)
        }
    }

    /// Accounts a pending tensor allocation against `max_live_tensor_bytes`
    /// — checked *before* the backing store is allocated, so an oversized
    /// request errors out instead of exhausting host memory.
    fn charge_tensor_bytes(
        &mut self,
        shape: &[usize],
        elem_bytes: usize,
        t: u64,
    ) -> Result<(), SimError> {
        let bytes = shape
            .iter()
            .try_fold(elem_bytes, |acc, &d| acc.checked_mul(d))
            .ok_or_else(|| SimError::Port(format!("allocation of shape {shape:?} overflows")))?
            as u64;
        self.live_tensor_bytes = self.live_tensor_bytes.saturating_add(bytes);
        self.peak_live_tensor_bytes = self.peak_live_tensor_bytes.max(self.live_tensor_bytes);
        let lim = self.options.limits.max_live_tensor_bytes;
        if self.live_tensor_bytes > lim {
            return Err(self.limit_err(LimitKind::LiveTensorBytes, lim, t));
        }
        Ok(())
    }

    /// The implicit host memory backing `memref.alloc` (unbounded,
    /// register-speed).
    fn host_memory(&mut self) -> CompId {
        if let Some(m) = self.host_mem {
            return m;
        }
        let m = self.machine.add_memory_with_energy(
            "HostMem",
            usize::MAX / 2,
            32,
            1,
            1,
            Box::new(RegisterBehavior),
            0.0,
        );
        self.host_mem = Some(m);
        m
    }
}

fn element_value(t: &Tensor, flat: usize) -> SimValue {
    match &t.data {
        TensorData::Int(v) => SimValue::Int(v[flat]),
        TensorData::Float(v) => SimValue::Float(v[flat]),
    }
}

/// Borrowed view of an integer payload (an Arc clone, not a data copy).
fn int_data(t: &Tensor) -> Result<std::sync::Arc<Vec<i64>>, SimError> {
    match &t.data {
        TensorData::Int(v) => Ok(v.clone()),
        TensorData::Float(_) => Err(SimError::Unsupported(
            "linalg ops require integer buffers in this model".into(),
        )),
    }
}

fn set_int_data(t: &mut Tensor, v: Vec<i64>) {
    t.data = TensorData::from_ints(v);
}

/// Writes `value` into `buffer`: whole-buffer when `flat` is `None`,
/// element-wise at the pre-flattened index otherwise.
fn write_value(
    buffer: &mut crate::machine::Buffer,
    flat: Option<usize>,
    value: SimValue,
) -> Result<(), String> {
    use std::sync::Arc;
    let Some(flat) = flat else {
        match (&mut buffer.data.data, value) {
            (TensorData::Int(dst), SimValue::Tensor(t)) => match t.data {
                TensorData::Int(src) => {
                    if src.len() != dst.len() {
                        return Err(format!(
                            "write size mismatch: value {} elems, buffer {} elems",
                            src.len(),
                            dst.len()
                        ));
                    }
                    // Whole-tensor write: share the payload (copy-on-write).
                    buffer.data.data = TensorData::Int(src);
                }
                TensorData::Float(_) => {
                    return Err("write mixes float tensor into int buffer".into())
                }
            },
            (TensorData::Float(dst), SimValue::Tensor(t)) => match t.data {
                TensorData::Float(src) => {
                    if src.len() != dst.len() {
                        return Err("write size mismatch".into());
                    }
                    buffer.data.data = TensorData::Float(src);
                }
                TensorData::Int(_) => return Err("write mixes int tensor into float buffer".into()),
            },
            (TensorData::Int(dst), SimValue::Int(v)) => {
                Arc::make_mut(dst).iter_mut().for_each(|e| *e = v);
            }
            (TensorData::Float(dst), SimValue::Float(v)) => {
                Arc::make_mut(dst).iter_mut().for_each(|e| *e = v);
            }
            (TensorData::Float(dst), SimValue::Int(v)) => {
                Arc::make_mut(dst).iter_mut().for_each(|e| *e = v as f64);
            }
            (_, SimValue::Unit) => {} // opaque ext-op results: timing-only
            (_, other) => return Err(format!("cannot write {other} into buffer")),
        }
        return Ok(());
    };
    match (&mut buffer.data.data, value) {
        (TensorData::Int(dst), SimValue::Int(v)) => {
            let dst = Arc::make_mut(dst);
            let slot = dst
                .get_mut(flat)
                .ok_or_else(|| format!("write index {flat} out of range"))?;
            *slot = v;
        }
        (TensorData::Float(dst), SimValue::Float(v)) => {
            let dst = Arc::make_mut(dst);
            let slot = dst
                .get_mut(flat)
                .ok_or_else(|| format!("write index {flat} out of range"))?;
            *slot = v;
        }
        (TensorData::Float(dst), SimValue::Int(v)) => {
            let dst = Arc::make_mut(dst);
            let slot = dst
                .get_mut(flat)
                .ok_or_else(|| format!("write index {flat} out of range"))?;
            *slot = v as f64;
        }
        (_, SimValue::Unit) => {}
        (_, other) => return Err(format!("cannot write {other} at index")),
    }
    Ok(())
}
#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{kinds, ArithBuilder, EqueueBuilder};
    use equeue_ir::OpBuilder;

    /// Fig. 2a-style toy program: kernel launches work on two PEs after a
    /// DMA copy; both PEs start simultaneously.
    #[test]
    fn toy_accelerator_runs() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let kernel = b.create_proc(kinds::ARM_R6);
        let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let dma = b.create_dma();
        let _accel = b.create_comp(&["Kernel", "SRAM", "DMA"], vec![kernel, sram, dma]);
        let pe0 = b.create_proc(kinds::MAC);
        let reg0 = b.create_mem(kinds::REGISTER, &[4], 32, 1);
        let pe1 = b.create_proc(kinds::MAC);
        let reg1 = b.create_mem(kinds::REGISTER, &[4], 32, 1);

        let src = b.alloc(sram, &[4], equeue_ir::Type::I32);
        let b0 = b.alloc(reg0, &[4], equeue_ir::Type::I32);
        let b1 = b.alloc(reg1, &[4], equeue_ir::Type::I32);

        let start = b.control_start();
        let outer = b.launch(start, kernel, &[], vec![]);
        {
            let mut ob = OpBuilder::at_end(b.module_mut(), outer.body);
            let copy_dep = ob.control_start();
            let launch_dep = ob.memcpy(copy_dep, src, b0, dma, None);
            let l0 = ob.launch(launch_dep, pe0, &[b0], vec![]);
            {
                let mut ib = OpBuilder::at_end(ob.module_mut(), l0.body);
                let ifmap = ib.read(l0.body_args[0], None);
                let four = ib.const_int(4, equeue_ir::Type::I32);
                let _sum = ib.addi(ifmap, four);
                ib.ret(vec![]);
            }
            let mut ob = OpBuilder::at_end(&mut m, outer.body);
            let l1 = ob.launch(launch_dep, pe1, &[b1], vec![]);
            {
                let mut ib = OpBuilder::at_end(ob.module_mut(), l1.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            let mut ob = OpBuilder::at_end(&mut m, outer.body);
            ob.await_all(vec![l0.done, l1.done]);
            ob.ret(vec![]);
        }
        let outer_done = outer.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![outer_done]);

        let report = simulate(&m).expect("simulation");
        // memcpy of 4x4B from 4-bank SRAM: 1 cycle; then PE work: addi
        // (tensor add) 1 cycle on pe0, mac 1 cycle on pe1 in parallel.
        assert_eq!(report.cycles, 2);
        assert!(report.memory_named("SRAM").unwrap().bytes_read >= 16);
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn launch_results_pass_values() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let x = ib.const_int(20, Type::I32);
            let y = ib.const_int(22, Type::I32);
            let s = ib.addi(x, y);
            ib.ret(vec![s]);
        }
        let (done, result) = (l.done, l.results[0]);
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        // Use the result in a second launch.
        let pe2 = b.create_proc(kinds::MAC);
        let l2 = b.launch(done, pe2, &[result], vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l2.body);
            let one = ib.const_int(1, Type::I32);
            let s = ib.addi(l2.body_args[0], one);
            ib.ret(vec![s]);
        }
        let done2 = l2.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done2]);
        let report = simulate(&m).expect("simulation");
        // addi on pe (1 cycle), then addi on pe2 (1 cycle), serialised by dep.
        assert_eq!(report.cycles, 2);
    }

    #[test]
    fn queue_is_fifo_per_processor() {
        // Two launches on one PE issue in order even with resolved deps.
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let mut dones = vec![];
        for _ in 0..3 {
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let all = b.control_and(dones);
        b.await_all(vec![all]);
        let report = simulate(&m).unwrap();
        assert_eq!(report.cycles, 3); // serialised: one proc
    }

    #[test]
    fn parallel_procs_overlap() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let mut dones = vec![];
        for _ in 0..3 {
            let pe = b.create_proc(kinds::MAC);
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let all = b.control_and(dones);
        b.await_all(vec![all]);
        let report = simulate(&m).unwrap();
        assert_eq!(report.cycles, 1); // all three in parallel
    }

    #[test]
    fn deadlock_detected() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l1 = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l1.body);
            ib.ret(vec![]);
        }
        // A launch depending on a signal that never fires (l2 depends on
        // l3's done, which depends on l2's done — no way to build that in
        // SSA; instead: await on a control_and that includes a signal from
        // a launch queued *behind* the awaiting frame on the same proc).
        let mut b = OpBuilder::at_end(&mut m, blk);
        let l2 = b.launch(l1.done, pe, &[], vec![]);
        {
            // This frame awaits a signal produced by an event that can only
            // run on the same processor *after* this frame finishes: deadlock.
            let mut ib = OpBuilder::at_end(b.module_mut(), l2.body);
            let inner_start = ib.control_start();
            let l3 = ib.launch(inner_start, pe, &[], vec![]);
            {
                let mut ib2 = OpBuilder::at_end(ib.module_mut(), l3.body);
                ib2.ret(vec![]);
            }
            let mut ib = OpBuilder::at_end(&mut m, l2.body);
            ib.await_all(vec![l3.done]);
            ib.ret(vec![]);
        }
        let err = simulate(&m).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "{err}");
    }

    #[test]
    fn affine_loop_executes() {
        use equeue_dialect::AffineBuilder;
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::ARM_R5);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let buf = b.alloc(mem, &[8], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, body, iv) = ib.affine_for(0, 8, 1);
            {
                let mut lb = OpBuilder::at_end(ib.module_mut(), body);
                let c = lb.const_int(7, Type::I32);
                lb.write_indexed(c, l.body_args[0], vec![iv], None);
                lb.affine_yield();
            }
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let report = simulate(&m).unwrap();
        // 8 single-element SRAM writes at 1 cycle each.
        assert_eq!(report.cycles, 8);
        assert_eq!(report.memory_named("SRAM").unwrap().writes, 8);
    }

    #[test]
    fn ext_op_unknown_signature_errors() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ext_op("warp_drive", vec![], vec![]);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let err = simulate(&m).unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)), "{err}");
    }

    #[test]
    fn malformed_dead_op_does_not_poison_simulation() {
        // A wrong-arity op the program never executes (dead code after
        // `equeue.return`) must not break the prepass: it decodes to
        // `OpCode::Invalid` and errors only if actually run — the lazy
        // semantics of the original interpreter.
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ext_op("mac", vec![], vec![]);
            ib.ret(vec![]);
            // Dead and malformed: get_comp with zero operands.
            ib.op("equeue.get_comp").attr("name", "kid").finish();
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let report = simulate(&m).expect("malformed dead op must be ignored");
        assert_eq!(report.cycles, 1);
    }

    #[test]
    fn malformed_op_errors_only_when_executed() {
        // The same wrong-arity op on the live path raises a layout error
        // (not a panic).
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.op("equeue.get_comp").attr("name", "kid").finish();
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let err = simulate(&m).unwrap_err();
        assert!(matches!(err, SimError::Layout { .. }), "{err}");
        assert!(err.to_string().contains("equeue.get_comp"), "{err}");
    }

    #[test]
    fn disabled_trace_stays_empty() {
        // With `trace: false` the engine must produce an empty Trace —
        // and (by construction) skip all trace formatting on the hot path.
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let mem = b.create_mem(kinds::SRAM, &[16], 32, 4);
        let buf = b.alloc(mem, &[8], Type::I32);
        let dma = b.create_dma();
        let dst_mem = b.create_mem(kinds::REGISTER, &[8], 32, 1);
        let dst = b.alloc(dst_mem, &[8], Type::I32);
        let start = b.control_start();
        let copied = b.memcpy(start, buf, dst, dma, None);
        let l = b.launch(copied, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], None);
            ib.ext_op("mac", vec![], vec![]);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);

        let lib = SimLibrary::standard();
        let quiet = SimOptions {
            trace: false,
            ..Default::default()
        };
        let report = simulate_with(&m, &lib, &quiet).unwrap();
        assert!(report.trace.is_empty());
        assert!(!report.trace.is_enabled());
        // Same program with tracing on records events — and the same cycles.
        let loud = simulate(&m).unwrap();
        assert!(!loud.trace.is_empty());
        assert_eq!(loud.cycles, report.cycles);
    }

    #[test]
    fn connection_limits_read_bandwidth() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::AI_ENGINE);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 64);
        let buf = b.alloc(mem, &[16], Type::I32); // 64 bytes
        let conn = b.create_connection(ConnKind::Streaming, 4); // 4 B/cyc
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf, conn], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], Some(l.body_args[1]));
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let report = simulate(&m).unwrap();
        // 64 bytes over 4 B/cyc = 16 cycles (memory side is 1 cycle).
        assert_eq!(report.cycles, 16);
        let conn_report = &report.connections[0];
        assert_eq!(conn_report.read.bytes, 64);
        assert!((conn_report.read.max_bw - 4.0).abs() < 1e-9);
    }
}
