//! The generic timed discrete-event simulation engine (§IV).
//!
//! The engine executes an EQueue program directly. It follows the paper's
//! four-stage loop, realised as an event-driven scheduler:
//!
//! 1. **Set up entry** — every processor holds at most one active *frame*
//!    (an executing launch block) plus a FIFO *event queue* of pending
//!    `launch`/`memcpy` events.
//! 2. **Check event queue** — when a processor is woken, the head of its
//!    queue is issued if (and only if) its dependency signal has resolved.
//! 3. **Schedule operation** — interpreting an op inside a frame queries
//!    the component models (processor profiles, memory behaviours,
//!    connection bandwidth) and *reserves* time on each device's schedule
//!    queue; contention shows up as stalls.
//! 4. **Finish operation** — completion times resolve dependency signals,
//!    which cascade through `control_and`/`control_or` combinators and wake
//!    any processors blocked in `await` or at their queue head.
//!
//! The engine is also a *hybrid-dialect interpreter* (Fig. 1): `linalg`
//! ops execute analytically, `affine` loops execute iteration by iteration,
//! and `arith` ops compute real values — so one engine simulates a program
//! at every lowering stage.

use crate::interp::{apply_binary, apply_cmpi, conv2d_int, matmul_int};
use crate::library::{MemSpec, SimLibrary};
use crate::machine::{AccessKind, Machine, ProcProfile, RegisterBehavior};
use crate::profile::SimReport;
use crate::signal::SignalTable;
use crate::trace::{Trace, TraceCat};
use crate::value::{BufId, CompId, SignalId, SimValue, Tensor, TensorData};
use equeue_dialect::{conv2d_dims, launch_view, memcpy_view, read_view, write_view, ConnKind};
use equeue_ir::{BlockId, Module, OpId, RegionId, Type, ValueId};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use std::time::Instant;

/// Errors raised during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program cannot make progress: events remain whose dependencies
    /// can never resolve.
    Deadlock(String),
    /// An op or value combination the engine does not model.
    Unsupported(String),
    /// A runtime fault (allocation overflow, bad component lookup, …).
    Runtime(String),
    /// A configured safety limit was exceeded.
    Limit(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(m) => write!(f, "simulation deadlock: {m}"),
            SimError::Unsupported(m) => write!(f, "unsupported: {m}"),
            SimError::Runtime(m) => write!(f, "runtime error: {m}"),
            SimError::Limit(m) => write!(f, "limit exceeded: {m}"),
        }
    }
}

impl Error for SimError {}

/// Simulation options.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Record an operation-level Chrome trace (disable for large sweeps).
    pub trace: bool,
    /// Upper bound on scheduler wakes (guards against runaway programs).
    pub max_wakes: u64,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions { trace: true, max_wakes: 500_000_000 }
    }
}

/// Simulates `module` with the standard library and default options.
///
/// # Errors
///
/// See [`SimError`].
///
/// # Examples
///
/// ```
/// use equeue_ir::{Module, OpBuilder};
/// use equeue_dialect::{EqueueBuilder, kinds};
/// use equeue_core::simulate;
///
/// let mut m = Module::new();
/// let blk = m.top_block();
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// let pe = b.create_proc(kinds::MAC);
/// let start = b.control_start();
/// let launch = b.launch(start, pe, &[], vec![]);
/// let mut body = OpBuilder::at_end(b.module_mut(), launch.body);
/// body.ext_op("mac", vec![], vec![]);
/// body.ret(vec![]);
/// let done = launch.done;
/// let mut b = OpBuilder::at_end(&mut m, blk);
/// b.await_all(vec![done]);
/// let report = simulate(&m)?;
/// assert_eq!(report.cycles, 1);
/// # Ok::<(), equeue_core::SimError>(())
/// ```
pub fn simulate(module: &Module) -> Result<SimReport, SimError> {
    simulate_with(module, &SimLibrary::standard(), &SimOptions::default())
}

/// Simulates `module` with an explicit library and options.
///
/// # Errors
///
/// See [`SimError`].
pub fn simulate_with(
    module: &Module,
    library: &SimLibrary,
    options: &SimOptions,
) -> Result<SimReport, SimError> {
    let start = Instant::now();
    let mut engine = Engine::new(module, library, options);
    engine.run()?;
    let mut report = SimReport {
        cycles: engine.horizon,
        execution_time: start.elapsed(),
        events_processed: engine.wakes,
        ops_interpreted: engine.ops_interpreted,
        trace: std::mem::take(&mut engine.trace),
        ..Default::default()
    };
    report.collect(&engine.machine);
    Ok(report)
}

/// A pending event in a processor's event queue.
#[derive(Debug)]
enum EventKind {
    Launch { op: OpId, env: HashMap<ValueId, SimValue> },
    Memcpy { src: BufId, dst: BufId, conn: Option<crate::value::ConnId> },
}

#[derive(Debug)]
struct PendingEvent {
    kind: EventKind,
    dep: SignalId,
    done: SignalId,
}

/// Loop bookkeeping for `affine.for` / `affine.parallel` scopes.
#[derive(Debug, Clone)]
struct LoopState {
    ivs: Vec<ValueId>,
    lowers: Vec<i64>,
    uppers: Vec<i64>,
    steps: Vec<i64>,
    current: Vec<i64>,
}

impl LoopState {
    /// Advances the innermost dimension; returns `false` when exhausted.
    fn advance(&mut self) -> bool {
        let mut d = self.current.len();
        loop {
            if d == 0 {
                return false;
            }
            d -= 1;
            self.current[d] += self.steps[d];
            if self.current[d] < self.uppers[d] {
                for later in d + 1..self.current.len() {
                    self.current[later] = self.lowers[later];
                }
                return true;
            }
        }
    }

    fn live(&self) -> bool {
        self.current.iter().zip(&self.uppers).all(|(c, u)| c < u)
    }
}

#[derive(Debug)]
struct Scope {
    block: BlockId,
    idx: usize,
    looping: Option<LoopState>,
}

#[derive(Debug)]
struct Frame {
    env: HashMap<ValueId, SimValue>,
    stack: Vec<Scope>,
    done: SignalId,
}

#[derive(Debug)]
struct ProcRuntime {
    comp: CompId,
    queue: VecDeque<PendingEvent>,
    frame: Option<Frame>,
    clock: u64,
    profile: ProcProfile,
}

/// What happened when a frame stepped one op.
enum Step {
    /// Keep stepping (zero time passed).
    Continue,
    /// Time passed; yield to the scheduler until `clock`.
    Yield,
    /// The frame is blocked on a signal (already subscribed).
    Blocked,
    /// The frame completed.
    Finished,
}

struct Engine<'m> {
    module: &'m Module,
    lib: &'m SimLibrary,
    options: SimOptions,
    machine: Machine,
    signals: SignalTable,
    procs: Vec<ProcRuntime>,
    proc_of_comp: HashMap<CompId, usize>,
    heap: BinaryHeap<Reverse<(u64, u64, usize)>>,
    seq: u64,
    now: u64,
    horizon: u64,
    wakes: u64,
    ops_interpreted: u64,
    trace: Trace,
    free_vars_cache: HashMap<RegionId, Vec<ValueId>>,
    host_mem: Option<CompId>,
}

impl<'m> Engine<'m> {
    fn new(module: &'m Module, lib: &'m SimLibrary, options: &SimOptions) -> Self {
        let mut engine = Engine {
            module,
            lib,
            options: options.clone(),
            machine: Machine::new(),
            signals: SignalTable::new(),
            procs: vec![],
            proc_of_comp: HashMap::new(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            horizon: 0,
            wakes: 0,
            ops_interpreted: 0,
            trace: if options.trace { Trace::new() } else { Trace::disabled() },
            free_vars_cache: HashMap::new(),
            host_mem: None,
        };
        // The implicit host processor interprets the top block at time 0;
        // all its ops are free (orchestration, not datapath).
        let host = engine.machine.add_processor("Host", ProcProfile::uniform(0));
        let host_idx = engine.add_proc_runtime(host, ProcProfile::uniform(0));
        let done = engine.signals.fresh();
        engine.procs[host_idx].frame = Some(Frame {
            env: HashMap::new(),
            stack: vec![Scope { block: module.top_block(), idx: 0, looping: None }],
            done,
        });
        engine.schedule(0, host_idx);
        engine
    }

    fn add_proc_runtime(&mut self, comp: CompId, profile: ProcProfile) -> usize {
        let idx = self.procs.len();
        self.procs.push(ProcRuntime {
            comp,
            queue: VecDeque::new(),
            frame: None,
            clock: 0,
            profile,
        });
        self.proc_of_comp.insert(comp, idx);
        idx
    }

    fn schedule(&mut self, time: u64, proc: usize) {
        let t = time.max(self.now);
        self.heap.push(Reverse((t, self.seq, proc)));
        self.seq += 1;
    }

    fn bump_horizon(&mut self, t: u64) {
        if t > self.horizon {
            self.horizon = t;
        }
    }

    fn run(&mut self) -> Result<(), SimError> {
        while let Some(Reverse((t, _, p))) = self.heap.pop() {
            self.now = t;
            self.wakes += 1;
            if self.wakes > self.options.max_wakes {
                return Err(SimError::Limit(format!(
                    "exceeded {} scheduler wakes at cycle {t}",
                    self.options.max_wakes
                )));
            }
            self.wake(p, t)?;
        }
        // Everything drained: check for stuck work.
        let mut stuck = vec![];
        for (i, proc) in self.procs.iter().enumerate() {
            if proc.frame.is_some() && i != 0 {
                stuck.push(format!("{} has an unfinished frame", self.machine.name(proc.comp)));
            }
            if !proc.queue.is_empty() {
                stuck.push(format!(
                    "{} has {} unissued events",
                    self.machine.name(proc.comp),
                    proc.queue.len()
                ));
            }
        }
        if let Some(host) = &self.procs[0].frame {
            // The host frame must have run to completion too.
            if !host.stack.is_empty() {
                stuck.push("host program did not finish".into());
            }
        }
        if stuck.is_empty() {
            Ok(())
        } else {
            Err(SimError::Deadlock(stuck.join("; ")))
        }
    }

    /// Wakes processor `p` at time `t` and steps it as far as possible.
    fn wake(&mut self, p: usize, t: u64) -> Result<(), SimError> {
        // A processor whose local clock is ahead of the wake time is
        // mid-operation: this wake is a spurious one from a signal
        // cascade. Stepping now would let the processor reserve shared
        // schedule queues ahead of same-time requesters on other
        // processors. Dropping the wake is safe: every state transition
        // that leaves a processor with pending work schedules a wake at
        // (or after) its clock — `advance` at the new clock, and signal
        // resolution at `max(resolve_time, clock)`.
        if self.procs[p].clock > t {
            return Ok(());
        }
        if self.procs[p].clock < t {
            self.procs[p].clock = t;
        }
        loop {
            if self.procs[p].frame.is_none() {
                // Stage 2: check the event queue head.
                let Some(head) = self.procs[p].queue.front() else {
                    return Ok(());
                };
                let dep = head.dep;
                match self.signals.resolve_time(dep) {
                    None => {
                        // Dependency pending: the signal's resolution
                        // cascade will re-wake this processor.
                        return Ok(());
                    }
                    Some(dep_time) => {
                        if dep_time > self.procs[p].clock {
                            self.procs[p].clock = dep_time;
                        }
                        let event = self.procs[p].queue.pop_front().unwrap();
                        self.issue_event(p, event)?;
                        // issue_event may have finished instantly (memcpy) or
                        // installed a frame; loop to continue stepping.
                        continue;
                    }
                }
            }
            // Step the active frame one op at a time.
            match self.step_frame(p)? {
                Step::Continue => continue,
                Step::Yield => {
                    let clock = self.procs[p].clock;
                    self.schedule(clock, p);
                    return Ok(());
                }
                Step::Blocked => return Ok(()),
                Step::Finished => continue,
            }
        }
    }

    /// Starts a pending event on processor `p` (stage 3 for events).
    fn issue_event(&mut self, p: usize, event: PendingEvent) -> Result<(), SimError> {
        match event.kind {
            EventKind::Launch { op, env } => {
                let view = launch_view(self.module, op)
                    .map_err(|e| SimError::Runtime(format!("{e} (launch op)")))?;
                self.procs[p].frame = Some(Frame {
                    env,
                    stack: vec![Scope { block: view.body, idx: 0, looping: None }],
                    done: event.done,
                });
                Ok(())
            }
            EventKind::Memcpy { src, dst, conn } => {
                let clock = self.procs[p].clock;
                let end = self.do_memcpy(p, src, dst, conn, clock)?;
                self.procs[p].clock = end;
                self.resolve_signal(event.done, end, vec![]);
                Ok(())
            }
        }
    }

    /// Executes a DMA copy: read `src`, move through `conn`, write `dst`.
    /// Returns the finish time. The three legs are pipelined, so the copy
    /// takes the max of their latencies (plus any schedule-queue stalls).
    fn do_memcpy(
        &mut self,
        p: usize,
        src: BufId,
        dst: BufId,
        conn: Option<crate::value::ConnId>,
        start: u64,
    ) -> Result<u64, SimError> {
        let (src_mem, bytes, elems, src_addr) = {
            let b = self.machine.buffer(src);
            (b.mem, b.bytes() as u64, b.elems(), b.base_addr)
        };
        let (dst_mem, dst_elems, dst_addr) = {
            let b = self.machine.buffer(dst);
            (b.mem, b.elems(), b.base_addr)
        };
        if dst_elems != elems {
            return Err(SimError::Runtime(format!(
                "memcpy size mismatch: src {elems} elems, dst {dst_elems} elems"
            )));
        }
        let banks_src = self.machine.memory(src_mem).banks;
        let rd_cycles = self.machine.memory_mut(src_mem).behavior.access_cycles(
            AccessKind::Read,
            src_addr,
            elems,
            banks_src,
        );
        let banks_dst = self.machine.memory(dst_mem).banks;
        let wr_cycles = self.machine.memory_mut(dst_mem).behavior.access_cycles(
            AccessKind::Write,
            dst_addr,
            elems,
            banks_dst,
        );
        let (_, rd_end) = self.machine.memory_mut(src_mem).reserve(start, rd_cycles);
        let (_, wr_end) = self.machine.memory_mut(dst_mem).reserve(start, wr_cycles);
        let mut end = rd_end.max(wr_end);
        if let Some(c) = conn {
            let (_, c_end) = self.machine.connection_mut(c).reserve(AccessKind::Read, start, bytes);
            let (_, c_end2) =
                self.machine.connection_mut(c).reserve(AccessKind::Write, start, bytes);
            end = end.max(c_end).max(c_end2);
        }
        self.machine.memory_mut(src_mem).count(AccessKind::Read, bytes);
        self.machine.memory_mut(dst_mem).count(AccessKind::Write, bytes);
        // Move the data.
        let data = self.machine.buffer(src).data.clone();
        self.machine.buffer_mut(dst).data = data;
        let tid = self.machine.name(self.procs[p].comp).to_string();
        self.trace.record("equeue.memcpy", TraceCat::Operation, start, end - start, "DMA", &tid);
        self.bump_horizon(end);
        Ok(end)
    }

    /// Resolves a signal and wakes every processor whose queue head or
    /// await might now be ready (stage 4).
    fn resolve_signal(&mut self, sig: SignalId, time: u64, payload: Vec<SimValue>) {
        let fired = self.signals.resolve(sig, time, payload);
        self.bump_horizon(time);
        // Wake processors whose queue head waits on a fired signal or whose
        // frame is blocked in an await. (Waking spuriously is harmless —
        // the wake handler rechecks readiness — so we scan rather than
        // maintain per-signal waiter lists.)
        for p in 0..self.procs.len() {
            let interested = match self.procs[p].queue.front() {
                Some(ev) => fired.contains(&ev.dep),
                None => false,
            } || self.procs[p].frame.is_some();
            if interested {
                let at = self.signals.resolve_time(sig).unwrap_or(time).max(self.procs[p].clock);
                self.schedule(at, p);
            }
        }
    }

    /// Free variables of a region: values used inside but defined outside.
    fn free_vars(&mut self, region: RegionId) -> Vec<ValueId> {
        if let Some(v) = self.free_vars_cache.get(&region) {
            return v.clone();
        }
        let module = self.module;
        let mut defined: Vec<ValueId> = vec![];
        for &b in &module.region(region).blocks {
            defined.extend(module.block(b).args.iter().copied());
        }
        let mut used: Vec<ValueId> = vec![];
        let ops = module.region_ops(region);
        for &op in &ops {
            used.extend(module.op(op).operands.iter().copied());
            defined.extend(module.op(op).results.iter().copied());
            for &r in &module.op(op).regions {
                for &b in &module.region(r).blocks {
                    defined.extend(module.block(b).args.iter().copied());
                }
            }
        }
        let defined: std::collections::HashSet<ValueId> = defined.into_iter().collect();
        let mut free: Vec<ValueId> = used.into_iter().filter(|v| !defined.contains(v)).collect();
        free.sort();
        free.dedup();
        self.free_vars_cache.insert(region, free.clone());
        free
    }

    // ---- value evaluation -------------------------------------------------

    fn lookup(&self, frame: &Frame, v: ValueId) -> Result<SimValue, SimError> {
        let val = frame.env.get(&v).cloned().ok_or_else(|| {
            SimError::Runtime(format!("value %{} used before definition in simulation", v))
        })?;
        if let SimValue::Deferred { signal, index } = val {
            let payload = self.signals.payload(signal);
            return payload.get(index).cloned().ok_or_else(|| {
                SimError::Runtime(
                    "launch result used before the launch completed (missing await?)".into(),
                )
            });
        }
        Ok(val)
    }

    /// Like [`Engine::lookup`], but keeps an unresolved launch result as a
    /// [`SimValue::Deferred`] instead of failing. Used when *spawning*
    /// events whose dependency guarantees the value exists by issue time.
    fn lookup_lazy(&self, frame: &Frame, v: ValueId) -> Result<SimValue, SimError> {
        let val = frame.env.get(&v).cloned().ok_or_else(|| {
            SimError::Runtime(format!("value %{} used before definition in simulation", v))
        })?;
        if let SimValue::Deferred { signal, index } = val {
            if let Some(resolved) = self.signals.payload(signal).get(index) {
                return Ok(resolved.clone());
            }
        }
        Ok(val)
    }

    fn lookup_signal(&self, frame: &Frame, v: ValueId) -> Result<SignalId, SimError> {
        match self.lookup(frame, v)? {
            SimValue::Signal(s) => Ok(s),
            other => Err(SimError::Runtime(format!("expected a signal, got {other}"))),
        }
    }

    fn lookup_comp(&self, frame: &Frame, v: ValueId) -> Result<CompId, SimError> {
        match self.lookup(frame, v)? {
            SimValue::Component(c) => Ok(c),
            other => Err(SimError::Runtime(format!("expected a component, got {other}"))),
        }
    }

    fn lookup_buffer(&self, frame: &Frame, v: ValueId) -> Result<BufId, SimError> {
        match self.lookup(frame, v)? {
            SimValue::Buffer(b) => Ok(b),
            other => Err(SimError::Runtime(format!("expected a buffer, got {other}"))),
        }
    }

    fn lookup_indices(&self, frame: &Frame, vs: &[ValueId]) -> Result<Vec<usize>, SimError> {
        vs.iter()
            .map(|&v| {
                self.lookup(frame, v)?.as_int().map(|i| i.max(0) as usize).ok_or_else(|| {
                    SimError::Runtime("subscripts must be integers".into())
                })
            })
            .collect()
    }

    // ---- frame stepping ----------------------------------------------------

    /// Interprets the next op of `p`'s frame (stages 3 and 4 for in-frame
    /// operations).
    fn step_frame(&mut self, p: usize) -> Result<Step, SimError> {
        let mut frame = self.procs[p].frame.take().expect("step_frame needs a frame");
        let result = self.step_frame_inner(p, &mut frame);
        match &result {
            Ok(Step::Finished) => {
                // Frame dropped; done signal was resolved inside.
            }
            _ => self.procs[p].frame = Some(frame),
        }
        result
    }

    fn step_frame_inner(&mut self, p: usize, frame: &mut Frame) -> Result<Step, SimError> {
        // End-of-block handling: loops iterate, the root scope finishes.
        loop {
            let Some(scope) = frame.stack.last_mut() else {
                return self.finish_frame(p, frame, vec![]);
            };
            let block_len = self.module.block(scope.block).ops.len();
            if scope.idx < block_len {
                break;
            }
            match &mut scope.looping {
                Some(state) => {
                    if state.advance() && state.live() {
                        scope.idx = 0;
                        let bindings: Vec<(ValueId, i64)> = state
                            .ivs
                            .iter()
                            .copied()
                            .zip(state.current.iter().copied())
                            .collect();
                        for (iv, val) in bindings {
                            frame.env.insert(iv, SimValue::Int(val));
                        }
                    } else {
                        frame.stack.pop();
                    }
                }
                None => {
                    frame.stack.pop();
                    if frame.stack.is_empty() {
                        return self.finish_frame(p, frame, vec![]);
                    }
                }
            }
        }

        let scope = frame.stack.last_mut().unwrap();
        let op = self.module.block(scope.block).ops[scope.idx];
        scope.idx += 1;
        if self.module.op(op).erased {
            return Ok(Step::Continue);
        }
        self.ops_interpreted += 1;
        self.exec_op(p, frame, op)
    }

    fn finish_frame(
        &mut self,
        p: usize,
        frame: &mut Frame,
        payload: Vec<SimValue>,
    ) -> Result<Step, SimError> {
        let clock = self.procs[p].clock;
        self.resolve_signal(frame.done, clock, payload);
        self.bump_horizon(clock);
        Ok(Step::Finished)
    }

    /// Executes one op inside a frame. Returns how the scheduler should
    /// proceed.
    #[allow(clippy::too_many_lines)]
    fn exec_op(&mut self, p: usize, frame: &mut Frame, op: OpId) -> Result<Step, SimError> {
        let name = self.module.op(op).name.clone();
        let clock = self.procs[p].clock;
        match name.as_str() {
            // ---- structure specification (elaboration, free) ----
            "equeue.create_proc" => {
                let kind = self.attr_str(op, "kind")?;
                let profile = self.lib.proc_profile(&kind);
                let comp = self.machine.add_processor(&kind, profile.clone());
                self.add_proc_runtime(comp, profile);
                self.bind(frame, op, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            "equeue.create_mem" => {
                let kind = self.attr_str(op, "kind")?;
                let attrs = self.module.op(op).attrs.clone();
                let shape = attrs
                    .shape("shape")
                    .ok_or_else(|| SimError::Runtime("create_mem missing shape".into()))?;
                let data_bits = attrs.int("data_bits").unwrap_or(32) as u32;
                let banks = attrs.int("banks").unwrap_or(1).max(1) as u32;
                let ports = attrs
                    .int("ports")
                    .map(|v| v.max(1) as usize)
                    .unwrap_or(self.lib.default_mem_ports);
                let spec = MemSpec {
                    kind: kind.clone(),
                    capacity_elems: shape.iter().product(),
                    data_bits,
                    banks,
                    attrs,
                };
                let behavior = self.lib.make_memory(&spec);
                let energy = spec
                    .attrs
                    .float("energy_pj")
                    .unwrap_or_else(|| self.lib.energy_per_access(&kind));
                let comp = self.machine.add_memory_with_energy(
                    &kind,
                    spec.capacity_elems,
                    data_bits,
                    banks,
                    ports,
                    behavior,
                    energy,
                );
                self.bind(frame, op, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            "equeue.create_dma" => {
                let comp = self.machine.add_dma();
                self.add_proc_runtime(comp, SimLibrary::default_profile());
                self.bind(frame, op, 0, SimValue::Component(comp));
                Ok(Step::Continue)
            }
            "equeue.create_comp" | "equeue.add_comp" => {
                let names: Vec<String> = self
                    .module
                    .op(op)
                    .attrs
                    .get("names")
                    .and_then(|a| a.as_str_array())
                    .map(|s| s.to_vec())
                    .ok_or_else(|| SimError::Runtime(format!("{name} missing names")))?;
                let operands = self.module.op(op).operands.clone();
                if name == "equeue.create_comp" {
                    let children: Vec<CompId> = operands
                        .iter()
                        .map(|&v| self.lookup_comp(frame, v))
                        .collect::<Result<_, _>>()?;
                    let comp = self.machine.add_composite(&names, &children);
                    self.bind(frame, op, 0, SimValue::Component(comp));
                } else {
                    let target = self.lookup_comp(frame, operands[0])?;
                    let children: Vec<CompId> = operands[1..]
                        .iter()
                        .map(|&v| self.lookup_comp(frame, v))
                        .collect::<Result<_, _>>()?;
                    self.machine.extend_composite(target, &names, &children);
                }
                Ok(Step::Continue)
            }
            "equeue.get_comp" => {
                let target = self.lookup_comp(frame, self.module.op(op).operands[0])?;
                let child_name = self.attr_str(op, "name")?;
                let child = self.machine.child(target, &child_name).ok_or_else(|| {
                    SimError::Runtime(format!(
                        "component '{}' has no child '{child_name}'",
                        self.machine.name(target)
                    ))
                })?;
                self.bind(frame, op, 0, SimValue::Component(child));
                Ok(Step::Continue)
            }
            "equeue.create_connection" => {
                let kind_s = self.attr_str(op, "kind")?;
                let kind = ConnKind::from_str(&kind_s)
                    .ok_or_else(|| SimError::Runtime(format!("bad connection kind {kind_s}")))?;
                let bw = self.module.op(op).attrs.int("bandwidth").unwrap_or(0).max(0) as u64;
                let conn = self.machine.add_connection(kind, bw);
                self.bind(frame, op, 0, SimValue::Connection(conn));
                Ok(Step::Continue)
            }

            // ---- data movement ----
            "equeue.alloc" => {
                let mem = self.lookup_comp(frame, self.module.op(op).operands[0])?;
                let rt = self.module.value_type(self.module.result(op, 0)).clone();
                let (shape, elem) = match &rt {
                    Type::Buffer { shape, elem } => (shape.clone(), (**elem).clone()),
                    other => {
                        return Err(SimError::Runtime(format!("alloc result must be a buffer, got {other}")))
                    }
                };
                let elem_bytes = elem.elem_byte_width().unwrap_or(4);
                let buf = self
                    .machine
                    .alloc_buffer(mem, shape, elem_bytes, elem.is_integer())
                    .map_err(SimError::Runtime)?;
                self.bind(frame, op, 0, SimValue::Buffer(buf));
                Ok(Step::Continue)
            }
            "memref.alloc" => {
                let host_mem = self.host_memory();
                let rt = self.module.value_type(self.module.result(op, 0)).clone();
                let (shape, elem) = match &rt {
                    Type::MemRef { shape, elem } => (shape.clone(), (**elem).clone()),
                    other => {
                        return Err(SimError::Runtime(format!("memref.alloc result {other}")))
                    }
                };
                let elem_bytes = elem.elem_byte_width().unwrap_or(4);
                let buf = self
                    .machine
                    .alloc_buffer(host_mem, shape, elem_bytes, elem.is_integer())
                    .map_err(SimError::Runtime)?;
                self.bind(frame, op, 0, SimValue::Buffer(buf));
                Ok(Step::Continue)
            }
            "equeue.dealloc" | "memref.dealloc" => {
                let buf = self.lookup_buffer(frame, self.module.op(op).operands[0])?;
                self.machine.dealloc_buffer(buf);
                Ok(Step::Continue)
            }
            "equeue.read" => {
                let view = read_view(self.module, op).map_err(SimError::Runtime)?;
                let buf = self.lookup_buffer(frame, view.buffer)?;
                let indices = self.lookup_indices(frame, &view.indices)?;
                let conn = match view.conn {
                    Some(c) => Some(match self.lookup(frame, c)? {
                        SimValue::Connection(id) => id,
                        other => {
                            return Err(SimError::Runtime(format!("not a connection: {other}")))
                        }
                    }),
                    None => None,
                };
                let (value, end) =
                    self.access_buffer(p, AccessKind::Read, buf, &indices, None, conn, clock)?;
                self.bind(frame, op, 0, value.expect("read produces a value"));
                self.advance(p, end)
            }
            "equeue.write" => {
                let view = write_view(self.module, op).map_err(SimError::Runtime)?;
                let value = self.lookup(frame, view.value)?;
                let buf = self.lookup_buffer(frame, view.buffer)?;
                let indices = self.lookup_indices(frame, &view.indices)?;
                let conn = match view.conn {
                    Some(c) => Some(match self.lookup(frame, c)? {
                        SimValue::Connection(id) => id,
                        other => {
                            return Err(SimError::Runtime(format!("not a connection: {other}")))
                        }
                    }),
                    None => None,
                };
                let (_, end) = self.access_buffer(
                    p,
                    AccessKind::Write,
                    buf,
                    &indices,
                    Some(value),
                    conn,
                    clock,
                )?;
                self.advance(p, end)
            }
            "affine.load" => {
                let operands = self.module.op(op).operands.clone();
                let buf = self.lookup_buffer(frame, operands[0])?;
                let indices = self.lookup_indices(frame, &operands[1..])?;
                let (value, _) =
                    self.access_buffer(p, AccessKind::Read, buf, &indices, None, None, clock)?;
                self.bind(frame, op, 0, value.expect("load produces a value"));
                let cycles = self.procs[p].profile.cycles("affine.load");
                self.advance(p, clock + cycles)
            }
            "affine.store" => {
                let operands = self.module.op(op).operands.clone();
                let value = self.lookup(frame, operands[0])?;
                let buf = self.lookup_buffer(frame, operands[1])?;
                let indices = self.lookup_indices(frame, &operands[2..])?;
                self.access_buffer(p, AccessKind::Write, buf, &indices, Some(value), None, clock)?;
                let cycles = self.procs[p].profile.cycles("affine.store");
                self.advance(p, clock + cycles)
            }

            // ---- events and control ----
            "equeue.memcpy" => {
                let view = memcpy_view(self.module, op).map_err(SimError::Runtime)?;
                let dep = self.lookup_signal(frame, view.dep)?;
                let src = self.lookup_buffer(frame, view.src)?;
                let dst = self.lookup_buffer(frame, view.dst)?;
                let dma = self.lookup_comp(frame, view.dma)?;
                let conn = match view.conn {
                    Some(c) => Some(match self.lookup(frame, c)? {
                        SimValue::Connection(id) => id,
                        other => {
                            return Err(SimError::Runtime(format!("not a connection: {other}")))
                        }
                    }),
                    None => None,
                };
                let done = self.signals.fresh();
                self.bind(frame, op, 0, SimValue::Signal(done));
                let target = *self.proc_of_comp.get(&dma).ok_or_else(|| {
                    SimError::Runtime("memcpy target is not an executor".into())
                })?;
                self.procs[target]
                    .queue
                    .push_back(PendingEvent { kind: EventKind::Memcpy { src, dst, conn }, dep, done });
                self.schedule(clock, target);
                Ok(Step::Continue)
            }
            "equeue.launch" => {
                let view = launch_view(self.module, op).map_err(SimError::Runtime)?;
                let dep = self.lookup_signal(frame, view.dep)?;
                let proc_comp = self.lookup_comp(frame, view.proc)?;
                let region = self.module.op(op).regions[0];
                // Snapshot free variables plus bind captures to block args.
                let mut env: HashMap<ValueId, SimValue> = HashMap::new();
                for fv in self.free_vars(region) {
                    if let Some(v) = frame.env.get(&fv) {
                        let v = if let SimValue::Deferred { signal, index } = v {
                            self.signals
                                .payload(*signal)
                                .get(*index)
                                .cloned()
                                .unwrap_or(SimValue::Deferred { signal: *signal, index: *index })
                        } else {
                            v.clone()
                        };
                        env.insert(fv, v);
                    }
                }
                let args = self.module.block(view.body).args.clone();
                for (&cap, &arg) in view.captures.iter().zip(args.iter()) {
                    let v = self.lookup_lazy(frame, cap)?;
                    env.insert(arg, v);
                }
                let done = self.signals.fresh();
                self.bind(frame, op, 0, SimValue::Signal(done));
                for (i, &res) in view.results.iter().enumerate() {
                    frame.env.insert(res, SimValue::Deferred { signal: done, index: i });
                }
                let target = *self.proc_of_comp.get(&proc_comp).ok_or_else(|| {
                    SimError::Runtime(format!(
                        "launch target '{}' is not an executor",
                        self.machine.name(proc_comp)
                    ))
                })?;
                self.procs[target]
                    .queue
                    .push_back(PendingEvent { kind: EventKind::Launch { op, env }, dep, done });
                self.schedule(clock, target);
                Ok(Step::Continue)
            }
            "equeue.control_start" => {
                let sig = self.signals.resolved_at(clock);
                self.bind(frame, op, 0, SimValue::Signal(sig));
                Ok(Step::Continue)
            }
            "equeue.control_and" | "equeue.control_or" => {
                let deps: Vec<SignalId> = self
                    .module
                    .op(op)
                    .operands
                    .clone()
                    .into_iter()
                    .map(|v| self.lookup_signal(frame, v))
                    .collect::<Result<_, _>>()?;
                let sig = if name == "equeue.control_and" {
                    self.signals.new_and(&deps)
                } else {
                    self.signals.new_or(&deps)
                };
                self.bind(frame, op, 0, SimValue::Signal(sig));
                Ok(Step::Continue)
            }
            "equeue.await" => {
                let deps: Vec<SignalId> = self
                    .module
                    .op(op)
                    .operands
                    .clone()
                    .into_iter()
                    .map(|v| self.lookup_signal(frame, v))
                    .collect::<Result<_, _>>()?;
                let mut latest = clock;
                for d in &deps {
                    match self.signals.resolve_time(*d) {
                        Some(t) => latest = latest.max(t),
                        None => {
                            // Re-run this await when the signal fires.
                            if let Some(scope) = frame.stack.last_mut() {
                                scope.idx -= 1;
                            }
                            return Ok(Step::Blocked);
                        }
                    }
                }
                self.procs[p].clock = latest;
                Ok(Step::Continue)
            }
            "equeue.return" => {
                let payload: Vec<SimValue> = self
                    .module
                    .op(op)
                    .operands
                    .clone()
                    .into_iter()
                    .map(|v| self.lookup(frame, v))
                    .collect::<Result<_, _>>()?;
                self.finish_frame(p, frame, payload)
            }
            "equeue.op" => {
                let sig = self.attr_str(op, "signature")?;
                // An explicit `cycles` attribute overrides the library, so
                // generators can emit parameterised macro-ops; otherwise the
                // signature must be implemented in the simulator library
                // (§III-E).
                let cycles = match self.module.op(op).attrs.int("cycles") {
                    Some(c) => c.max(0) as u64,
                    None => {
                        self.lib
                            .ext_op(&sig)
                            .ok_or_else(|| {
                                SimError::Unsupported(format!(
                                    "no simulator-library implementation for equeue.op \
                                     signature '{sig}'"
                                ))
                            })?
                            .cycles
                    }
                };
                for (i, _) in self.module.op(op).results.clone().iter().enumerate() {
                    self.bind(frame, op, i, SimValue::Unit);
                }
                let end = clock + cycles;
                let tid = self.machine.name(self.procs[p].comp).to_string();
                self.trace.record(&sig, TraceCat::Operation, clock, cycles, "Processor", &tid);
                self.advance(p, end)
            }

            // ---- loops ----
            "affine.for" => {
                let attrs = &self.module.op(op).attrs;
                let (lower, upper, step) = (
                    attrs.int("lower").unwrap_or(0),
                    attrs.int("upper").unwrap_or(0),
                    attrs.int("step").unwrap_or(1),
                );
                let region = self.module.op(op).regions[0];
                let body = self.module.region(region).blocks[0];
                let iv = self.module.block(body).args[0];
                if lower < upper {
                    frame.env.insert(iv, SimValue::Int(lower));
                    frame.stack.push(Scope {
                        block: body,
                        idx: 0,
                        looping: Some(LoopState {
                            ivs: vec![iv],
                            lowers: vec![lower],
                            uppers: vec![upper],
                            steps: vec![step],
                            current: vec![lower],
                        }),
                    });
                }
                Ok(Step::Continue)
            }
            "affine.parallel" => {
                // Interpreted sequentially at the Affine level; the
                // --parallel-to-equeue pass lowers it to true concurrency.
                let attrs = &self.module.op(op).attrs;
                let lowers = attrs.int_array("lowers").unwrap_or(&[]).to_vec();
                let uppers = attrs.int_array("uppers").unwrap_or(&[]).to_vec();
                let steps = attrs.int_array("steps").unwrap_or(&[]).to_vec();
                let region = self.module.op(op).regions[0];
                let body = self.module.region(region).blocks[0];
                let ivs = self.module.block(body).args.clone();
                let live = lowers.iter().zip(&uppers).all(|(l, u)| l < u);
                if live {
                    for (iv, v) in ivs.iter().zip(&lowers) {
                        frame.env.insert(*iv, SimValue::Int(*v));
                    }
                    frame.stack.push(Scope {
                        block: body,
                        idx: 0,
                        looping: Some(LoopState {
                            ivs,
                            lowers: lowers.clone(),
                            uppers,
                            steps,
                            current: lowers,
                        }),
                    });
                }
                Ok(Step::Continue)
            }
            "affine.yield" => Ok(Step::Continue),

            // ---- linalg (analytic + functional) ----
            "linalg.conv2d" => self.exec_conv2d(p, frame, op),
            "linalg.matmul" => self.exec_matmul(p, frame, op),
            "linalg.fill" => self.exec_fill(p, frame, op),

            // ---- arith ----
            "arith.constant" => {
                let attrs = &self.module.op(op).attrs;
                let rt = self.module.value_type(self.module.result(op, 0)).clone();
                let v = if rt.is_float() {
                    SimValue::Float(attrs.float("value").unwrap_or(0.0))
                } else {
                    SimValue::Int(attrs.int("value").unwrap_or(0))
                };
                self.bind(frame, op, 0, v);
                Ok(Step::Continue)
            }
            "arith.cmpi" => {
                let pred = self.attr_str(op, "predicate")?;
                let operands = self.module.op(op).operands.clone();
                let a = self.lookup(frame, operands[0])?;
                let b = self.lookup(frame, operands[1])?;
                let v = apply_cmpi(&pred, &a, &b).map_err(SimError::Runtime)?;
                self.bind(frame, op, 0, v);
                let cycles = self.procs[p].profile.cycles(&name);
                self.advance(p, clock + cycles)
            }
            "arith.select" => {
                let operands = self.module.op(op).operands.clone();
                let c = self.lookup(frame, operands[0])?;
                let v = if c.as_int().unwrap_or(0) != 0 {
                    self.lookup(frame, operands[1])?
                } else {
                    self.lookup(frame, operands[2])?
                };
                self.bind(frame, op, 0, v);
                let cycles = self.procs[p].profile.cycles(&name);
                self.advance(p, clock + cycles)
            }
            _ if name.starts_with("arith.") => {
                let operands = self.module.op(op).operands.clone();
                let a = self.lookup(frame, operands[0])?;
                let b = self.lookup(frame, operands[1])?;
                let v = apply_binary(&name, &a, &b).map_err(SimError::Runtime)?;
                self.bind(frame, op, 0, v);
                // Index-typed arithmetic is address generation, which the
                // memory pipeline absorbs; it costs no datapath cycles.
                let is_index =
                    *self.module.value_type(self.module.result(op, 0)) == Type::Index;
                let cycles =
                    if is_index { 0 } else { self.procs[p].profile.cycles(&name) };
                if cycles > 0 {
                    let tid = self.machine.name(self.procs[p].comp).to_string();
                    self.trace.record(&name, TraceCat::Operation, clock, cycles, "Processor", &tid);
                }
                self.advance(p, clock + cycles)
            }
            other => Err(SimError::Unsupported(format!("op '{other}' is not simulatable"))),
        }
    }

    /// A timed read/write of a buffer: reserves the memory's schedule queue
    /// and the optional connection, records traffic and trace, and applies
    /// the data effect. Returns `(read value, finish time)`.
    #[allow(clippy::too_many_arguments)]
    fn access_buffer(
        &mut self,
        p: usize,
        kind: AccessKind,
        buf: BufId,
        indices: &[usize],
        value: Option<SimValue>,
        conn: Option<crate::value::ConnId>,
        start: u64,
    ) -> Result<(Option<SimValue>, u64), SimError> {
        let (mem, elem_bytes, base_addr, total_elems) = {
            let b = self.machine.buffer(buf);
            (b.mem, b.elem_bytes, b.base_addr, b.elems())
        };
        let elems = if indices.is_empty() { total_elems } else { 1 };
        let bytes = (elems * elem_bytes) as u64;
        let addr = if indices.is_empty() {
            base_addr
        } else {
            let b = self.machine.buffer(buf);
            base_addr + b.data.flatten_index(indices)
        };
        let banks = self.machine.memory(mem).banks;
        let mem_cycles =
            self.machine.memory_mut(mem).behavior.access_cycles(kind, addr, elems, banks);
        let (mstart, mend) = self.machine.memory_mut(mem).reserve(start, mem_cycles);
        let mut end = mend;
        let mut astart = if mem_cycles > 0 { mstart } else { start };
        if let Some(c) = conn {
            let (cstart, cend) =
                self.machine.connection_mut(c).reserve_spanning(kind, start, bytes, mem_cycles);
            end = end.max(cend);
            astart = astart.max(cstart.min(end));
        }
        self.machine.memory_mut(mem).count(kind, bytes);

        // Data effect.
        let out = match kind {
            AccessKind::Read => {
                let b = self.machine.buffer(buf);
                if indices.is_empty() {
                    if total_elems == 1 {
                        Some(element_value(&b.data, 0))
                    } else {
                        Some(SimValue::Tensor(b.data.clone()))
                    }
                } else {
                    let flat = b.data.flatten_index(indices);
                    Some(element_value(&b.data, flat))
                }
            }
            AccessKind::Write => {
                let v = value.expect("write needs a value");
                let b = self.machine.buffer_mut(buf);
                write_value(b, indices, v).map_err(SimError::Runtime)?;
                None
            }
        };

        // Trace: stall slot (schedule-queue wait) then the operation slot.
        if end > start {
            let tid = self.machine.name(self.procs[p].comp).to_string();
            if astart > start {
                self.trace.record("stall", TraceCat::Stall, start, astart - start, "Processor", &tid);
            }
            let opname = match kind {
                AccessKind::Read => "equeue.read",
                AccessKind::Write => "equeue.write",
            };
            self.trace.record(opname, TraceCat::Operation, astart, end - astart, "Processor", &tid);
        }
        Ok((out, end))
    }

    fn exec_conv2d(&mut self, p: usize, frame: &mut Frame, op: OpId) -> Result<Step, SimError> {
        let dims = conv2d_dims(self.module, op).map_err(SimError::Runtime)?;
        let operands = self.module.op(op).operands.clone();
        let ifmap = self.lookup_buffer(frame, operands[0])?;
        let weights = self.lookup_buffer(frame, operands[1])?;
        let ofmap = self.lookup_buffer(frame, operands[2])?;
        // Functional result.
        let iv = int_data(&self.machine.buffer(ifmap).data)?;
        let wv = int_data(&self.machine.buffer(weights).data)?;
        let mut ov = vec![0i64; dims.ofmap_elems()];
        conv2d_int(&iv, &wv, &mut ov, dims.c, dims.h, dims.w, dims.n, dims.fh, dims.fw);
        set_int_data(&mut self.machine.buffer_mut(ofmap).data, ov);
        // Analytic timing: a naive scalar schedule costs
        // `linalg_cycles_per_mac` per MAC, streaming operands once.
        let clock = self.procs[p].clock;
        let cycles = dims.macs() as u64 * self.lib.linalg_cycles_per_mac;
        for (buf, kind) in [(ifmap, AccessKind::Read), (weights, AccessKind::Read), (ofmap, AccessKind::Write)] {
            let (mem, bytes) = {
                let b = self.machine.buffer(buf);
                (b.mem, b.bytes() as u64)
            };
            self.machine.memory_mut(mem).count(kind, bytes);
        }
        let tid = self.machine.name(self.procs[p].comp).to_string();
        self.trace.record("linalg.conv2d", TraceCat::Operation, clock, cycles, "Processor", &tid);
        self.advance(p, clock + cycles)
    }

    fn exec_matmul(&mut self, p: usize, frame: &mut Frame, op: OpId) -> Result<Step, SimError> {
        let operands = self.module.op(op).operands.clone();
        let a = self.lookup_buffer(frame, operands[0])?;
        let b = self.lookup_buffer(frame, operands[1])?;
        let c = self.lookup_buffer(frame, operands[2])?;
        let (m, k) = {
            let s = &self.machine.buffer(a).shape;
            (s[0], s[1])
        };
        let n = self.machine.buffer(b).shape[1];
        let av = int_data(&self.machine.buffer(a).data)?;
        let bv = int_data(&self.machine.buffer(b).data)?;
        let mut cv = vec![0i64; m * n];
        matmul_int(&av, &bv, &mut cv, m, k, n);
        set_int_data(&mut self.machine.buffer_mut(c).data, cv);
        let clock = self.procs[p].clock;
        let cycles = (m * n * k) as u64 * self.lib.linalg_cycles_per_mac;
        let tid = self.machine.name(self.procs[p].comp).to_string();
        self.trace.record("linalg.matmul", TraceCat::Operation, clock, cycles, "Processor", &tid);
        self.advance(p, clock + cycles)
    }

    fn exec_fill(&mut self, p: usize, frame: &mut Frame, op: OpId) -> Result<Step, SimError> {
        let operands = self.module.op(op).operands.clone();
        let scalar = self.lookup(frame, operands[0])?;
        let buf = self.lookup_buffer(frame, operands[1])?;
        let elems = self.machine.buffer(buf).elems();
        let b = self.machine.buffer_mut(buf);
        match (&mut b.data.data, &scalar) {
            (TensorData::Int(v), s) => {
                let x = s.as_int().ok_or_else(|| SimError::Runtime("fill type mismatch".into()))?;
                v.iter_mut().for_each(|e| *e = x);
            }
            (TensorData::Float(v), s) => {
                let x =
                    s.as_float().ok_or_else(|| SimError::Runtime("fill type mismatch".into()))?;
                v.iter_mut().for_each(|e| *e = x);
            }
        }
        let clock = self.procs[p].clock;
        let cycles = elems as u64;
        self.advance(p, clock + cycles)
    }

    /// Advances the processor's clock to `end`; yields when time passed.
    fn advance(&mut self, p: usize, end: u64) -> Result<Step, SimError> {
        let clock = self.procs[p].clock;
        if end > clock {
            self.procs[p].clock = end;
            self.bump_horizon(end);
            Ok(Step::Yield)
        } else {
            Ok(Step::Continue)
        }
    }

    fn bind(&mut self, frame: &mut Frame, op: OpId, index: usize, value: SimValue) {
        let vid = self.module.result(op, index);
        frame.env.insert(vid, value);
    }

    fn attr_str(&self, op: OpId, name: &str) -> Result<String, SimError> {
        self.module
            .op(op)
            .attrs
            .str(name)
            .map(str::to_string)
            .ok_or_else(|| {
                SimError::Runtime(format!("op '{}' missing attribute '{name}'", self.module.op(op).name))
            })
    }

    /// The implicit host memory backing `memref.alloc` (unbounded,
    /// register-speed).
    fn host_memory(&mut self) -> CompId {
        if let Some(m) = self.host_mem {
            return m;
        }
        let m = self.machine.add_memory_with_energy(
            "HostMem",
            usize::MAX / 2,
            32,
            1,
            1,
            Box::new(RegisterBehavior),
            0.0,
        );
        self.host_mem = Some(m);
        m
    }
}

fn element_value(t: &Tensor, flat: usize) -> SimValue {
    match &t.data {
        TensorData::Int(v) => SimValue::Int(v[flat]),
        TensorData::Float(v) => SimValue::Float(v[flat]),
    }
}

fn int_data(t: &Tensor) -> Result<Vec<i64>, SimError> {
    match &t.data {
        TensorData::Int(v) => Ok(v.clone()),
        TensorData::Float(_) => {
            Err(SimError::Unsupported("linalg ops require integer buffers in this model".into()))
        }
    }
}

fn set_int_data(t: &mut Tensor, v: Vec<i64>) {
    t.data = TensorData::Int(v);
}

/// Writes `value` into `buffer` (whole-buffer or element-wise).
fn write_value(
    buffer: &mut crate::machine::Buffer,
    indices: &[usize],
    value: SimValue,
) -> Result<(), String> {
    if indices.is_empty() {
        match (&mut buffer.data.data, value) {
            (TensorData::Int(dst), SimValue::Tensor(t)) => match t.data {
                TensorData::Int(src) => {
                    if src.len() != dst.len() {
                        return Err(format!(
                            "write size mismatch: value {} elems, buffer {} elems",
                            src.len(),
                            dst.len()
                        ));
                    }
                    dst.copy_from_slice(&src);
                }
                TensorData::Float(_) => return Err("write mixes float tensor into int buffer".into()),
            },
            (TensorData::Float(dst), SimValue::Tensor(t)) => match t.data {
                TensorData::Float(src) => {
                    if src.len() != dst.len() {
                        return Err("write size mismatch".into());
                    }
                    dst.copy_from_slice(&src);
                }
                TensorData::Int(_) => return Err("write mixes int tensor into float buffer".into()),
            },
            (TensorData::Int(dst), SimValue::Int(v)) => dst.iter_mut().for_each(|e| *e = v),
            (TensorData::Float(dst), SimValue::Float(v)) => dst.iter_mut().for_each(|e| *e = v),
            (TensorData::Float(dst), SimValue::Int(v)) => {
                dst.iter_mut().for_each(|e| *e = v as f64)
            }
            (_, SimValue::Unit) => {} // opaque ext-op results: timing-only
            (_, other) => return Err(format!("cannot write {other} into buffer")),
        }
        return Ok(());
    }
    let flat = buffer.data.flatten_index(indices);
    match (&mut buffer.data.data, value) {
        (TensorData::Int(dst), SimValue::Int(v)) => dst[flat] = v,
        (TensorData::Float(dst), SimValue::Float(v)) => dst[flat] = v,
        (TensorData::Float(dst), SimValue::Int(v)) => dst[flat] = v as f64,
        (_, SimValue::Unit) => {}
        (_, other) => return Err(format!("cannot write {other} at index")),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use equeue_dialect::{kinds, ArithBuilder, EqueueBuilder};
    use equeue_ir::OpBuilder;

    /// Fig. 2a-style toy program: kernel launches work on two PEs after a
    /// DMA copy; both PEs start simultaneously.
    #[test]
    fn toy_accelerator_runs() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let kernel = b.create_proc(kinds::ARM_R6);
        let sram = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let dma = b.create_dma();
        let _accel = b.create_comp(&["Kernel", "SRAM", "DMA"], vec![kernel, sram, dma]);
        let pe0 = b.create_proc(kinds::MAC);
        let reg0 = b.create_mem(kinds::REGISTER, &[4], 32, 1);
        let pe1 = b.create_proc(kinds::MAC);
        let reg1 = b.create_mem(kinds::REGISTER, &[4], 32, 1);

        let src = b.alloc(sram, &[4], equeue_ir::Type::I32);
        let b0 = b.alloc(reg0, &[4], equeue_ir::Type::I32);
        let b1 = b.alloc(reg1, &[4], equeue_ir::Type::I32);

        let start = b.control_start();
        let outer = b.launch(start, kernel, &[], vec![]);
        {
            let mut ob = OpBuilder::at_end(b.module_mut(), outer.body);
            let copy_dep = ob.control_start();
            let launch_dep = ob.memcpy(copy_dep, src, b0, dma, None);
            let l0 = ob.launch(launch_dep, pe0, &[b0], vec![]);
            {
                let mut ib = OpBuilder::at_end(ob.module_mut(), l0.body);
                let ifmap = ib.read(l0.body_args[0], None);
                let four = ib.const_int(4, equeue_ir::Type::I32);
                let _sum = ib.addi(ifmap, four);
                ib.ret(vec![]);
            }
            let mut ob = OpBuilder::at_end(&mut m, outer.body);
            let l1 = ob.launch(launch_dep, pe1, &[b1], vec![]);
            {
                let mut ib = OpBuilder::at_end(ob.module_mut(), l1.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            let mut ob = OpBuilder::at_end(&mut m, outer.body);
            ob.await_all(vec![l0.done, l1.done]);
            ob.ret(vec![]);
        }
        let outer_done = outer.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![outer_done]);

        let report = simulate(&m).expect("simulation");
        // memcpy of 4x4B from 4-bank SRAM: 1 cycle; then PE work: addi
        // (tensor add) 1 cycle on pe0, mac 1 cycle on pe1 in parallel.
        assert_eq!(report.cycles, 2);
        assert!(report.memory_named("SRAM").unwrap().bytes_read >= 16);
        assert!(!report.trace.is_empty());
    }

    #[test]
    fn launch_results_pass_values() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let x = ib.const_int(20, Type::I32);
            let y = ib.const_int(22, Type::I32);
            let s = ib.addi(x, y);
            ib.ret(vec![s]);
        }
        let (done, result) = (l.done, l.results[0]);
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        // Use the result in a second launch.
        let pe2 = b.create_proc(kinds::MAC);
        let l2 = b.launch(done, pe2, &[result], vec![Type::I32]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l2.body);
            let one = ib.const_int(1, Type::I32);
            let s = ib.addi(l2.body_args[0], one);
            ib.ret(vec![s]);
        }
        let done2 = l2.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done2]);
        let report = simulate(&m).expect("simulation");
        // addi on pe (1 cycle), then addi on pe2 (1 cycle), serialised by dep.
        assert_eq!(report.cycles, 2);
    }

    #[test]
    fn queue_is_fifo_per_processor() {
        // Two launches on one PE issue in order even with resolved deps.
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let mut dones = vec![];
        for _ in 0..3 {
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let all = b.control_and(dones);
        b.await_all(vec![all]);
        let report = simulate(&m).unwrap();
        assert_eq!(report.cycles, 3); // serialised: one proc
    }

    #[test]
    fn parallel_procs_overlap() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let start = b.control_start();
        let mut dones = vec![];
        for _ in 0..3 {
            let pe = b.create_proc(kinds::MAC);
            let l = b.launch(start, pe, &[], vec![]);
            {
                let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
                ib.ext_op("mac", vec![], vec![]);
                ib.ret(vec![]);
            }
            dones.push(l.done);
            b = OpBuilder::at_end(&mut m, blk);
        }
        let all = b.control_and(dones);
        b.await_all(vec![all]);
        let report = simulate(&m).unwrap();
        assert_eq!(report.cycles, 1); // all three in parallel
    }

    #[test]
    fn deadlock_detected() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l1 = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l1.body);
            ib.ret(vec![]);
        }
        // A launch depending on a signal that never fires (l2 depends on
        // l3's done, which depends on l2's done — no way to build that in
        // SSA; instead: await on a control_and that includes a signal from
        // a launch queued *behind* the awaiting frame on the same proc).
        let mut b = OpBuilder::at_end(&mut m, blk);
        let l2 = b.launch(l1.done, pe, &[], vec![]);
        {
            // This frame awaits a signal produced by an event that can only
            // run on the same processor *after* this frame finishes: deadlock.
            let mut ib = OpBuilder::at_end(b.module_mut(), l2.body);
            let inner_start = ib.control_start();
            let l3 = ib.launch(inner_start, pe, &[], vec![]);
            {
                let mut ib2 = OpBuilder::at_end(ib.module_mut(), l3.body);
                ib2.ret(vec![]);
            }
            let mut ib = OpBuilder::at_end(&mut m, l2.body);
            ib.await_all(vec![l3.done]);
            ib.ret(vec![]);
        }
        let err = simulate(&m).unwrap_err();
        assert!(matches!(err, SimError::Deadlock(_)), "{err}");
    }

    #[test]
    fn affine_loop_executes() {
        use equeue_dialect::AffineBuilder;
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::ARM_R5);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 4);
        let buf = b.alloc(mem, &[8], Type::I32);
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            let (_, body, iv) = ib.affine_for(0, 8, 1);
            {
                let mut lb = OpBuilder::at_end(ib.module_mut(), body);
                let c = lb.const_int(7, Type::I32);
                lb.write_indexed(c, l.body_args[0], vec![iv], None);
                lb.affine_yield();
            }
            let mut ib = OpBuilder::at_end(&mut m, l.body);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let report = simulate(&m).unwrap();
        // 8 single-element SRAM writes at 1 cycle each.
        assert_eq!(report.cycles, 8);
        assert_eq!(report.memory_named("SRAM").unwrap().writes, 8);
    }

    #[test]
    fn ext_op_unknown_signature_errors() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::MAC);
        let start = b.control_start();
        let l = b.launch(start, pe, &[], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.ext_op("warp_drive", vec![], vec![]);
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let err = simulate(&m).unwrap_err();
        assert!(matches!(err, SimError::Unsupported(_)), "{err}");
    }

    #[test]
    fn connection_limits_read_bandwidth() {
        let mut m = Module::new();
        let blk = m.top_block();
        let mut b = OpBuilder::at_end(&mut m, blk);
        let pe = b.create_proc(kinds::AI_ENGINE);
        let mem = b.create_mem(kinds::SRAM, &[64], 32, 64);
        let buf = b.alloc(mem, &[16], Type::I32); // 64 bytes
        let conn = b.create_connection(ConnKind::Streaming, 4); // 4 B/cyc
        let start = b.control_start();
        let l = b.launch(start, pe, &[buf, conn], vec![]);
        {
            let mut ib = OpBuilder::at_end(b.module_mut(), l.body);
            ib.read(l.body_args[0], Some(l.body_args[1]));
            ib.ret(vec![]);
        }
        let done = l.done;
        let mut b = OpBuilder::at_end(&mut m, blk);
        b.await_all(vec![done]);
        let report = simulate(&m).unwrap();
        // 64 bytes over 4 B/cyc = 16 cycles (memory side is 1 cycle).
        assert_eq!(report.cycles, 16);
        let conn_report = &report.connections[0];
        assert_eq!(conn_report.read.bytes, 64);
        assert!((conn_report.read.max_bw - 4.0).abs() < 1e-9);
    }
}
