//! Event signals and their dependency combinators.
//!
//! Every event operation (`launch`, `memcpy`, `control_*`) produces a
//! [`SignalId`]. A signal is *resolved* once its event completes, carrying
//! the completion timestamp and an optional payload (the values passed to
//! `equeue.return`). `control_and`/`control_or` are derived signals that
//! resolve when all/any of their dependencies resolve (§III-D).

use crate::value::{SignalId, SimValue};

/// State of one signal. `pub(crate)` so the snapshot codec can serialise
/// and restore the table verbatim.
#[derive(Debug, Clone)]
pub(crate) enum SignalState {
    /// Not yet fired; combinator bookkeeping lives alongside.
    Pending {
        /// For `control_and`: outstanding dependency count.
        remaining: usize,
        /// Latest dependency resolve time seen so far (`and` semantics) or
        /// earliest (`or`).
        time_acc: u64,
        /// Whether this is an `or` combinator (first dep fires it).
        any_mode: bool,
        /// Downstream derived signals to notify on resolution.
        dependents: Vec<SignalId>,
    },
    /// Fired at `time` with `payload`.
    Resolved {
        /// Resolution timestamp.
        time: u64,
        /// Values passed to `equeue.return` (empty for most signals).
        payload: Vec<SimValue>,
    },
}

/// The signal table: allocation, combinators, and resolution.
///
/// # Examples
///
/// ```
/// use equeue_core::SignalTable;
/// let mut t = SignalTable::new();
/// let a = t.fresh();
/// let b = t.fresh();
/// let both = t.new_and(&[a, b]);
/// t.resolve(a, 5, vec![]);
/// assert!(!t.is_resolved(both));
/// t.resolve(b, 9, vec![]);
/// assert_eq!(t.resolve_time(both), Some(9));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignalTable {
    pub(crate) signals: Vec<SignalState>,
    /// Signals resolved by the most recent `resolve` cascade. Transient
    /// scratch: empty between `resolve` calls, so snapshots need not
    /// capture it.
    just_resolved: Vec<SignalId>,
}

impl SignalTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a table from deserialised states (snapshot restore). The
    /// transient `just_resolved` scratch starts empty, matching the
    /// between-events state a snapshot is taken in.
    pub(crate) fn from_states(signals: Vec<SignalState>) -> Self {
        SignalTable {
            signals,
            just_resolved: Vec::new(),
        }
    }

    /// Allocates a fresh unresolved signal (for launches/memcpys).
    pub fn fresh(&mut self) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(SignalState::Pending {
            remaining: 1,
            time_acc: 0,
            any_mode: false,
            dependents: vec![],
        });
        id
    }

    /// Allocates a signal already resolved at `time` (for `control_start`).
    pub fn resolved_at(&mut self, time: u64) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(SignalState::Resolved {
            time,
            payload: vec![],
        });
        id
    }

    /// Creates a `control_and` signal over `deps`: resolves when all deps
    /// have, at the max of their times.
    pub fn new_and(&mut self, deps: &[SignalId]) -> SignalId {
        self.new_combinator(deps, false)
    }

    /// Creates a `control_or` signal over `deps`: resolves when the first
    /// dep does, at that dep's time.
    pub fn new_or(&mut self, deps: &[SignalId]) -> SignalId {
        self.new_combinator(deps, true)
    }

    fn new_combinator(&mut self, deps: &[SignalId], any_mode: bool) -> SignalId {
        let id = SignalId(self.signals.len() as u32);
        let mut remaining = 0;
        let mut time_acc = 0u64;
        let mut fired_any: Option<u64> = None;
        for &d in deps {
            match &self.signals[d.0 as usize] {
                SignalState::Resolved { time, .. } => {
                    time_acc = time_acc.max(*time);
                    if fired_any.is_none_or(|t| *time < t) {
                        fired_any = Some(*time);
                    }
                }
                SignalState::Pending { .. } => remaining += 1,
            }
        }
        let state = if any_mode {
            if let Some(t) = fired_any {
                SignalState::Resolved {
                    time: t,
                    payload: vec![],
                }
            } else if remaining == 0 {
                // No deps at all: fire immediately at 0.
                SignalState::Resolved {
                    time: 0,
                    payload: vec![],
                }
            } else {
                SignalState::Pending {
                    remaining: 1,
                    time_acc: u64::MAX,
                    any_mode: true,
                    dependents: vec![],
                }
            }
        } else if remaining == 0 {
            SignalState::Resolved {
                time: time_acc,
                payload: vec![],
            }
        } else {
            SignalState::Pending {
                remaining,
                time_acc,
                any_mode: false,
                dependents: vec![],
            }
        };
        let resolved = matches!(state, SignalState::Resolved { .. });
        self.signals.push(state);
        if !resolved {
            for &d in deps {
                if let SignalState::Pending { dependents, .. } = &mut self.signals[d.0 as usize] {
                    dependents.push(id);
                }
            }
        }
        id
    }

    /// Whether `sig` has fired.
    pub fn is_resolved(&self, sig: SignalId) -> bool {
        matches!(self.signals[sig.0 as usize], SignalState::Resolved { .. })
    }

    /// The resolve time, if fired.
    pub fn resolve_time(&self, sig: SignalId) -> Option<u64> {
        match &self.signals[sig.0 as usize] {
            SignalState::Resolved { time, .. } => Some(*time),
            _ => None,
        }
    }

    /// The payload attached at resolution (empty until fired).
    pub fn payload(&self, sig: SignalId) -> &[SimValue] {
        match &self.signals[sig.0 as usize] {
            SignalState::Resolved { payload, .. } => payload,
            _ => &[],
        }
    }

    /// Resolves `sig` at `time` with `payload`, cascading through
    /// combinators. Returns every signal that became resolved (including
    /// `sig`). Resolving an already-resolved signal is a no-op: the first
    /// resolution wins (faulty or adversarial IR can attempt it).
    pub fn resolve(&mut self, sig: SignalId, time: u64, payload: Vec<SimValue>) -> Vec<SignalId> {
        self.just_resolved.clear();
        self.resolve_inner(sig, time, payload);
        std::mem::take(&mut self.just_resolved)
    }

    fn resolve_inner(&mut self, sig: SignalId, time: u64, payload: Vec<SimValue>) {
        let dependents = match &mut self.signals[sig.0 as usize] {
            SignalState::Resolved { .. } => return, // first resolution wins
            SignalState::Pending { dependents, .. } => std::mem::take(dependents),
        };
        self.signals[sig.0 as usize] = SignalState::Resolved { time, payload };
        self.just_resolved.push(sig);
        for dep in dependents {
            let fire = match &mut self.signals[dep.0 as usize] {
                SignalState::Pending {
                    remaining,
                    time_acc,
                    any_mode,
                    ..
                } => {
                    if *any_mode {
                        Some(time)
                    } else {
                        // Saturating: a well-formed table never underflows,
                        // but a restored snapshot is external input.
                        *remaining = remaining.saturating_sub(1);
                        *time_acc = (*time_acc).max(time);
                        if *remaining == 0 {
                            Some(*time_acc)
                        } else {
                            None
                        }
                    }
                }
                SignalState::Resolved { .. } => None, // `or` already fired
            };
            if let Some(t) = fire {
                self.resolve_inner(dep, t, vec![]);
            }
        }
    }

    /// Consumes the table into its raw states (shard-merge suffix append).
    pub(crate) fn into_states(self) -> Vec<SignalState> {
        self.signals
    }

    /// Appends one raw state (shard-merge suffix append; ids inside must
    /// already be remapped into this table's id space).
    pub(crate) fn push_state(&mut self, state: SignalState) {
        self.signals.push(state);
    }

    /// Number of signals allocated.
    pub fn len(&self) -> usize {
        self.signals.len()
    }

    /// Whether no signals have been allocated.
    pub fn is_empty(&self) -> bool {
        self.signals.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_and_resolve() {
        let mut t = SignalTable::new();
        let s = t.fresh();
        assert!(!t.is_resolved(s));
        let fired = t.resolve(s, 42, vec![SimValue::Int(7)]);
        assert_eq!(fired, vec![s]);
        assert_eq!(t.resolve_time(s), Some(42));
        assert_eq!(t.payload(s), &[SimValue::Int(7)]);
    }

    #[test]
    fn double_resolve_is_ignored() {
        let mut t = SignalTable::new();
        let s = t.fresh();
        t.resolve(s, 1, vec![SimValue::Int(9)]);
        let fired = t.resolve(s, 2, vec![]);
        assert!(fired.is_empty());
        assert_eq!(t.resolve_time(s), Some(1)); // first resolution wins
        assert_eq!(t.payload(s), &[SimValue::Int(9)]);
    }

    #[test]
    fn and_waits_for_all_and_takes_max() {
        let mut t = SignalTable::new();
        let a = t.fresh();
        let b = t.fresh();
        let and = t.new_and(&[a, b]);
        t.resolve(b, 10, vec![]);
        assert!(!t.is_resolved(and));
        let fired = t.resolve(a, 3, vec![]);
        assert!(fired.contains(&and));
        assert_eq!(t.resolve_time(and), Some(10));
    }

    #[test]
    fn or_fires_on_first() {
        let mut t = SignalTable::new();
        let a = t.fresh();
        let b = t.fresh();
        let or = t.new_or(&[a, b]);
        let fired = t.resolve(a, 5, vec![]);
        assert!(fired.contains(&or));
        assert_eq!(t.resolve_time(or), Some(5));
        // The other dependency resolving later is harmless.
        let fired = t.resolve(b, 9, vec![]);
        assert_eq!(fired, vec![b]);
        assert_eq!(t.resolve_time(or), Some(5));
    }

    #[test]
    fn combinators_over_already_resolved() {
        let mut t = SignalTable::new();
        let a = t.resolved_at(4);
        let b = t.resolved_at(6);
        let and = t.new_and(&[a, b]);
        let or = t.new_or(&[a, b]);
        assert_eq!(t.resolve_time(and), Some(6));
        assert_eq!(t.resolve_time(or), Some(4));
    }

    #[test]
    fn nested_combinators_cascade() {
        let mut t = SignalTable::new();
        let a = t.fresh();
        let b = t.fresh();
        let c = t.fresh();
        let ab = t.new_and(&[a, b]);
        let all = t.new_and(&[ab, c]);
        t.resolve(a, 1, vec![]);
        t.resolve(c, 7, vec![]);
        assert!(!t.is_resolved(all));
        let fired = t.resolve(b, 5, vec![]);
        assert!(fired.contains(&ab));
        assert!(fired.contains(&all));
        assert_eq!(t.resolve_time(all), Some(7));
    }

    #[test]
    fn mixed_resolved_pending_and() {
        let mut t = SignalTable::new();
        let a = t.resolved_at(9);
        let b = t.fresh();
        let and = t.new_and(&[a, b]);
        assert!(!t.is_resolved(and));
        t.resolve(b, 2, vec![]);
        assert_eq!(t.resolve_time(and), Some(9));
    }
}
